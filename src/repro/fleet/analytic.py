"""Analytic fleet-availability model (cross-validates the simulator).

Every random count in the fleet chain is a thinned Poisson — and a
thinned Poisson is Poisson — so per-month *means and variances* of
crash downtime are exact, not approximations. The deterministic
structure (aging multipliers on the staggered age grid, bad-batch
membership, refurbishment months) comes from the same
:class:`~repro.fleet.layout.FleetLayout` the Monte Carlo simulator
uses, which is why the analytic mean downtime equals the simulator's
expectation to the digit (absent the rare per-server monthly clip).

Routed fleet availability is nonlinear (``min(demand, capacity)``), so
its mean uses a per-month normal approximation of total downtime::

    E[max(0, X - h)] = (mu - h) * Phi(t) + sigma * phi(t),
    t = (mu - h) / sigma

with fleet sizes in the hundreds the CLT makes this tight.

Shock variance is where correlation shows up analytically. With
fleet-wide events ``E ~ Poisson(lam)`` and per-server hit probability
``q`` over ``N`` servers, total hits have

* correlated mode: ``Var = N * q * (1 - q) * lam + N^2 * q^2 * lam``
  (law of total variance — the shared event count couples servers);
* independent mode: ``Var = N * q * lam`` (same mean ``N * q * lam``).

The quadratic-in-N term is the analytic signature of the heavier
correlated tail the regression tests pin on the simulator.

:class:`CompositionGrid` is the optimizer's fast path: per-month prefix
sums over the server axis make each candidate composition an
``O(designs x months)`` evaluation instead of a fresh layout build.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.availability import (
    MINUTES_PER_MONTH,
    AvailabilityParams,
    ErrorRateModel,
)
from repro.core.design_space import SoftwareResponse
from repro.core.vulnerability import VulnerabilityProfile
from repro.fleet.config import FleetConfig, FleetDesign
from repro.fleet.layout import FleetLayout, RegionTable

__all__ = [
    "AnalyticFleetModel",
    "AnalyticFleetResult",
    "CompositionGrid",
    "analytic_matches_simulation",
    "ci_contains",
]


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


def _Phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _expected_shortfall(mean: float, std: float, headroom: float) -> float:
    """E[max(0, X - headroom)] for X ~ Normal(mean, std)."""
    excess = mean - headroom
    if std <= 0.0:
        return max(0.0, excess)
    t = excess / std
    return excess * _Phi(t) + std * _phi(t)


def _shock_moments(
    correlation, servers: int
) -> Tuple[float, float]:
    """(mean, variance) of total shock hits per fleet-month."""
    lam = correlation.shock_rate_per_month
    if lam <= 0:
        return (0.0, 0.0)
    q = correlation.shock_cohort_fraction
    mean = servers * q * lam
    if correlation.mode == "correlated":
        variance = servers * q * (1.0 - q) * lam + servers**2 * q**2 * lam
    else:
        variance = servers * q * lam
    return (mean, variance)


def _routed_availability(
    mean_downtime: np.ndarray,
    var_downtime: np.ndarray,
    servers: int,
    demand_fraction: float,
) -> np.ndarray:
    """Per-month routed availability from downtime moments."""
    demand_minutes = demand_fraction * servers * MINUTES_PER_MONTH
    headroom_minutes = (1.0 - demand_fraction) * servers * MINUTES_PER_MONTH
    months = len(mean_downtime)
    out = np.empty(months, dtype=np.float64)
    for m in range(months):
        shortfall = _expected_shortfall(
            float(mean_downtime[m]),
            math.sqrt(max(0.0, float(var_downtime[m]))),
            headroom_minutes,
        )
        out[m] = 1.0 - shortfall / demand_minutes
    return out


class AnalyticFleetResult:
    """Closed-form per-month moments for one fleet layout."""

    def __init__(
        self,
        layout: FleetLayout,
        mean_downtime: np.ndarray,
        var_downtime: np.ndarray,
        mean_errors: np.ndarray,
        mean_crashes: np.ndarray,
        mean_incorrect: np.ndarray,
        design_downtime: Dict[str, float],
    ) -> None:
        config = layout.config
        self.servers = layout.servers
        self.months = config.months
        self.demand_fraction = config.demand_fraction
        self.composition = layout.composition()
        self.mean_downtime_by_month = mean_downtime
        self.var_downtime_by_month = var_downtime
        self.mean_errors_by_month = mean_errors
        self.mean_crashes_by_month = mean_crashes
        self.mean_incorrect_by_month = mean_incorrect
        self.downtime_by_design = design_downtime
        self.availability_by_month = _routed_availability(
            mean_downtime, var_downtime, self.servers, self.demand_fraction
        )

    @property
    def mean_fleet_availability(self) -> float:
        """Expected routed availability, averaged across months."""
        return float(self.availability_by_month.mean())

    @property
    def mean_machine_availability(self) -> float:
        """Expected server uptime fraction (routing ignored) — exact."""
        total = float(self.mean_downtime_by_month.sum())
        minutes = self.servers * self.months * MINUTES_PER_MONTH
        return 1.0 - total / minutes

    def machine_availability_of(self, design: str) -> float:
        """Expected server uptime for one design's block — exact."""
        block_servers = self.composition[design]
        minutes = block_servers * self.months * MINUTES_PER_MONTH
        return 1.0 - self.downtime_by_design[design] / minutes

    def to_dict(self) -> dict:
        """JSON-serializable summary mirroring the simulator's."""
        return {
            "model": "analytic",
            "servers": self.servers,
            "months": self.months,
            "demand_fraction": self.demand_fraction,
            "composition": dict(self.composition),
            "mean_fleet_availability": self.mean_fleet_availability,
            "mean_machine_availability": self.mean_machine_availability,
            "totals": {
                "errors": float(self.mean_errors_by_month.sum()),
                "crashes": float(self.mean_crashes_by_month.sum()),
                "incorrect": float(self.mean_incorrect_by_month.sum()),
                "downtime_minutes": float(self.mean_downtime_by_month.sum()),
            },
            "designs": {
                name: {
                    "servers": self.composition[name],
                    "machine_availability": self.machine_availability_of(name),
                    "downtime_minutes": self.downtime_by_design[name],
                }
                for name in self.composition
            },
        }


class AnalyticFleetModel:
    """Exact-moment model for one :class:`FleetLayout`."""

    def __init__(
        self,
        layout: FleetLayout,
        params: Optional[AvailabilityParams] = None,
    ) -> None:
        self.layout = layout
        self.params = params or AvailabilityParams()

    def evaluate(self) -> AnalyticFleetResult:
        """Compute per-month downtime moments and routed availability."""
        layout = self.layout
        config = layout.config
        months = config.months
        recovery = self.params.crash_recovery_minutes
        mult = layout.multipliers(0, months)  # (servers, months)
        mean_downtime = np.zeros(months, dtype=np.float64)
        var_downtime = np.zeros(months, dtype=np.float64)
        mean_errors = np.zeros(months, dtype=np.float64)
        mean_crashes = np.zeros(months, dtype=np.float64)
        mean_incorrect = np.zeros(months, dtype=np.float64)
        design_downtime: Dict[str, float] = {}
        for block in layout.blocks:
            consumed_coeff = np.where(
                block.corrects,
                0.0,
                block.rates * (1.0 - block.recover_fraction),
            )
            crash_coeff = float(
                (consumed_coeff * layout.table.crash_prob).sum()
            )
            incorrect_coeff = float(
                (
                    consumed_coeff
                    * (1.0 - layout.table.crash_prob)
                    * block.incorrect_per_error
                ).sum()
            )
            error_coeff = float(block.rates.sum())
            block_mult = mult[block.start:block.stop, :].sum(axis=0)
            crashes = crash_coeff * block_mult
            mean_errors += error_coeff * block_mult
            mean_crashes += crashes
            mean_incorrect += incorrect_coeff * block_mult
            # Thinned Poisson: crash-count variance equals its mean.
            mean_downtime += crashes * recovery
            var_downtime += crashes * recovery**2
            design_downtime[block.name] = float(crashes.sum()) * recovery
        shock_mean, shock_var = _shock_moments(
            config.correlation, layout.servers
        )
        if shock_mean > 0:
            minutes = config.correlation.shock_downtime_minutes
            mean_downtime += shock_mean * minutes
            var_downtime += shock_var * minutes**2
            per_server = shock_mean / layout.servers * minutes
            for block in layout.blocks:
                design_downtime[block.name] += (
                    per_server * block.servers * months
                )
        if config.repair_downtime_minutes > 0:
            repairs = layout.repairs(0, months)  # deterministic mask
            mean_downtime += (
                repairs.sum(axis=0) * config.repair_downtime_minutes
            )
            for block in layout.blocks:
                design_downtime[block.name] += float(
                    repairs[block.start:block.stop, :].sum()
                    * config.repair_downtime_minutes
                )
        return AnalyticFleetResult(
            layout,
            mean_downtime,
            var_downtime,
            mean_errors,
            mean_crashes,
            mean_incorrect,
            design_downtime,
        )


class CompositionGrid:
    """Shared precomputation for evaluating many fleet compositions.

    The server axis is fixed by ``config.servers`` (staggered ages and
    refurbishment months depend only on the server index), so aging
    multipliers and repair counts are composition-independent. Prefix
    sums along the server axis turn any contiguous design block's
    monthly multiplier mass into two array lookups, making a candidate
    composition an ``O(designs x months)`` evaluation.
    """

    def __init__(
        self,
        profile: VulnerabilityProfile,
        designs: Sequence[FleetDesign],
        config: FleetConfig,
        params: Optional[AvailabilityParams] = None,
        error_model: Optional[ErrorRateModel] = None,
        error_label: str = "single-bit soft",
        region_sizes: Optional[Mapping[str, int]] = None,
    ) -> None:
        if not designs:
            raise ValueError("need at least one fleet design")
        self.designs = list(designs)
        self.config = config
        self.params = params or AvailabilityParams()
        error_model = error_model or ErrorRateModel()
        regions = sorted(designs[0].policies)
        table = RegionTable(profile, regions, error_label, region_sizes)
        servers = config.servers
        months = config.months
        retirement = config.retirement_age_months
        indices = np.arange(servers, dtype=np.int64)
        initial_ages = (indices * retirement) // max(1, servers) % retirement
        month_index = np.arange(months, dtype=np.int64)
        ages = (initial_ages[:, None] + month_index[None, :]) % retirement
        mult = config.aging.multiplier(ages.astype(np.float64))
        #: (servers + 1, months) prefix sums of the aging multiplier.
        self.cum_mult = np.zeros((servers + 1, months), dtype=np.float64)
        np.cumsum(mult, axis=0, out=self.cum_mult[1:, :])
        repairs = (ages == 0) & (month_index[None, :] > 0)
        #: Total refurbishments per month (composition-independent).
        self.repairs_by_month = repairs.sum(axis=0).astype(np.float64)
        self.crash_coeff = np.empty(len(designs), dtype=np.float64)
        self.savings = np.empty(len(designs), dtype=np.float64)
        for d, design in enumerate(self.designs):
            if sorted(design.policies) != regions:
                raise ValueError(
                    "all fleet designs must map the same region set"
                )
            coeff = 0.0
            for i, region in enumerate(regions):
                policy = design.policies[region]
                if policy.technique.corrects_single_bit:
                    continue
                rate = error_model.region_rate(
                    float(table.weights[i]), policy.less_tested
                )
                recover = 0.0
                if (
                    policy.technique.detects_single_bit
                    and policy.response is SoftwareResponse.RECOVER
                ):
                    recover = policy.recoverable_fraction
                coeff += rate * (1.0 - recover) * float(table.crash_prob[i])
            self.crash_coeff[d] = coeff
            if design.server_cost_savings is None:
                raise ValueError(
                    f"design '{design.name}' has no server_cost_savings; "
                    "resolve it before composition search"
                )
            self.savings[d] = design.server_cost_savings
        shock_mean, shock_var = _shock_moments(config.correlation, servers)
        minutes = config.correlation.shock_downtime_minutes
        self._shock_downtime_mean = shock_mean * minutes
        self._shock_downtime_var = shock_var * minutes**2
        self._bad_fraction = config.correlation.bad_batch_fraction
        self._bad_extra = config.correlation.bad_batch_multiplier - 1.0

    def evaluate(self, counts: Sequence[int]) -> Tuple[float, float]:
        """(mean fleet availability, cost savings) for a composition.

        ``counts`` aligns with the construction-time design order and
        must sum to ``config.servers``. Blocks are contiguous in design
        order, matching :class:`FleetLayout`.
        """
        config = self.config
        servers = config.servers
        if sum(counts) != servers:
            raise ValueError(
                f"composition covers {sum(counts)} servers, "
                f"config.servers is {servers}"
            )
        recovery = self.params.crash_recovery_minutes
        mean_downtime = (
            self.repairs_by_month * config.repair_downtime_minutes
            + self._shock_downtime_mean
        )
        var_downtime = np.full_like(
            mean_downtime, self._shock_downtime_var
        )
        savings = 0.0
        cursor = 0
        for d, count in enumerate(counts):
            if count == 0:
                continue
            stop = cursor + count
            block_mult = self.cum_mult[stop, :] - self.cum_mult[cursor, :]
            if self._bad_extra > 0 and self._bad_fraction > 0:
                bad_stop = cursor + int(round(self._bad_fraction * count))
                block_mult = block_mult + self._bad_extra * (
                    self.cum_mult[bad_stop, :] - self.cum_mult[cursor, :]
                )
            crashes = self.crash_coeff[d] * block_mult
            mean_downtime = mean_downtime + crashes * recovery
            var_downtime = var_downtime + crashes * recovery**2
            savings += self.savings[d] * (count / servers)
            cursor = stop
        availability = _routed_availability(
            mean_downtime, var_downtime, servers, config.demand_fraction
        )
        return (float(availability.mean()), float(savings))


def ci_contains(
    interval: Tuple[float, float], value: float
) -> bool:
    """Whether a (lo, hi) confidence interval contains ``value``."""
    lo, hi = interval
    return lo <= value <= hi


def analytic_matches_simulation(
    analytic: AnalyticFleetResult,
    simulated,
    metrics: Sequence[str] = ("machine_availability", "fleet_availability"),
) -> Dict[str, bool]:
    """Cross-validation verdicts: analytic mean inside each MC CI95."""
    verdicts: Dict[str, bool] = {}
    for metric in metrics:
        interval = simulated.confidence_interval(metric)
        if metric == "machine_availability":
            value = analytic.mean_machine_availability
        elif metric == "fleet_availability":
            value = analytic.mean_fleet_availability
        elif metric == "downtime":
            value = float(analytic.mean_downtime_by_month.mean())
        else:
            raise ValueError(f"unknown metric '{metric}'")
        verdicts[metric] = ci_contains(interval, value)
    return verdicts
