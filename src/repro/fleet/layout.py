"""Deterministic fleet layout shared by the simulator and analytic model.

The fleet's *structure* — which server runs which design, each server's
deployment age, bad-DIMM-batch membership, and the rolling
repair/retirement schedule — is deterministic given (designs,
composition, config). Randomness enters only through error arrivals.
Keeping the structure in one place guarantees the Monte Carlo simulator
and the analytic model integrate the *same* aging curve over the *same*
age grid, which is what makes exact cross-validation of means possible.

Layout conventions (relied on by tests and the analytic prefix sums):

* designs occupy contiguous server-index blocks in the order given;
* server ``s`` deploys at staggered age ``(s * retirement_age) //
  servers`` so refurbishments roll through the fleet instead of
  clustering;
* within each design block, the first ``round(bad_batch_fraction *
  block_size)`` servers belong to the bad procurement batch.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.availability import ErrorRateModel
from repro.core.design_space import SoftwareResponse
from repro.core.vulnerability import VulnerabilityProfile
from repro.fleet.config import FleetConfig, FleetDesign

__all__ = ["DesignBlock", "FleetLayout", "RegionTable"]


class RegionTable:
    """Profile-derived per-region vulnerability arrays (design-free)."""

    def __init__(
        self,
        profile: VulnerabilityProfile,
        regions: Sequence[str],
        error_label: str,
        region_sizes: Optional[Mapping[str, int]] = None,
    ) -> None:
        sizes = (
            dict(region_sizes)
            if region_sizes is not None
            else profile.region_sizes
        )
        total = sum(sizes.get(region, 0) for region in regions)
        if total <= 0:
            raise ValueError("fleet designs cover no sized regions")
        self.regions = list(regions)
        self.weights = np.array(
            [sizes.get(region, 0) / total for region in regions],
            dtype=np.float64,
        )
        crash_prob = np.empty(len(regions), dtype=np.float64)
        incorrect = np.empty(len(regions), dtype=np.float64)
        for i, region in enumerate(regions):
            crash_prob[i] = profile.region_crash_probability(
                region, error_label
            )
            stats = profile.cells.get((region, error_label))
            rate = 0.0
            if stats is not None and stats.trials:
                rate = (
                    stats.incorrect_responses + stats.failed_requests
                ) / stats.trials
            incorrect[i] = rate
        self.crash_prob = crash_prob
        self.incorrect_per_error = incorrect


class DesignBlock:
    """One design's contiguous server block plus its per-region rates."""

    def __init__(
        self,
        design: FleetDesign,
        start: int,
        stop: int,
        bad_stop: int,
        table: RegionTable,
        error_model: ErrorRateModel,
    ) -> None:
        self.design = design
        self.name = design.name
        self.start = start
        self.stop = stop
        #: Servers in ``[start, bad_stop)`` carry the bad DIMM batch.
        self.bad_stop = bad_stop
        region_count = len(table.regions)
        rates = np.empty(region_count, dtype=np.float64)
        corrects = np.empty(region_count, dtype=bool)
        recover = np.zeros(region_count, dtype=np.float64)
        incorrect = np.array(table.incorrect_per_error, dtype=np.float64)
        for i, region in enumerate(table.regions):
            policy = design.policies[region]
            rates[i] = error_model.region_rate(
                float(table.weights[i]), policy.less_tested
            )
            corrects[i] = policy.technique.corrects_single_bit
            if not corrects[i] and policy.technique.detects_single_bit:
                if policy.response is SoftwareResponse.RECOVER:
                    recover[i] = policy.recoverable_fraction
                elif policy.response is SoftwareResponse.RESTART:
                    # Controlled restarts trade incorrectness for
                    # downtime (region_outcome_rates semantics).
                    incorrect[i] = 0.0
        #: Errors per server-month per region at aging multiplier 1.
        self.rates = rates
        self.corrects = corrects
        self.recover_fraction = recover
        #: Incorrect responses per consumed-uncrashed error (0 under
        #: detect+RESTART, which converts harm into controlled crashes).
        self.incorrect_per_error = incorrect

    @property
    def servers(self) -> int:
        """Servers assigned to this design."""
        return self.stop - self.start


class FleetLayout:
    """Deterministic structure of a composed fleet."""

    def __init__(
        self,
        profile: VulnerabilityProfile,
        designs: Sequence[FleetDesign],
        counts: Mapping[str, int],
        config: FleetConfig,
        error_model: Optional[ErrorRateModel] = None,
        error_label: str = "single-bit soft",
        region_sizes: Optional[Mapping[str, int]] = None,
    ) -> None:
        if not designs:
            raise ValueError("need at least one fleet design")
        names = [design.name for design in designs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate design names in {names}")
        regions = sorted(designs[0].policies)
        for design in designs[1:]:
            if sorted(design.policies) != regions:
                raise ValueError(
                    "all fleet designs must map the same region set"
                )
        unknown = set(counts) - set(names)
        if unknown:
            raise ValueError(f"composition names unknown designs: {unknown}")
        total = sum(int(counts.get(name, 0)) for name in names)
        if total != config.servers:
            raise ValueError(
                f"composition covers {total} servers, "
                f"config.servers is {config.servers}"
            )
        self.config = config
        self.error_model = error_model or ErrorRateModel()
        self.table = RegionTable(profile, regions, error_label, region_sizes)
        self.blocks: List[DesignBlock] = []
        cursor = 0
        bad_fraction = config.correlation.bad_batch_fraction
        for design in designs:
            block_servers = int(counts.get(design.name, 0))
            if block_servers == 0:
                continue
            bad = int(round(bad_fraction * block_servers))
            self.blocks.append(
                DesignBlock(
                    design,
                    cursor,
                    cursor + block_servers,
                    cursor + bad,
                    self.table,
                    self.error_model,
                )
            )
            cursor += block_servers
        self.servers = cursor
        retirement = config.retirement_age_months
        indices = np.arange(self.servers, dtype=np.int64)
        #: Deployment-staggered device age at month 0.
        self.initial_ages = (indices * retirement) // max(1, self.servers)
        self.initial_ages %= retirement

    def ages(self, start: int, stop: int) -> np.ndarray:
        """(servers, span) device ages for global months [start, stop)."""
        months = np.arange(start, stop, dtype=np.int64)
        return (
            self.initial_ages[:, None] + months[None, :]
        ) % self.config.retirement_age_months

    def multipliers(self, start: int, stop: int) -> np.ndarray:
        """(servers, span) error-rate multiplier (aging × bad batch)."""
        mult = self.config.aging.multiplier(
            self.ages(start, stop).astype(np.float64)
        )
        bad_mult = self.config.correlation.bad_batch_multiplier
        if bad_mult != 1.0:
            for block in self.blocks:
                if block.bad_stop > block.start:
                    mult[block.start:block.bad_stop, :] *= bad_mult
        return mult

    def repairs(self, start: int, stop: int) -> np.ndarray:
        """(servers, span) refurbishment mask for months [start, stop).

        A server is refurbished in the month its staggered device age
        wraps to zero (never at month 0 — nothing has aged yet).
        """
        months = np.arange(start, stop, dtype=np.int64)
        wrapped = (
            self.initial_ages[:, None] + months[None, :]
        ) % self.config.retirement_age_months == 0
        return wrapped & (months[None, :] > 0)

    def composition(self) -> dict:
        """Design name -> server count (insertion order preserved)."""
        return {block.name: block.servers for block in self.blocks}

    def block_of(self, name: str) -> DesignBlock:
        """Look up one design's block by name."""
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(name)
