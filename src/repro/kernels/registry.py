"""Kernel registry: batch kernels keyed by Table 1 technique names.

Kernels are memoized per process — H-matrix derivation and decoder
lookup tables are built once per technique, then shared by every
campaign, benchmark, and :class:`~repro.hrm.protected.ProtectedArray`
in the process.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ecc.registry import UnknownTechniqueError
from repro.kernels.base import BatchCodecKernel
from repro.kernels.chipkill import ChipkillKernel
from repro.kernels.composite import MirroringKernel, RaimKernel
from repro.kernels.dected import DecTedKernel
from repro.kernels.secded import SecDedKernel
from repro.kernels.simple import NoProtectionKernel, ParityKernel

__all__ = ["available_kernels", "get_kernel", "clear_kernel_cache"]

_KERNEL_FACTORIES: Dict[str, Callable[[], BatchCodecKernel]] = {
    "None": NoProtectionKernel,
    "Parity": ParityKernel,
    "SEC-DED": SecDedKernel,
    "DEC-TED": DecTedKernel,
    "Chipkill": ChipkillKernel,
    "RAIM": RaimKernel,
    "Mirroring": MirroringKernel,
}

_CACHE: Dict[str, BatchCodecKernel] = {}


def available_kernels() -> List[str]:
    """Technique names with a vectorized kernel, Table 1 order."""
    return list(_KERNEL_FACTORIES)


def get_kernel(name: str) -> BatchCodecKernel:
    """Return the (memoized) batch kernel for technique ``name``.

    Raises:
        UnknownTechniqueError: for a name without a vectorized kernel
            (including user codecs registered only with the scalar
            registry).
    """
    kernel = _CACHE.get(name)
    if kernel is None:
        try:
            factory = _KERNEL_FACTORIES[name]
        except KeyError:
            raise UnknownTechniqueError(name, _KERNEL_FACTORIES) from None
        kernel = _CACHE[name] = factory()
    return kernel


def clear_kernel_cache() -> None:
    """Drop memoized kernels (test isolation helper)."""
    _CACHE.clear()
