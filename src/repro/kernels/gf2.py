"""GF(2) bit-matrix utilities shared by the batch codec kernels.

The vectorized kernels operate on *bit matrices*: a batch of ``n``
codewords of width ``w`` is a ``(n, w)`` ``uint8`` array whose entry
``[i, p]`` is bit ``p`` (LSB-first) of word ``i``. Codewords up to 360
bits (RAIM) therefore need no big-integer arithmetic on the hot path —
every encode and syndrome computation is a GF(2) matrix product, and
every correction is fancy-indexed XOR.

Because every codec in :mod:`repro.ecc` is a linear code over GF(2)
(XOR-parity, Hamming, BCH, GF(2^4)-symbol, and compositions thereof),
its generator matrix can be *derived from the scalar implementation* by
encoding the ``data_bits`` unit vectors — the scalar codecs stay the
single source of truth and the kernels are provably consistent with
them (:func:`generator_matrix` verifies linearity on random probes).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "ints_to_bits",
    "bits_to_ints",
    "gf2_matmul",
    "pack_bits",
    "generator_matrix",
]


def ints_to_bits(values: Sequence[int], width: int) -> np.ndarray:
    """Pack integers into a ``(n, width)`` LSB-first uint8 bit matrix.

    Raises:
        ValueError: if a value does not fit in ``width`` bits.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    nbytes = (width + 7) // 8
    buffer = bytearray(len(values) * nbytes)
    for index, value in enumerate(values):
        if value < 0 or value >> width:
            raise ValueError(f"value does not fit in {width} bits: {value:#x}")
        buffer[index * nbytes : (index + 1) * nbytes] = value.to_bytes(
            nbytes, "little"
        )
    raw = np.frombuffer(bytes(buffer), dtype=np.uint8).reshape(len(values), nbytes)
    return np.unpackbits(raw, axis=1, bitorder="little")[:, :width]


def bits_to_ints(bits: np.ndarray) -> List[int]:
    """Inverse of :func:`ints_to_bits` (row-wise)."""
    packed = np.packbits(bits.astype(np.uint8, copy=False), axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def gf2_matmul(bits: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """GF(2) product ``bits @ matrix`` of 0/1 matrices, returned as uint8.

    The accumulation runs in int32 (row sums never exceed the inner
    dimension, far below overflow) and is reduced mod 2 at the end.
    """
    product = bits.astype(np.int32, copy=False) @ matrix.astype(np.int32, copy=False)
    return (product & 1).astype(np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Collapse a ``(n, w)`` bit matrix into ``(n,)`` integers (w <= 32)."""
    width = bits.shape[1]
    if width > 32:
        raise ValueError(f"pack_bits supports up to 32 bits, got {width}")
    weights = (np.int64(1) << np.arange(width, dtype=np.int64))
    return bits.astype(np.int64, copy=False) @ weights


def generator_matrix(codec) -> np.ndarray:
    """Derive a codec's ``(data_bits, code_bits)`` generator matrix.

    Row ``i`` is the scalar encoding of the unit data word ``1 << i``.
    The construction is exact for linear codes; linearity is spot-checked
    on deterministic pseudo-random probes so a non-linear codec fails
    loudly here instead of silently mis-encoding in batch.

    Raises:
        ValueError: if the codec does not encode linearly over GF(2).
    """
    if codec.encode(0) != 0:
        raise ValueError(f"{codec.name}: encode(0) != 0, codec is not linear")
    rows = [codec.encode(1 << i) for i in range(codec.data_bits)]
    matrix = ints_to_bits(rows, codec.code_bits)
    # Linearity probes: encode(a ^ b) must equal encode(a) ^ encode(b).
    probe = 0x9E3779B97F4A7C15 & ((1 << codec.data_bits) - 1)
    for other in (1, (1 << codec.data_bits) - 1, probe):
        combined = probe ^ other
        if codec.encode(combined) != codec.encode(probe) ^ codec.encode(other):
            raise ValueError(f"{codec.name}: encode is not GF(2)-linear")
    return matrix
