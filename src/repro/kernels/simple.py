"""Batch kernels for the trivial codecs: no protection and parity.

These exist less for speed (their scalar forms are already cheap) than
for uniformity: every Table 1 technique decodes through the same
:class:`~repro.kernels.base.BatchCodecKernel` interface, so campaign
and benchmark code never special-cases a scheme.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.none import NoProtection
from repro.ecc.parity import Parity
from repro.kernels.base import (
    STATUS_DETECTED,
    STATUS_OK,
    BatchCodecKernel,
    BatchDecodeResult,
)

__all__ = ["NoProtectionKernel", "ParityKernel"]


class NoProtectionKernel(BatchCodecKernel):
    """Identity decode: every word is trusted as-is."""

    def __init__(self, codec: NoProtection = None) -> None:
        super().__init__(codec if codec is not None else NoProtection())

    def decode_bits(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Pass the batch through unchanged (corruption is invisible)."""
        self._check_codewords(codewords)
        n = codewords.shape[0]
        return BatchDecodeResult(
            data=codewords.astype(np.uint8, copy=True),
            status=np.full(n, STATUS_OK, dtype=np.uint8),
            corrected=np.zeros((n, self.code_bits), dtype=np.uint8),
        )


class ParityKernel(BatchCodecKernel):
    """Even-parity check over the whole 65-bit codeword."""

    def __init__(self, codec: Parity = None) -> None:
        super().__init__(codec if codec is not None else Parity())

    def decode_bits(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Odd-weight batches are DETECTED, never repaired."""
        self._check_codewords(codewords)
        n = codewords.shape[0]
        odd = (codewords.sum(axis=1) & 1).astype(bool)
        status = np.where(odd, STATUS_DETECTED, STATUS_OK).astype(np.uint8)
        return BatchDecodeResult(
            data=codewords[:, : self.data_bits].astype(np.uint8, copy=True),
            status=status,
            corrected=np.zeros((n, self.code_bits), dtype=np.uint8),
        )
