"""Vectorized (36,32) SSC-DSD Chipkill decode over GF(16).

GF(16) multiplication by a constant is GF(2)-linear on the symbol's
four bits, so the entire 16-bit syndrome (four GF(16) coordinates) is a
linear map of the 144 codeword bits — one matrix product per batch.
Error location then becomes a pure table lookup: every correctable
syndrome is ``a · h_p`` for a symbol position ``p`` and error value
``a``, so a 65536-entry table built from the 36 × 15 (position, value)
pairs maps syndromes straight to corrections; everything else is a
detected double-symbol error.
"""

from __future__ import annotations

import numpy as np

from repro.ecc import chipkill
from repro.ecc.chipkill import Chipkill
from repro.ecc.galois import GF16
from repro.kernels.base import (
    STATUS_CORRECTED,
    STATUS_DETECTED,
    STATUS_OK,
    BatchCodecKernel,
    BatchDecodeResult,
)
from repro.kernels.gf2 import gf2_matmul

__all__ = ["ChipkillKernel"]

_SYMBOL_BITS = chipkill._SYMBOL_BITS
_TOTAL_SYMBOLS = chipkill._TOTAL_SYMBOLS
_CHECK_SYMBOLS = chipkill._CHECK_SYMBOLS
_SYNDROME_BITS = 4 * _SYMBOL_BITS  # 16


def _syndrome_matrix() -> np.ndarray:
    """``(144, 16)`` GF(2) map from codeword bits to packed syndrome.

    Codeword bit ``4p + j`` (bit j of symbol p) contributes
    ``GF16.mul(1 << j, h_p[r])`` to syndrome coordinate ``r``, which
    occupies packed bits ``[4r, 4r+4)``.
    """
    matrix = np.zeros((_TOTAL_SYMBOLS * _SYMBOL_BITS, _SYNDROME_BITS),
                      dtype=np.uint8)
    for position, column in enumerate(chipkill._COLUMNS):
        for bit in range(_SYMBOL_BITS):
            for row in range(4):
                contribution = GF16.mul(1 << bit, column[row])
                for out_bit in range(_SYMBOL_BITS):
                    matrix[
                        position * _SYMBOL_BITS + bit,
                        row * _SYMBOL_BITS + out_bit,
                    ] = (contribution >> out_bit) & 1
    return matrix


def _location_tables() -> tuple:
    """Syndrome int -> (symbol position | -1, error value).

    Built directly from the parity-check columns: the syndrome of error
    value ``a`` at position ``p`` is ``a · h_p``; 3-wise independence
    of the columns guarantees the 540 correctable syndromes are
    distinct, so every other non-zero syndrome is a detected miss.
    """
    positions = np.full(1 << _SYNDROME_BITS, -1, dtype=np.int64)
    values = np.zeros(1 << _SYNDROME_BITS, dtype=np.uint8)
    for position, column in enumerate(chipkill._COLUMNS):
        for error_value in range(1, 16):
            packed = 0
            for row in range(4):
                packed |= GF16.mul(error_value, column[row]) << (row * _SYMBOL_BITS)
            positions[packed] = position
            values[packed] = error_value
    return positions, values


class ChipkillKernel(BatchCodecKernel):
    """Batch SSC-DSD decode via syndrome matrix + full lookup table."""

    def __init__(self, codec: Chipkill = None) -> None:
        super().__init__(codec if codec is not None else Chipkill())
        self._syndrome_map = _syndrome_matrix()
        self._position_table, self._value_table = _location_tables()
        self._weights = (np.int64(1) << np.arange(_SYNDROME_BITS, dtype=np.int64))

    def decode_bits(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Correct one symbol per word; unmapped syndromes are DETECTED."""
        self._check_codewords(codewords)
        n = codewords.shape[0]
        syndrome_bits = gf2_matmul(codewords, self._syndrome_map)
        syndromes = syndrome_bits.astype(np.int64) @ self._weights

        positions = self._position_table[syndromes]
        error_values = self._value_table[syndromes]
        status = np.full(n, STATUS_DETECTED, dtype=np.uint8)
        status[syndromes == 0] = STATUS_OK
        fixable = (syndromes != 0) & (positions >= 0)
        status[fixable] = STATUS_CORRECTED

        repaired = codewords.astype(np.uint8, copy=True)
        corrected = np.zeros((n, self.code_bits), dtype=np.uint8)
        rows = np.flatnonzero(fixable)
        for bit in range(_SYMBOL_BITS):
            hit = rows[((error_values[rows] >> bit) & 1).astype(bool)]
            columns = positions[hit] * _SYMBOL_BITS + bit
            repaired[hit, columns] ^= 1
            corrected[hit, columns] = 1

        data = repaired[:, _CHECK_SYMBOLS * _SYMBOL_BITS :]
        return BatchDecodeResult(data=data, status=status, corrected=corrected)
