"""Batched injection planning for vectorized trial shards.

:class:`BatchInjectionPlanner` draws every trial's anchor address and
flip positions for a whole shard up front, one derived per-trial seed
stream at a time, and stores them in flat NumPy arrays. Address
sampling and position choice go through the exact scalar draw sequence
(:class:`~repro.injection.sampler.AddressSampler` followed by
:func:`~repro.injection.injector.plan_flip_positions`), so a plan's
positions are bit-identical to what the scalar path would have drawn
trial by trial — the plan *is* the scalar plan, batched.

What is vectorized is the materialization: the whole shard's 64-bit
word flip masks come out of one ``np.bitwise_or.reduceat`` over the
flat flip arrays (:meth:`InjectionPlan.word_flip_masks`), and per-trial
position lists are cheap slices of the same arrays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.injection.injector import ErrorSpec, plan_flip_positions
from repro.injection.sampler import AddressSampler
from repro.memory.address_space import AddressSpace

__all__ = ["InjectionPlan", "BatchInjectionPlanner"]


@dataclass(frozen=True)
class InjectionPlan:
    """Pre-drawn injection positions for one cell's trial shard.

    Flip positions are stored trial-major in flat arrays indexed by the
    ``flip_offsets`` prefix array: trial ``k`` (local index) owns flips
    ``flip_offsets[k]:flip_offsets[k + 1]``. The first flip of every
    trial is its anchor.
    """

    spec: ErrorSpec
    #: Campaign-level trial indices covered by this plan, in order.
    trial_indices: np.ndarray
    #: Anchor byte address per trial, ``(trials,)`` int64.
    anchor_addrs: np.ndarray
    #: Flat flip byte addresses, trial-major, ``(flips,)`` int64.
    flip_addrs: np.ndarray
    #: Flat flip bit indices (0-7 within the byte), ``(flips,)`` int64.
    flip_bits: np.ndarray
    #: Prefix offsets into the flat arrays, ``(trials + 1,)`` int64.
    flip_offsets: np.ndarray

    def __len__(self) -> int:
        return len(self.trial_indices)

    def flips_for(self, local_index: int) -> List[Tuple[int, int]]:
        """The (byte address, bit) flips of local trial ``local_index``."""
        start = int(self.flip_offsets[local_index])
        end = int(self.flip_offsets[local_index + 1])
        return [
            (int(addr), int(bit))
            for addr, bit in zip(
                self.flip_addrs[start:end], self.flip_bits[start:end]
            )
        ]

    def word_flip_masks(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-trial aligned word address and 64-bit flip mask.

        The whole shard's masks materialize in one array op: each flip
        becomes ``1 << (byte offset in word * 8 + bit)`` and
        ``np.bitwise_or.reduceat`` folds them per trial over the prefix
        offsets (every trial has at least its anchor flip, so all
        reduceat segments are non-empty).

        Returns:
            ``(word_addrs, masks)`` — both ``(trials,)``, ``word_addrs``
            int64 8-byte-aligned, ``masks`` uint64.
        """
        word_addrs = self.anchor_addrs - (self.anchor_addrs % 8)
        word_per_flip = np.repeat(word_addrs, np.diff(self.flip_offsets))
        shifts = (self.flip_addrs - word_per_flip) * 8 + self.flip_bits
        flip_masks = np.uint64(1) << shifts.astype(np.uint64)
        masks = np.bitwise_or.reduceat(flip_masks, self.flip_offsets[:-1])
        return word_addrs, masks


class BatchInjectionPlanner:
    """Plans a shard's injections from derived per-trial seed streams."""

    def __init__(self, space: AddressSpace) -> None:
        self._space = space

    def plan(
        self,
        spec: ErrorSpec,
        spans: Sequence[Tuple[int, int]],
        rng_for_trial: Callable[[int], random.Random],
        trial_indices: Sequence[int],
    ) -> InjectionPlan:
        """Draw anchor + flips for every trial index, scalar-identically.

        Args:
            spec: Error kind and multiplicity shared by the shard.
            spans: Live-data (base, end) spans to sample anchors from —
                constant across the shard because every trial resets the
                workload to the same checkpoint.
            rng_for_trial: Maps a campaign trial index to its derived
                seed stream (``CharacterizationCampaign.trial_rng``
                partially applied to the cell identity).
            trial_indices: Campaign-level trial indices to plan.
        """
        anchors: List[int] = []
        flat_addrs: List[int] = []
        flat_bits: List[int] = []
        offsets: List[int] = [0]
        for trial_index in trial_indices:
            rng = rng_for_trial(trial_index)
            sampler = AddressSampler(self._space, rng)
            addr = sampler.sample_from_ranges(spans)
            positions = plan_flip_positions(self._space, rng, spec, addr)
            anchors.append(addr)
            for byte_addr, bit in positions:
                flat_addrs.append(byte_addr)
                flat_bits.append(bit)
            offsets.append(len(flat_addrs))
        return InjectionPlan(
            spec=spec,
            trial_indices=np.asarray(list(trial_indices), dtype=np.int64),
            anchor_addrs=np.asarray(anchors, dtype=np.int64),
            flip_addrs=np.asarray(flat_addrs, dtype=np.int64),
            flip_bits=np.asarray(flat_bits, dtype=np.int64),
            flip_offsets=np.asarray(offsets, dtype=np.int64),
        )
