"""Batch kernels for the composite codecs: RAIM and Mirroring.

Both schemes are compositions over (72,64) SEC-DED stripes, so their
batch decoders reshape the batch into stripe-sized sub-batches, run the
:class:`~repro.kernels.secded.SecDedKernel` once over all stripes of
all words, and resolve the composition (XOR erasure repair, mirror
failover) with masked array arithmetic. The per-word semantics —
including RAIM's convention of marking a whole reconstructed stripe as
corrected — replicate the scalar decoders exactly.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.mirroring import Mirroring
from repro.ecc.raim import Raim, _STRIPE_CODE_BITS, _STRIPE_DATA_BITS, _STRIPES
from repro.kernels.base import (
    STATUS_CORRECTED,
    STATUS_DETECTED,
    STATUS_OK,
    BatchCodecKernel,
    BatchDecodeResult,
)
from repro.kernels.secded import SecDedKernel

__all__ = ["RaimKernel", "MirroringKernel"]


class RaimKernel(BatchCodecKernel):
    """Batch 4+1 XOR-striped SEC-DED decode with erasure repair.

    The batch path has no ``erased_stripe`` marking argument — failed
    stripes are inferred from per-stripe SEC-DED uncorrectability, the
    scalar decoder's default; use the scalar codec for marked-erasure
    experiments.
    """

    def __init__(self, codec: Raim = None) -> None:
        super().__init__(codec if codec is not None else Raim())
        self._inner = SecDedKernel()

    def decode_bits(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Decode all 5n stripes at once, then arbitrate per word."""
        self._check_codewords(codewords)
        n = codewords.shape[0]
        stripes = codewords.reshape(n * _STRIPES, _STRIPE_CODE_BITS)
        inner = self._inner.decode_bits(stripes)
        stripe_status = inner.status.reshape(n, _STRIPES)
        stripe_data = inner.data.reshape(n, _STRIPES, _STRIPE_DATA_BITS)
        stripe_corrected = inner.corrected.reshape(n, self.code_bits)

        failed = stripe_status == STATUS_DETECTED
        failures = failed.sum(axis=1)

        # Best-effort data: the four data stripes as decoded.
        data = stripe_data[:, :4, :].reshape(n, self.data_bits).copy()
        status = np.full(n, STATUS_DETECTED, dtype=np.uint8)
        corrected = np.zeros((n, self.code_bits), dtype=np.uint8)

        # Exactly one failed stripe: reconstruct it from the XOR of the
        # other four (the parity stripe carries the data stripes' XOR).
        single = failures == 1
        if single.any():
            rows = np.flatnonzero(single)
            erased = failed[rows].argmax(axis=1)
            total_xor = np.bitwise_xor.reduce(stripe_data[rows], axis=1)
            repaired = total_xor ^ stripe_data[rows, erased]
            # Scatter the reconstruction into the erased *data* stripes
            # (an erased parity stripe leaves the data untouched).
            in_data = np.flatnonzero(erased < 4)
            data_columns = (
                (erased[in_data] * _STRIPE_DATA_BITS)[:, None]
                + np.arange(_STRIPE_DATA_BITS)[None, :]
            )
            data[rows[in_data][:, None], data_columns] = repaired[in_data]
            status[single] = STATUS_CORRECTED
            # Inner corrections survive, plus the whole erased stripe.
            corrected[rows] = stripe_corrected[rows]
            erased_columns = (
                (erased * _STRIPE_CODE_BITS)[:, None]
                + np.arange(_STRIPE_CODE_BITS)[None, :]
            )
            corrected[rows[:, None], erased_columns] = 1

        healthy = failures == 0
        any_inner = stripe_corrected.any(axis=1)
        status[healthy & any_inner] = STATUS_CORRECTED
        status[healthy & ~any_inner] = STATUS_OK
        healthy_rows = np.flatnonzero(healthy & any_inner)
        corrected[healthy_rows] = stripe_corrected[healthy_rows]
        # failures > 1 keeps DETECTED with an empty corrected mask,
        # matching the scalar decoder.

        return BatchDecodeResult(data=data, status=status, corrected=corrected)


class MirroringKernel(BatchCodecKernel):
    """Batch dual-copy SEC-DED decode with failover to the mirror."""

    def __init__(self, codec: Mirroring = None) -> None:
        super().__init__(codec if codec is not None else Mirroring())
        self._inner = SecDedKernel()
        self._half = self._inner.code_bits  # 72

    def decode_bits(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Serve from the primary; fail over when it is uncorrectable."""
        self._check_codewords(codewords)
        n = codewords.shape[0]
        half = self._half
        primary = self._inner.decode_bits(codewords[:, :half])
        mirror = self._inner.decode_bits(codewords[:, half:])

        data = primary.data.copy()
        status = primary.status.copy()
        corrected = np.zeros((n, self.code_bits), dtype=np.uint8)
        primary_rows = np.flatnonzero(primary.status == STATUS_CORRECTED)
        corrected[primary_rows, :half] = primary.corrected[primary_rows]

        # Primary uncorrectable: the mirror serves unless it too failed.
        failover = (primary.status == STATUS_DETECTED) & (
            mirror.status != STATUS_DETECTED
        )
        rows = np.flatnonzero(failover)
        data[rows] = mirror.data[rows]
        status[failover] = STATUS_CORRECTED
        corrected[rows, half:] = mirror.corrected[rows]
        # Both copies uncorrectable stays DETECTED with the primary's
        # best-effort data, matching the scalar decoder.

        return BatchDecodeResult(data=data, status=status, corrected=corrected)
