"""Batch codec kernel interface and result container.

A :class:`BatchCodecKernel` is the vectorized counterpart of a scalar
:class:`repro.ecc.base.Codec`: it encodes and decodes whole batches of
words as NumPy bit matrices, with identical semantics — the scalar
codec remains the reference oracle, and the property suite asserts
per-word equality of data, status, and repaired-bit sets for every
kernel (see ``tests/property/test_prop_kernels.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.kernels.gf2 import bits_to_ints, generator_matrix, gf2_matmul, ints_to_bits

__all__ = [
    "STATUS_OK",
    "STATUS_CORRECTED",
    "STATUS_DETECTED",
    "STATUS_VALUES",
    "BatchDecodeResult",
    "BatchCodecKernel",
]

#: Integer status codes used inside batch results (array-friendly).
STATUS_OK = 0
STATUS_CORRECTED = 1
STATUS_DETECTED = 2

#: Code -> :class:`DecodeStatus` (index = status code).
STATUS_VALUES = (DecodeStatus.OK, DecodeStatus.CORRECTED, DecodeStatus.DETECTED)


@dataclass
class BatchDecodeResult:
    """Decoded batch: per-word data bits, status codes, and repair masks.

    Attributes:
        data: ``(n, data_bits)`` uint8 decoded data-bit matrix.
        status: ``(n,)`` uint8 array of ``STATUS_*`` codes.
        corrected: ``(n, code_bits)`` uint8 mask of repaired codeword
            positions — the batch form of ``DecodeResult.corrected_bits``
            (RAIM keeps the scalar convention of marking the whole
            erased stripe, not just the bits that differed).
    """

    data: np.ndarray
    status: np.ndarray
    corrected: np.ndarray

    def __len__(self) -> int:
        return self.data.shape[0]

    def data_ints(self) -> List[int]:
        """Decoded data words as Python integers."""
        return bits_to_ints(self.data)

    def statuses(self) -> List[DecodeStatus]:
        """Per-word decode statuses."""
        return [STATUS_VALUES[code] for code in self.status]

    def result_at(self, index: int) -> DecodeResult:
        """Materialize one word's scalar-equivalent :class:`DecodeResult`.

        ``corrected_bits`` comes back in ascending position order; the
        scalar decoders emit discovery order, so equivalence checks
        compare the *sets*.
        """
        data = int.from_bytes(
            np.packbits(self.data[index], bitorder="little").tobytes(), "little"
        )
        return DecodeResult(
            data=data,
            status=STATUS_VALUES[int(self.status[index])],
            corrected_bits=[int(p) for p in np.flatnonzero(self.corrected[index])],
        )


class BatchCodecKernel(abc.ABC):
    """Vectorized encode/syndrome/correct engine for one codec.

    Construction derives the generator matrix (and any decoder lookup
    tables) from the scalar codec once; instances are memoized per
    technique by :func:`repro.kernels.registry.get_kernel`.
    """

    def __init__(self, codec: Codec) -> None:
        self.codec = codec
        self.data_bits = codec.data_bits
        self.code_bits = codec.code_bits
        #: ``(data_bits, code_bits)`` generator matrix probed from the codec.
        self.generator = generator_matrix(codec)

    @property
    def name(self) -> str:
        """Technique name (matches the scalar codec and Table 1)."""
        return self.codec.name

    # ------------------------------------------------------------------
    def encode_bits(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(n, data_bits)`` batch into ``(n, code_bits)``."""
        if data.ndim != 2 or data.shape[1] != self.data_bits:
            raise ValueError(
                f"expected (n, {self.data_bits}) data bits, got {data.shape}"
            )
        return gf2_matmul(data, self.generator)

    def encode_ints(self, values: Sequence[int]) -> List[int]:
        """Encode a sequence of data words (integer convenience form)."""
        return bits_to_ints(self.encode_bits(ints_to_bits(values, self.data_bits)))

    @abc.abstractmethod
    def decode_bits(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Decode a ``(n, code_bits)`` batch of possibly corrupt words."""

    def decode_ints(self, values: Sequence[int]) -> BatchDecodeResult:
        """Decode a sequence of codewords (integer convenience form)."""
        return self.decode_bits(ints_to_bits(values, self.code_bits))

    def _check_codewords(self, codewords: np.ndarray) -> None:
        if codewords.ndim != 2 or codewords.shape[1] != self.code_bits:
            raise ValueError(
                f"expected (n, {self.code_bits}) codeword bits, got "
                f"{codewords.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"{type(self).__name__}({self.name})"
