"""Vectorized (72,64) SEC-DED decode.

The scalar decoder computes seven coverage parities and an overall
parity per word; here the whole batch's syndromes come from one GF(2)
matrix product with the precomputed parity-check matrix ``H`` (built
from the same coverage masks the scalar codec uses), and the syndrome →
flip-position mapping is a 128-entry lookup table. Corrections are
applied with fancy-indexed XOR; data extraction is a single gather of
the 64 data positions.
"""

from __future__ import annotations

import numpy as np

from repro.ecc import hamming
from repro.ecc.hamming import SecDed
from repro.kernels.base import (
    STATUS_CORRECTED,
    STATUS_DETECTED,
    STATUS_OK,
    BatchCodecKernel,
    BatchDecodeResult,
)
from repro.kernels.gf2 import gf2_matmul

__all__ = ["SecDedKernel"]


def _parity_check_matrix() -> np.ndarray:
    """``(72, 7)`` matrix H: column i = coverage of check bit i.

    Row ``p`` has bit ``i`` set when codeword position ``p`` contributes
    to syndrome bit ``i`` — the coverage mask *plus the check bit
    itself*, exactly as the scalar decoder computes it.
    """
    matrix = np.zeros((hamming._TOTAL_POSITIONS, len(hamming._CHECK_POSITIONS)),
                      dtype=np.uint8)
    for check_index, check_position in enumerate(hamming._CHECK_POSITIONS):
        covered = hamming._COVERAGE_MASKS[check_index] | (1 << check_position)
        for position in range(hamming._TOTAL_POSITIONS):
            matrix[position, check_index] = (covered >> position) & 1
    return matrix


def _flip_position_table() -> np.ndarray:
    """Syndrome value -> codeword position to flip (-1 = uncorrectable).

    Syndrome 0 with odd parity means the overall-parity bit (position
    0) itself flipped; syndromes pointing past position 71 are aliased
    multi-bit corruption and stay uncorrectable, matching the scalar
    decoder's out-of-range guard.
    """
    table = np.full(128, -1, dtype=np.int64)
    table[0] = 0
    for syndrome in range(1, hamming._TOTAL_POSITIONS):
        table[syndrome] = syndrome
    return table


class SecDedKernel(BatchCodecKernel):
    """Batch (72,64) extended-Hamming decode via H-matrix + LUT."""

    def __init__(self, codec: SecDed = None) -> None:
        super().__init__(codec if codec is not None else SecDed())
        self._h_matrix = _parity_check_matrix()
        self._flip_table = _flip_position_table()
        #: Syndrome bit i carries weight 2^i — check positions are the
        #: powers of two, so packing the bits reconstructs the position.
        self._weights = np.array(hamming._CHECK_POSITIONS, dtype=np.int64)
        self._data_positions = np.array(hamming._DATA_POSITIONS, dtype=np.int64)

    def decode_bits(self, codewords: np.ndarray) -> BatchDecodeResult:
        """SEC-DED decode per the scalar truth table, batch-wide."""
        self._check_codewords(codewords)
        n = codewords.shape[0]
        syndrome_bits = gf2_matmul(codewords, self._h_matrix)
        syndromes = syndrome_bits.astype(np.int64) @ self._weights
        parity_odd = (codewords.sum(axis=1) & 1).astype(bool)

        flip_positions = self._flip_table[syndromes]
        status = np.full(n, STATUS_OK, dtype=np.uint8)
        corrected = np.zeros((n, self.code_bits), dtype=np.uint8)
        repaired = codewords.astype(np.uint8, copy=True)

        # Odd parity: single-bit error at the syndrome position (or the
        # parity bit itself); an out-of-range syndrome is uncorrectable.
        single = parity_odd & (flip_positions >= 0)
        rows = np.flatnonzero(single)
        repaired[rows, flip_positions[rows]] ^= 1
        corrected[rows, flip_positions[rows]] = 1
        status[single] = STATUS_CORRECTED
        status[parity_odd & (flip_positions < 0)] = STATUS_DETECTED
        # Even parity with a non-zero syndrome: double-bit error.
        status[~parity_odd & (syndromes != 0)] = STATUS_DETECTED

        return BatchDecodeResult(
            data=repaired[:, self._data_positions],
            status=status,
            corrected=corrected,
        )
