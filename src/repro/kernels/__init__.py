"""Vectorized batch-trial kernels: GF(2) codec decode + injection planning.

Every Table 1 codec is GF(2)-linear, so batch encode is one bit-matrix
product and batch decode is a handful of precomputed-table gathers —
orders of magnitude faster than looping the scalar codecs, while the
scalar implementations in :mod:`repro.ecc` remain the reference oracle
(kernels derive their generator matrices *from* the scalar encoders and
are property-tested bit-identical to them).

Entry points:

* :func:`get_kernel` — memoized batch kernel per technique name;
* :class:`BatchInjectionPlanner` — draws a whole trial shard's flip
  masks from the derived per-trial seed streams, scalar-identically;
* ``backend="vectorized"`` on
  :class:`~repro.core.campaign.CharacterizationCampaign` wires both
  into the characterization loop.
"""

from repro.kernels.base import (
    STATUS_CORRECTED,
    STATUS_DETECTED,
    STATUS_OK,
    BatchCodecKernel,
    BatchDecodeResult,
)
from repro.kernels.chipkill import ChipkillKernel
from repro.kernels.composite import MirroringKernel, RaimKernel
from repro.kernels.dected import DecTedKernel
from repro.kernels.gf2 import bits_to_ints, generator_matrix, gf2_matmul, ints_to_bits
from repro.kernels.planner import BatchInjectionPlanner, InjectionPlan
from repro.kernels.registry import available_kernels, clear_kernel_cache, get_kernel
from repro.kernels.secded import SecDedKernel
from repro.kernels.simple import NoProtectionKernel, ParityKernel

__all__ = [
    "STATUS_OK",
    "STATUS_CORRECTED",
    "STATUS_DETECTED",
    "BatchCodecKernel",
    "BatchDecodeResult",
    "NoProtectionKernel",
    "ParityKernel",
    "SecDedKernel",
    "DecTedKernel",
    "ChipkillKernel",
    "RaimKernel",
    "MirroringKernel",
    "BatchInjectionPlanner",
    "InjectionPlan",
    "available_kernels",
    "get_kernel",
    "clear_kernel_cache",
    "ints_to_bits",
    "bits_to_ints",
    "gf2_matmul",
    "generator_matrix",
]
