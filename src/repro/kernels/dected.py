"""Vectorized DEC-TED (extended shortened BCH(127,113)) decode.

Syndromes ``S1 = r(α)`` and ``S3 = r(α^3)`` are GF(2)-linear in the
received bits, so both come from one matrix product with precomputed
``(78, 7)`` bit matrices whose row ``p`` is ``α^p`` (respectively
``α^{3p}``). The closed-form t=2 decoder is then a handful of GF(128)
log/antilog table gathers, and the Chien search for two-error rows
evaluates the locator polynomial over all 78 candidate positions as one
``(rows, 78)`` array expression.
"""

from __future__ import annotations

import numpy as np

from repro.ecc import dec_ted
from repro.ecc.dec_ted import DecTed
from repro.ecc.galois import GF128
from repro.kernels.base import (
    STATUS_CORRECTED,
    STATUS_DETECTED,
    STATUS_OK,
    BatchCodecKernel,
    BatchDecodeResult,
)
from repro.kernels.gf2 import gf2_matmul

__all__ = ["DecTedKernel"]

_M = GF128.m  # 7 syndrome bits per GF(128) element
_BCH_BITS = dec_ted._SHORTENED_LIMIT  # 78: checks + data, no parity bit
_ORDER = GF128.order  # 127


def _syndrome_matrix(multiplier: int) -> np.ndarray:
    """``(78, 7)`` bit matrix whose row p is ``α^(multiplier·p)``."""
    matrix = np.zeros((_BCH_BITS, _M), dtype=np.uint8)
    for position in range(_BCH_BITS):
        element = GF128.alpha_pow(multiplier * position)
        for bit in range(_M):
            matrix[position, bit] = (element >> bit) & 1
    return matrix


class DecTedKernel(BatchCodecKernel):
    """Batch t=2 BCH + overall-parity decode via GF(128) table gathers."""

    def __init__(self, codec: DecTed = None) -> None:
        super().__init__(codec if codec is not None else DecTed())
        self._m1 = _syndrome_matrix(1)
        self._m3 = _syndrome_matrix(3)
        self._weights = (np.int64(1) << np.arange(_M, dtype=np.int64))
        self._exp = np.array([GF128.alpha_pow(k) for k in range(_ORDER)],
                             dtype=np.int64)
        log_table = np.zeros(GF128.size, dtype=np.int64)
        for value in range(1, GF128.size):
            log_table[value] = GF128.log(value)
        self._log = log_table
        cube = np.zeros(GF128.size, dtype=np.int64)
        for value in range(1, GF128.size):
            cube[value] = GF128.pow(value, 3)
        self._cube = cube
        self._positions = np.arange(_BCH_BITS, dtype=np.int64)
        #: α^{2p} for every candidate error position (Chien grid row).
        self._x_squared = self._exp[(2 * self._positions) % _ORDER]

    def decode_bits(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Parity-arbitrated t=2 decode, mirroring the scalar branches."""
        self._check_codewords(codewords)
        n = codewords.shape[0]
        bch = codewords[:, :_BCH_BITS].astype(np.uint8, copy=True)
        stored_parity = codewords[:, _BCH_BITS].astype(np.int64)
        parity_odd = (
            (bch.sum(axis=1, dtype=np.int64) & 1) ^ stored_parity
        ).astype(bool)

        s1 = gf2_matmul(bch, self._m1).astype(np.int64) @ self._weights
        s3 = gf2_matmul(bch, self._m3).astype(np.int64) @ self._weights

        status = np.full(n, STATUS_DETECTED, dtype=np.uint8)
        corrected = np.zeros((n, self.code_bits), dtype=np.uint8)
        parity_pos = self.codec.parity_position

        # Clean BCH word: OK, or the parity bit itself flipped.
        clean = (s1 == 0) & (s3 == 0)
        status[clean & ~parity_odd] = STATUS_OK
        clean_parity = clean & parity_odd
        status[clean_parity] = STATUS_CORRECTED
        corrected[clean_parity, parity_pos] = 1

        # Single-error signature: S3 == S1^3 with S1 != 0.
        single = (s1 != 0) & (s3 == self._cube[s1])
        single_pos = self._log[s1]
        fixable = single & (single_pos < _BCH_BITS)
        rows = np.flatnonzero(fixable)
        bch[rows, single_pos[rows]] ^= 1
        corrected[rows, single_pos[rows]] = 1
        status[fixable] = STATUS_CORRECTED
        # Even total parity with one BCH error: the parity bit flipped too.
        even_rows = np.flatnonzero(fixable & ~parity_odd)
        corrected[even_rows, parity_pos] = 1
        # single & pos >= 78 stays DETECTED (error in the shortened region),
        # as does s1 == 0 with s3 != 0.

        # Two-error candidates: Chien-search the locator polynomial. Rows
        # with odd parity are >= 3 errors regardless, so skip the search.
        double = (s1 != 0) & (s3 != self._cube[s1]) & ~parity_odd
        search = np.flatnonzero(double)
        if search.size:
            s1d = s1[search]
            s3d = s3[search]
            log_s1 = self._log[s1d]
            # c = S3/S1 + S1^2 (the division is 0 when S3 == 0).
            ratio = np.where(
                s3d == 0,
                np.int64(0),
                self._exp[(self._log[s3d] - log_s1) % _ORDER],
            )
            c = ratio ^ self._exp[(2 * log_s1) % _ORDER]
            # σ(α^p) = α^{2p} + S1·α^p + c over the (rows, 78) grid.
            s1_x = self._exp[(log_s1[:, None] + self._positions[None, :]) % _ORDER]
            values = self._x_squared[None, :] ^ s1_x ^ c[:, None]
            roots = values == 0
            located = roots.sum(axis=1) >= 2
            first = roots.argmax(axis=1)
            remaining = roots.copy()
            remaining[np.arange(search.size), first] = False
            second = remaining.argmax(axis=1)
            hit = np.flatnonzero(located)
            hit_rows = search[hit]
            bch[hit_rows, first[hit]] ^= 1
            bch[hit_rows, second[hit]] ^= 1
            corrected[hit_rows, first[hit]] = 1
            corrected[hit_rows, second[hit]] = 1
            status[hit_rows] = STATUS_CORRECTED
            # Rows without two in-range roots stay DETECTED.

        data = bch[:, dec_ted._BCH_CHECK_BITS:_BCH_BITS]
        return BatchDecodeResult(data=data, status=status, corrected=corrected)
