"""Memory mirroring (paper reference [12], POWER7 RAS).

Mirroring keeps two full copies of memory on separate DIMM pairs, each
with its own SEC-DED ECC. A read that is uncorrectable on the primary
copy is served from the mirror, tolerating the failure of an entire
module. Table 1's 125 % added capacity follows directly from the layout:
a second copy (100 %) of already-ECC-protected data (each copy 112.5 % of
raw), i.e. 2 × 72 bits stored per 64 data bits.
"""

from __future__ import annotations

from typing import Optional

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.ecc.hamming import SecDed


class Mirroring(Codec):
    """Two SEC-DED-protected copies; failover on uncorrectable primary."""

    name = "Mirroring"
    data_bits = 64
    code_bits = 144  # two (72,64) codewords
    added_logic = "low"
    capability = "2/8 chips (1/2 modules)"

    def __init__(self, *, inner: Optional[SecDed] = None) -> None:
        self._inner = inner if inner is not None else SecDed()

    def encode(self, data: int) -> int:
        """Store the same SEC-DED codeword twice."""
        self._check_data(data)
        inner = self._inner.encode(data)
        return inner | (inner << 72)

    def decode(self, codeword: int) -> DecodeResult:
        """Decode primary; fail over to the mirror when uncorrectable."""
        self._check_codeword(codeword)
        primary_word = codeword & ((1 << 72) - 1)
        mirror_word = codeword >> 72
        primary = self._inner.decode(primary_word)
        if primary.status is DecodeStatus.OK:
            return primary
        mirror = self._inner.decode(mirror_word)
        if primary.status is DecodeStatus.CORRECTED:
            # Primary was repairable; report CORRECTED (mirror unused).
            return primary
        # Primary uncorrectable: serve from the mirror if it is healthy.
        if mirror.status is not DecodeStatus.DETECTED:
            corrected = list(primary.corrected_bits)
            corrected.extend(72 + bit for bit in mirror.corrected_bits)
            return DecodeResult(mirror.data, DecodeStatus.CORRECTED, corrected)
        return DecodeResult(primary.data, DecodeStatus.DETECTED)
