"""RAIM: Redundant Array of Independent Memory (paper reference [11]).

IBM zEnterprise RAIM stripes data across five DIMMs: four carry data and
the fifth carries their XOR parity, with per-DIMM SEC-DED identifying
which DIMM failed. Any single DIMM — including a wholly failed one — can
be reconstructed from the remaining four (an erasure channel: SEC-DED
*locates* the bad stripe, XOR parity *repairs* it).

Layout per logical word: 4 × 64-bit data stripes + 1 × 64-bit parity
stripe, each stored as a (72,64) SEC-DED codeword → 360 stored bits per
256 data bits = 40.6 % added capacity, exactly Table 1's figure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.ecc.hamming import SecDed

_STRIPES = 5  # 4 data + 1 parity
_STRIPE_DATA_BITS = 64
_STRIPE_CODE_BITS = 72


class Raim(Codec):
    """4+1 XOR-striped SEC-DED words tolerating a full module failure."""

    name = "RAIM"
    data_bits = 4 * _STRIPE_DATA_BITS  # 256
    code_bits = _STRIPES * _STRIPE_CODE_BITS  # 360
    added_logic = "high"
    capability = "1/5 modules (1/5 modules)"

    def __init__(self, *, inner: Optional[SecDed] = None) -> None:
        self._inner = inner if inner is not None else SecDed()

    def encode(self, data: int) -> int:
        """Split into 4 stripes, add XOR parity stripe, SEC-DED each."""
        self._check_data(data)
        mask = (1 << _STRIPE_DATA_BITS) - 1
        stripes = [(data >> (i * _STRIPE_DATA_BITS)) & mask for i in range(4)]
        parity = 0
        for stripe in stripes:
            parity ^= stripe
        stripes.append(parity)
        codeword = 0
        for index, stripe in enumerate(stripes):
            codeword |= self._inner.encode(stripe) << (index * _STRIPE_CODE_BITS)
        return codeword

    def decode(self, codeword: int, erased_stripe: int = None) -> DecodeResult:
        """Decode stripes; reconstruct at most one erased stripe by XOR.

        Args:
            codeword: The 360-bit stored word.
            erased_stripe: Index of a stripe known to be failed (real RAIM
                learns this from per-channel CRC "marking" when a DIMM
                dies); its contents are ignored and reconstructed. Without
                marking, stripe failure is inferred from per-stripe
                SEC-DED uncorrectability.
        """
        self._check_codeword(codeword)
        if erased_stripe is not None and not 0 <= erased_stripe < _STRIPES:
            raise ValueError(f"erased_stripe must be in [0, {_STRIPES}), got {erased_stripe}")
        stripe_mask = (1 << _STRIPE_CODE_BITS) - 1
        results: List[DecodeResult] = []
        for index in range(_STRIPES):
            stripe_word = (codeword >> (index * _STRIPE_CODE_BITS)) & stripe_mask
            results.append(self._inner.decode(stripe_word))
        failed = [i for i, result in enumerate(results) if not result.ok]
        if erased_stripe is not None and erased_stripe not in failed:
            failed = sorted(set(failed) | {erased_stripe})
        corrected_bits: List[int] = []
        for index, result in enumerate(results):
            corrected_bits.extend(
                index * _STRIPE_CODE_BITS + bit for bit in result.corrected_bits
            )
        if len(failed) > 1:
            return DecodeResult(self._assemble(results), DecodeStatus.DETECTED)
        if len(failed) == 1:
            # Erasure repair: XOR of the four healthy stripes.
            erased = failed[0]
            repaired = 0
            for index, result in enumerate(results):
                if index != erased:
                    repaired ^= result.data
            values = [result.data for result in results]
            values[erased] = repaired
            data = self._assemble_values(values)
            corrected_bits.extend(
                erased * _STRIPE_CODE_BITS + bit for bit in range(_STRIPE_CODE_BITS)
            )
            return DecodeResult(data, DecodeStatus.CORRECTED, corrected_bits)
        if corrected_bits:
            return DecodeResult(
                self._assemble(results), DecodeStatus.CORRECTED, corrected_bits
            )
        return DecodeResult(self._assemble(results), DecodeStatus.OK)

    @staticmethod
    def _assemble(results: List[DecodeResult]) -> int:
        return Raim._assemble_values([result.data for result in results])

    @staticmethod
    def _assemble_values(values: List[int]) -> int:
        data = 0
        for index in range(4):
            data |= values[index] << (index * _STRIPE_DATA_BITS)
        return data
