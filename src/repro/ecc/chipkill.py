"""Chipkill: single-chip-symbol correct, double-chip-symbol detect.

Chipkill-correct memory (Dell/IBM 1997 — paper reference [10]) spreads
each ECC word across many x4 DRAM chips so that the failure of an entire
chip corrupts exactly one 4-bit *symbol* of the codeword. Commercial
implementations use (144, 128) SSC-DSD codes — 128 data bits plus 16
check bits per word, the same 12.5 % overhead as SEC-DED (Table 1), but
correcting any single 4-bit symbol and detecting any double symbol
error.

This module implements a true (36, 32) SSC-DSD code over GF(2^4): 32
data symbols + 4 check symbols, one symbol per chip. The parity-check
matrix has 36 columns in GF(16)^4, the first four being the identity
basis (making the code systematic), chosen so that **any three columns
are linearly independent** — the algebraic condition for minimum symbol
distance 4, i.e. SSC-DSD. The column set is found at import time by a
deterministic greedy search (equivalent in capability to the
Kaneda–Fujiwara b-adjacent construction used in real controllers) and is
verified by the property tests.

Decoding: the syndrome ``s ∈ GF(16)^4`` of a single symbol error of
value ``a`` at position ``i`` equals ``a · h_i``; pairwise independence
of columns makes the position unambiguous, and 3-wise independence
guarantees a double error never aliases to any single error or to zero.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.ecc.galois import GF16

_DATA_SYMBOLS = 32
_CHECK_SYMBOLS = 4
_TOTAL_SYMBOLS = _DATA_SYMBOLS + _CHECK_SYMBOLS
_SYMBOL_BITS = 4
_SYMBOL_MASK = 0xF


def _normalize(column: Tuple[int, int, int, int]) -> Tuple[int, int, int, int]:
    """Scale a column so its first non-zero coordinate is 1 (direction)."""
    for coordinate in column:
        if coordinate:
            inverse = GF16.inv(coordinate)
            return tuple(GF16.mul(value, inverse) for value in column)
    raise ValueError("cannot normalize the zero column")


def _scale(column: Tuple[int, int, int, int], factor: int) -> Tuple[int, int, int, int]:
    return tuple(GF16.mul(value, factor) for value in column)


def _add(
    a: Tuple[int, int, int, int], b: Tuple[int, int, int, int]
) -> Tuple[int, int, int, int]:
    return tuple(x ^ y for x, y in zip(a, b))


def _build_columns() -> List[Tuple[int, int, int, int]]:
    """Greedy deterministic search for 36 3-wise-independent columns."""
    identity = [
        (1, 0, 0, 0),
        (0, 1, 0, 0),
        (0, 0, 1, 0),
        (0, 0, 0, 1),
    ]
    columns: List[Tuple[int, int, int, int]] = []
    # All normalized directions already reachable from pairs of chosen
    # columns (including the chosen directions themselves). A candidate in
    # this set would break 3-wise independence.
    blocked = set()

    def admit(column: Tuple[int, int, int, int]) -> None:
        # Extend `blocked` with every direction in span(column, existing).
        for existing in columns:
            for factor_a in range(1, 16):
                scaled_existing = _scale(existing, factor_a)
                for factor_b in range(1, 16):
                    combo = _add(scaled_existing, _scale(column, factor_b))
                    if any(combo):
                        blocked.add(_normalize(combo))
        blocked.add(_normalize(column))
        columns.append(column)

    for column in identity:
        admit(column)

    # Enumerate candidate directions in a fixed order for determinism.
    candidate = 1
    while len(columns) < _TOTAL_SYMBOLS and candidate < 16**4:
        column = (
            (candidate >> 12) & 0xF,
            (candidate >> 8) & 0xF,
            (candidate >> 4) & 0xF,
            candidate & 0xF,
        )
        candidate += 1
        if not any(column):
            continue
        direction = _normalize(column)
        if direction != column:
            continue  # visit each direction once, in normalized form
        if direction in blocked:
            continue
        admit(direction)
    if len(columns) != _TOTAL_SYMBOLS:
        raise AssertionError(
            f"column search found only {len(columns)} of {_TOTAL_SYMBOLS} columns"
        )
    return columns


#: Parity-check columns; index = symbol position. First four are identity.
_COLUMNS = _build_columns()
#: Lookup from normalized syndrome direction -> symbol position.
_DIRECTION_TO_POSITION = {
    _normalize(column): position for position, column in enumerate(_COLUMNS)
}


def _to_symbols(value: int, count: int) -> List[int]:
    """Split an integer into ``count`` 4-bit symbols, lowest first."""
    return [(value >> (_SYMBOL_BITS * i)) & _SYMBOL_MASK for i in range(count)]


def _from_symbols(symbols: List[int]) -> int:
    """Inverse of :func:`_to_symbols`."""
    value = 0
    for index, symbol in enumerate(symbols):
        value |= symbol << (_SYMBOL_BITS * index)
    return value


class Chipkill(Codec):
    """(36,32) SSC-DSD code over GF(16): one symbol per x4 chip."""

    name = "Chipkill"
    data_bits = _DATA_SYMBOLS * _SYMBOL_BITS  # 128
    code_bits = _TOTAL_SYMBOLS * _SYMBOL_BITS  # 144
    added_logic = "high"
    capability = "2/8 chips (1/8 chips)"

    @property
    def symbol_bits(self) -> int:
        """Bits per chip symbol."""
        return _SYMBOL_BITS

    @property
    def total_symbols(self) -> int:
        """Symbols per codeword (chips spanned by one word)."""
        return _TOTAL_SYMBOLS

    def encode(self, data: int) -> int:
        """Systematic encode: checks at symbol positions 0-3."""
        self._check_data(data)
        data_symbols = _to_symbols(data, _DATA_SYMBOLS)
        checks = [0, 0, 0, 0]
        for offset, symbol in enumerate(data_symbols):
            if symbol:
                column = _COLUMNS[_CHECK_SYMBOLS + offset]
                for row in range(4):
                    checks[row] ^= GF16.mul(symbol, column[row])
        # With identity check columns, H·c = 0 gives check_k = sum_k.
        symbols = checks + data_symbols
        return _from_symbols(symbols)

    def decode(self, codeword: int) -> DecodeResult:
        """Syndrome decode: correct 1 symbol; any 2-symbol error detects."""
        self._check_codeword(codeword)
        symbols = _to_symbols(codeword, _TOTAL_SYMBOLS)
        syndrome = [0, 0, 0, 0]
        for position, symbol in enumerate(symbols):
            if symbol:
                column = _COLUMNS[position]
                for row in range(4):
                    syndrome[row] ^= GF16.mul(symbol, column[row])
        if not any(syndrome):
            return DecodeResult(self._extract(symbols), DecodeStatus.OK)
        located = self._locate(tuple(syndrome))
        if located is None:
            return DecodeResult(self._extract(symbols), DecodeStatus.DETECTED)
        position, error_value = located
        symbols[position] ^= error_value
        corrected_bits = [
            position * _SYMBOL_BITS + bit
            for bit in range(_SYMBOL_BITS)
            if (error_value >> bit) & 1
        ]
        return DecodeResult(
            self._extract(symbols), DecodeStatus.CORRECTED, corrected_bits
        )

    @staticmethod
    def _locate(syndrome: Tuple[int, int, int, int]) -> Optional[Tuple[int, int]]:
        """Map a non-zero syndrome to (symbol position, error value)."""
        direction = _normalize(syndrome)
        position = _DIRECTION_TO_POSITION.get(direction)
        if position is None:
            return None
        column = _COLUMNS[position]
        # Error value a satisfies syndrome = a * column; read it off the
        # first non-zero coordinate of the column.
        for row in range(4):
            if column[row]:
                return position, GF16.div(syndrome[row], column[row])
        return None

    @staticmethod
    def _extract(symbols: List[int]) -> int:
        return _from_symbols(symbols[_CHECK_SYMBOLS:])
