"""SEC-DED (72,64) extended Hamming code.

The workhorse server ECC: corrects any single-bit error and detects any
double-bit error per 64-bit word using 8 check bits (12.5 % added
capacity — Table 1's "SEC-DED" row and the 12.5 % memory-cost premium the
paper's Typical Server carries).

Construction: the classic extended Hamming layout. Codeword positions are
numbered 1..71 with check bits at the seven powers of two (1, 2, 4, 8,
16, 32, 64) and data bits filling the rest; an overall even-parity bit
occupies position 0. Decoding computes the 7-bit syndrome plus overall
parity:

==========================  =======================================
syndrome == 0, parity even  no error
parity odd                  single error at the syndrome position
                            (or the parity bit itself) — corrected
syndrome != 0, parity even  double error — detected, uncorrectable
==========================  =======================================
"""

from __future__ import annotations

from typing import List

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.utils.bitops import parity64

_TOTAL_POSITIONS = 72  # positions 0..71; position 0 is the overall parity
_CHECK_POSITIONS = (1, 2, 4, 8, 16, 32, 64)


def _data_positions() -> List[int]:
    """Positions 1..71 that are not powers of two (64 of them)."""
    positions = [
        position
        for position in range(1, _TOTAL_POSITIONS)
        if position not in _CHECK_POSITIONS
    ]
    if len(positions) != 64:
        raise AssertionError("extended Hamming layout must yield 64 data positions")
    return positions


_DATA_POSITIONS = _data_positions()
#: For each of the 7 syndrome bits, the mask of codeword positions it covers.
_COVERAGE_MASKS = [
    sum(
        1 << position
        for position in range(1, _TOTAL_POSITIONS)
        if position & check_position
    )
    for check_position in _CHECK_POSITIONS
]


class SecDed(Codec):
    """(72,64) single-error-correct, double-error-detect Hamming code."""

    name = "SEC-DED"
    data_bits = 64
    code_bits = 72
    added_logic = "low"
    capability = "2/64 bits (1/64 bits)"

    def encode(self, data: int) -> int:
        """Scatter data into positions, then set check + parity bits."""
        self._check_data(data)
        codeword = 0
        for bit_index, position in enumerate(_DATA_POSITIONS):
            if (data >> bit_index) & 1:
                codeword |= 1 << position
        for check_index, check_position in enumerate(_CHECK_POSITIONS):
            if parity64(codeword & _COVERAGE_MASKS[check_index]):
                codeword |= 1 << check_position
        # Overall parity over positions 1..71 stored at position 0.
        codeword |= parity64(codeword >> 1) & 1
        return codeword

    def decode(self, codeword: int) -> DecodeResult:
        """SEC-DED decode per the table in the module docstring."""
        self._check_codeword(codeword)
        syndrome = 0
        for check_index, check_position in enumerate(_CHECK_POSITIONS):
            covered = codeword & (_COVERAGE_MASKS[check_index] | (1 << check_position))
            if parity64(covered):
                syndrome |= check_position
        parity_odd = parity64(codeword) == 1
        corrected_bits: List[int] = []
        if syndrome == 0 and not parity_odd:
            return DecodeResult(data=self._extract(codeword), status=DecodeStatus.OK)
        if parity_odd:
            # Single-bit error: at `syndrome` if non-zero, else the parity bit.
            flip_position = syndrome if syndrome else 0
            if flip_position >= _TOTAL_POSITIONS:
                # Syndrome points outside the word: multi-bit corruption that
                # aliased to an invalid position — uncorrectable.
                return DecodeResult(
                    data=self._extract(codeword), status=DecodeStatus.DETECTED
                )
            codeword ^= 1 << flip_position
            corrected_bits.append(flip_position)
            return DecodeResult(
                data=self._extract(codeword),
                status=DecodeStatus.CORRECTED,
                corrected_bits=corrected_bits,
            )
        # Non-zero syndrome with even parity: double-bit error.
        return DecodeResult(data=self._extract(codeword), status=DecodeStatus.DETECTED)

    @staticmethod
    def _extract(codeword: int) -> int:
        data = 0
        for bit_index, position in enumerate(_DATA_POSITIONS):
            if (codeword >> position) & 1:
                data |= 1 << bit_index
        return data
