"""Registry of implemented ECC techniques, keyed by Table 1 names."""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Iterable, List

from repro.ecc.base import Codec
from repro.ecc.chipkill import Chipkill
from repro.ecc.dec_ted import DecTed
from repro.ecc.hamming import SecDed
from repro.ecc.mirroring import Mirroring
from repro.ecc.none import NoProtection
from repro.ecc.parity import Parity
from repro.ecc.raim import Raim


class UnknownTechniqueError(KeyError):
    """An ECC technique name that no codec is registered under.

    Subclasses :class:`KeyError` for backward compatibility but renders
    a readable message (plain ``KeyError`` stringifies to the repr of
    its argument) listing every valid name and, when the bad name looks
    like a typo, the closest match — so ``--ecc SECDED`` on the CLI
    says "did you mean 'SEC-DED'?" instead of dumping a traceback.
    """

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.name = name
        self.valid = tuple(known)
        message = (
            f"unknown ECC technique {name!r}; valid techniques: "
            + ", ".join(self.valid)
        )
        close = difflib.get_close_matches(str(name), self.valid, n=1, cutoff=0.5)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        self.message = message
        super().__init__(message)

    def __str__(self) -> str:
        return self.message


_FACTORIES: Dict[str, Callable[[], Codec]] = {
    "None": NoProtection,
    "Parity": Parity,
    "SEC-DED": SecDed,
    "DEC-TED": DecTed,
    "Chipkill": Chipkill,
    "RAIM": Raim,
    "Mirroring": Mirroring,
}


def available_techniques() -> List[str]:
    """Names of all implemented codec techniques, Table 1 order."""
    return list(_FACTORIES)


def make_codec(name: str) -> Codec:
    """Instantiate the codec for technique ``name``.

    Raises:
        UnknownTechniqueError: for an unknown technique name (a
            :class:`KeyError` subclass listing the valid names).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownTechniqueError(name, _FACTORIES) from None
    return factory()


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a user-provided codec under ``name``.

    Raises:
        ValueError: if the name is already taken.
    """
    if name in _FACTORIES:
        raise ValueError(f"ECC technique '{name}' is already registered")
    _FACTORIES[name] = factory
