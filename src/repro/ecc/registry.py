"""Registry of implemented ECC techniques, keyed by Table 1 names."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ecc.base import Codec
from repro.ecc.chipkill import Chipkill
from repro.ecc.dec_ted import DecTed
from repro.ecc.hamming import SecDed
from repro.ecc.mirroring import Mirroring
from repro.ecc.none import NoProtection
from repro.ecc.parity import Parity
from repro.ecc.raim import Raim

_FACTORIES: Dict[str, Callable[[], Codec]] = {
    "None": NoProtection,
    "Parity": Parity,
    "SEC-DED": SecDed,
    "DEC-TED": DecTed,
    "Chipkill": Chipkill,
    "RAIM": Raim,
    "Mirroring": Mirroring,
}


def available_techniques() -> List[str]:
    """Names of all implemented codec techniques, Table 1 order."""
    return list(_FACTORIES)


def make_codec(name: str) -> Codec:
    """Instantiate the codec for technique ``name``.

    Raises:
        KeyError: for an unknown technique name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        valid = ", ".join(_FACTORIES)
        raise KeyError(f"unknown ECC technique '{name}' (expected one of {valid})")
    return factory()


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a user-provided codec under ``name``.

    Raises:
        ValueError: if the name is already taken.
    """
    if name in _FACTORIES:
        raise ValueError(f"ECC technique '{name}' is already registered")
    _FACTORIES[name] = factory
