"""No detection / no correction — the consumer-PC configuration.

Every error is silently consumed by the application; this is the
zero-overhead end of the paper's design space (Table 4, "No
detection/correction": "No associated overheads (low cost)" versus
"Unpredictable crashes and silent data corruption").
"""

from __future__ import annotations

from repro.ecc.base import Codec, DecodeResult, DecodeStatus


class NoProtection(Codec):
    """Identity codec: zero check bits, never detects anything."""

    name = "None"
    data_bits = 64
    code_bits = 64
    added_logic = "none"
    capability = "none (none)"

    def encode(self, data: int) -> int:
        """Return ``data`` unchanged."""
        self._check_data(data)
        return data

    def decode(self, codeword: int) -> DecodeResult:
        """Return the word as-is; corruption is invisible."""
        self._check_codeword(codeword)
        return DecodeResult(data=codeword, status=DecodeStatus.OK)
