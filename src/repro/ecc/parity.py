"""Single-bit parity over a 64-bit word.

Detects any odd number of bit flips (the paper's Table 1 states
"2^(n-1)/64 bits" detectable — i.e. all odd-weight error patterns),
corrects nothing. One check bit per 64 data bits gives the 1.56 % added
capacity in Table 1. Parity is the hardware half of the paper's
Detect&Recover (Par+R) design: detection in hardware, correction by
reloading a clean copy from persistent storage in software.
"""

from __future__ import annotations

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.utils.bitops import parity64


class Parity(Codec):
    """Even parity: codeword = data | parity_bit << 64."""

    name = "Parity"
    data_bits = 64
    code_bits = 65
    added_logic = "low"
    capability = "2^(n-1)/64 bits (none)"

    def encode(self, data: int) -> int:
        """Append the even-parity bit above the data word."""
        self._check_data(data)
        return data | (parity64(data) << self.data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        """Check parity; odd-weight corruption is DETECTED, never fixed."""
        self._check_codeword(codeword)
        data = codeword & ((1 << self.data_bits) - 1)
        stored_parity = codeword >> self.data_bits
        if parity64(data) == stored_parity:
            return DecodeResult(data=data, status=DecodeStatus.OK)
        return DecodeResult(data=data, status=DecodeStatus.DETECTED)
