"""DEC-TED: double-error-correct, triple-error-detect BCH code.

Construction: the binary BCH(127, 113) code with designed distance 5
(t = 2) over GF(2^7), shortened to 64 data bits, plus an overall parity
bit that raises the minimum distance to 6 — yielding double-error
correction with triple-error detection. The 14 BCH check bits match the
"fourteen bits" the paper describes for DEC-TED; with the extension bit
the total redundancy is 15/64 = 23.4 %, exactly Table 1's added
capacity.

Decoding uses the closed-form t=2 BCH decoder on syndromes S1 = r(α),
S3 = r(α^3):

* ``S1 == 0 and S3 == 0`` — no error in the BCH part;
* ``S3 == S1^3`` — single error at position ``log(S1)``;
* otherwise two errors whose locator polynomial
  ``σ(x) = x² + S1·x + (S3/S1 + S1²)`` is solved by Chien search.

The overall parity bit arbitrates: a correction count whose parity does
not match the received word's parity implies ≥3 errors → DETECTED.
Because the extended code has distance 6, every ≤2-bit error is corrected
and every 3-bit error is detected (verified by the property tests).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.ecc.galois import GF128, minimal_polynomial, poly_mul_gf2
from repro.utils.bitops import parity64

_N = 127  # BCH natural length
_BCH_CHECK_BITS = 14
_DATA_BITS = 64
#: Data occupies codeword bit positions [_BCH_CHECK_BITS, _BCH_CHECK_BITS+64);
#: positions above that are the shortened (always-zero) region.
_SHORTENED_LIMIT = _BCH_CHECK_BITS + _DATA_BITS


def _generator_polynomial() -> int:
    """g(x) = m1(x) · m3(x), the degree-14 BCH(127,113) generator."""
    m1 = minimal_polynomial(GF128, GF128.alpha_pow(1))
    m3 = minimal_polynomial(GF128, GF128.alpha_pow(3))
    generator = poly_mul_gf2(m1, m3)
    if generator.bit_length() - 1 != _BCH_CHECK_BITS:
        raise AssertionError(
            f"BCH generator degree {generator.bit_length() - 1} != {_BCH_CHECK_BITS}"
        )
    return generator


_GENERATOR = _generator_polynomial()


def _bch_remainder(poly: int) -> int:
    """Remainder of a GF(2) polynomial modulo the BCH generator."""
    degree = _GENERATOR.bit_length() - 1
    while poly.bit_length() - 1 >= degree and poly:
        shift = (poly.bit_length() - 1) - degree
        poly ^= _GENERATOR << shift
    return poly


def _syndromes(bch_word: int) -> Tuple[int, int]:
    """Evaluate the received polynomial at α and α^3."""
    s1 = 0
    s3 = 0
    position = 0
    word = bch_word
    while word:
        if word & 1:
            s1 ^= GF128.alpha_pow(position)
            s3 ^= GF128.alpha_pow(3 * position)
        word >>= 1
        position += 1
    return s1, s3


def _locate_two_errors(s1: int, s3: int) -> Optional[Tuple[int, int]]:
    """Chien-search the two-error locator; returns positions or None."""
    # σ(x) = x^2 + s1·x + c with c = s3/s1 + s1^2.
    c = GF128.add(GF128.div(s3, s1), GF128.mul(s1, s1))
    roots: List[int] = []
    for position in range(_SHORTENED_LIMIT):
        x = GF128.alpha_pow(position)
        value = GF128.add(
            GF128.add(GF128.mul(x, x), GF128.mul(s1, x)), c
        )
        if value == 0:
            roots.append(position)
            if len(roots) == 2:
                return roots[0], roots[1]
    return None


class DecTed(Codec):
    """Extended shortened BCH(127,113): 64 data + 14 BCH + 1 parity bits."""

    name = "DEC-TED"
    data_bits = _DATA_BITS
    code_bits = _SHORTENED_LIMIT + 1  # + overall parity at the top position
    added_logic = "low"
    capability = "3/64 bits (2/64 bits)"

    #: Bit position of the overall parity bit within the codeword.
    parity_position = _SHORTENED_LIMIT

    def encode(self, data: int) -> int:
        """Systematic encode: data << 14 | remainder, plus parity bit."""
        self._check_data(data)
        shifted = data << _BCH_CHECK_BITS
        bch_word = shifted | _bch_remainder(shifted)
        parity = parity64(bch_word)
        return bch_word | (parity << self.parity_position)

    def decode(self, codeword: int) -> DecodeResult:
        """Decode with the parity-arbitrated t=2 BCH decoder."""
        self._check_codeword(codeword)
        bch_word = codeword & ((1 << _SHORTENED_LIMIT) - 1)
        received_parity = codeword >> self.parity_position
        parity_odd = (parity64(bch_word) ^ received_parity) == 1

        s1, s3 = _syndromes(bch_word)
        corrected_bits: List[int] = []

        if s1 == 0 and s3 == 0:
            if not parity_odd:
                return DecodeResult(self._extract(bch_word), DecodeStatus.OK)
            # Clean BCH word but wrong parity: the parity bit itself flipped.
            return DecodeResult(
                self._extract(bch_word),
                DecodeStatus.CORRECTED,
                corrected_bits=[self.parity_position],
            )

        if s1 != 0 and s3 == GF128.pow(s1, 3):
            # Single-error signature in the BCH part. Distance-5 of the
            # underlying BCH code guarantees no 2- or 3-error pattern can
            # alias to this signature, so it is trustworthy.
            position = GF128.log(s1)
            if position >= _SHORTENED_LIMIT:
                # Error claimed in the shortened (always-zero) region:
                # impossible for a real single error, so ≥2 errors.
                return DecodeResult(self._extract(bch_word), DecodeStatus.DETECTED)
            bch_word ^= 1 << position
            corrected_bits.append(position)
            if not parity_odd:
                # Even total flip count with one BCH error means the
                # parity bit flipped too — a correctable double error.
                corrected_bits.append(self.parity_position)
            return DecodeResult(
                self._extract(bch_word), DecodeStatus.CORRECTED, corrected_bits
            )

        if s1 == 0 and s3 != 0:
            # Two-plus errors in a configuration outside t=2 capability.
            return DecodeResult(self._extract(bch_word), DecodeStatus.DETECTED)

        located = _locate_two_errors(s1, s3)
        if located is None or parity_odd:
            # No valid two-error solution, or an odd flip count that a
            # two-error correction cannot explain: ≥3 errors.
            return DecodeResult(self._extract(bch_word), DecodeStatus.DETECTED)
        for position in located:
            bch_word ^= 1 << position
            corrected_bits.append(position)
        return DecodeResult(
            self._extract(bch_word), DecodeStatus.CORRECTED, corrected_bits
        )

    @staticmethod
    def _extract(bch_word: int) -> int:
        return (bch_word >> _BCH_CHECK_BITS) & ((1 << _DATA_BITS) - 1)
