"""Memory error detection/correction codecs (paper Table 1).

Every scheme is a real, tested implementation — the capacity overheads
reported by the Table 1 bench are derived from the codecs' actual bit
layouts, and their detection/correction capabilities are verified by
injecting errors into codewords.
"""

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.ecc.chipkill import Chipkill
from repro.ecc.dec_ted import DecTed
from repro.ecc.galois import GF16, GF128, GF256, GF2m
from repro.ecc.hamming import SecDed
from repro.ecc.mirroring import Mirroring
from repro.ecc.none import NoProtection
from repro.ecc.parity import Parity
from repro.ecc.raim import Raim
from repro.ecc.registry import (
    UnknownTechniqueError,
    available_techniques,
    make_codec,
    register_codec,
)

__all__ = [
    "Codec",
    "DecodeResult",
    "DecodeStatus",
    "Chipkill",
    "DecTed",
    "GF16",
    "GF128",
    "GF256",
    "GF2m",
    "SecDed",
    "Mirroring",
    "NoProtection",
    "Parity",
    "Raim",
    "UnknownTechniqueError",
    "available_techniques",
    "make_codec",
    "register_codec",
]
