"""Codec interface shared by all memory error detection/correction schemes.

Every scheme in the paper's Table 1 is implemented as a :class:`Codec`
that encodes a fixed-width data word into a wider codeword and decodes a
(possibly corrupted) codeword back, reporting what happened. The added
capacity fraction — the driver of memory cost in the paper's cost model —
is *derived* from the codec's actual bit layout rather than hard-coded,
so Table 1 is regenerated from the implementations.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import List


class DecodeStatus(enum.Enum):
    """What the decoder observed and did."""

    OK = "ok"  # no error present (as far as the code can tell)
    CORRECTED = "corrected"  # error(s) detected and repaired
    DETECTED = "detected"  # error detected but not correctable

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword.

    Attributes:
        data: The decoded data word (best effort when uncorrectable).
        status: What the decoder concluded.
        corrected_bits: Codeword bit positions that were repaired.
    """

    data: int
    status: DecodeStatus
    corrected_bits: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the data word can be trusted (OK or CORRECTED)."""
        return self.status is not DecodeStatus.DETECTED


class Codec(abc.ABC):
    """A memory error detection/correction scheme over fixed-size words."""

    #: Human-readable technique name (matches Table 1 rows).
    name: str = "abstract"
    #: Width of the protected data word in bits.
    data_bits: int = 64
    #: Width of the full codeword in bits.
    code_bits: int = 64
    #: Qualitative logic complexity per Table 1 ("low" / "high").
    added_logic: str = "low"
    #: Capability summary in the paper's "X/Y Z" notation.
    capability: str = ""

    @property
    def check_bits(self) -> int:
        """Number of redundant bits per word."""
        return self.code_bits - self.data_bits

    @property
    def added_capacity(self) -> float:
        """Fractional capacity overhead (drives memory cost)."""
        return self.check_bits / self.data_bits

    @property
    def data_bytes(self) -> int:
        """Data word width in bytes (data_bits must be byte-aligned)."""
        return self.data_bits // 8

    @abc.abstractmethod
    def encode(self, data: int) -> int:
        """Encode a data word into a codeword.

        Raises:
            ValueError: if ``data`` does not fit in ``data_bits``.
        """

    @abc.abstractmethod
    def decode(self, codeword: int) -> DecodeResult:
        """Decode a (possibly corrupted) codeword."""

    def _check_data(self, data: int) -> None:
        if data < 0 or data >> self.data_bits:
            raise ValueError(
                f"data word does not fit in {self.data_bits} bits: {data:#x}"
            )

    def _check_codeword(self, codeword: int) -> None:
        if codeword < 0 or codeword >> self.code_bits:
            raise ValueError(
                f"codeword does not fit in {self.code_bits} bits: {codeword:#x}"
            )

    def roundtrip_ok(self, data: int) -> bool:
        """Sanity helper: encode→decode with no errors returns the data."""
        result = self.decode(self.encode(data))
        return result.status is DecodeStatus.OK and result.data == data

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.name}({self.data_bits}+{self.check_bits} bits, "
            f"+{self.added_capacity:.1%})"
        )
