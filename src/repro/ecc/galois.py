"""Galois-field arithmetic GF(2^m) used by the BCH and Reed-Solomon codecs.

Implements log/antilog-table arithmetic for small binary extension
fields. Two instances are used in the package:

* ``GF128`` (m=7, primitive polynomial x^7 + x^3 + 1) for the DEC-TED
  BCH(127,113) code, and
* ``GF256`` (m=8, primitive polynomial x^8 + x^4 + x^3 + x^2 + 1) for
  the Chipkill Reed-Solomon code over 8-bit chip symbols.
"""

from __future__ import annotations

from typing import List

#: Primitive polynomials by field degree (bit i = coefficient of x^i).
PRIMITIVE_POLYS = {
    4: 0b10011,  # x^4 + x + 1
    7: 0b10001001,  # x^7 + x^3 + 1
    8: 0b100011101,  # x^8 + x^4 + x^3 + x^2 + 1
}


class GF2m:
    """The finite field GF(2^m) with table-based arithmetic."""

    def __init__(self, m: int, primitive_poly: int = 0) -> None:
        if primitive_poly == 0:
            if m not in PRIMITIVE_POLYS:
                raise ValueError(
                    f"no default primitive polynomial for GF(2^{m}); pass one"
                )
            primitive_poly = PRIMITIVE_POLYS[m]
        self.m = m
        self.size = 1 << m
        self.primitive_poly = primitive_poly
        # exp table doubled to avoid modular reduction in mul.
        self._exp: List[int] = [0] * (2 * self.size)
        self._log: List[int] = [0] * self.size
        value = 1
        for power in range(self.size - 1):
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & self.size:
                value ^= primitive_poly
        if value != 1:
            raise ValueError(
                f"polynomial 0x{primitive_poly:x} is not primitive for GF(2^{m})"
            )
        for power in range(self.size - 1, 2 * self.size):
            self._exp[power] = self._exp[power - (self.size - 1)]

    @property
    def order(self) -> int:
        """Multiplicative order of the field (size - 1)."""
        return self.size - 1

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR in characteristic 2)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field division a / b.

        Raises:
            ZeroDivisionError: if ``b`` is zero.
        """
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[self._log[a] - self._log[b] + self.order]

    def inv(self, a: int) -> int:
        """Multiplicative inverse.

        Raises:
            ZeroDivisionError: if ``a`` is zero.
        """
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return self._exp[self.order - self._log[a]]

    def pow(self, a: int, e: int) -> int:
        """Raise ``a`` to integer power ``e`` (e may be negative)."""
        if a == 0:
            if e <= 0:
                raise ZeroDivisionError("0 cannot be raised to a non-positive power")
            return 0
        exponent = (self._log[a] * e) % self.order
        return self._exp[exponent]

    def alpha_pow(self, e: int) -> int:
        """Return α^e where α is the primitive element."""
        return self._exp[e % self.order]

    def log(self, a: int) -> int:
        """Discrete log base α.

        Raises:
            ValueError: if ``a`` is zero (log undefined).
        """
        if a == 0:
            raise ValueError("log of zero is undefined")
        return self._log[a]

    def sqrt(self, a: int) -> int:
        """Square root (unique in characteristic 2): a^(2^(m-1))."""
        if a == 0:
            return 0
        return self.pow(a, 1 << (self.m - 1))


# Shared singletons — table construction is cheap but there is no reason
# to repeat it per codec instance.
GF16 = GF2m(4)
GF128 = GF2m(7)
GF256 = GF2m(8)


def poly_mul_gf2(a: int, b: int) -> int:
    """Multiply two GF(2) polynomials packed into integers."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_mod_gf2(a: int, mod: int) -> int:
    """Reduce GF(2) polynomial ``a`` modulo ``mod``."""
    if mod == 0:
        raise ZeroDivisionError("polynomial modulus must be non-zero")
    mod_degree = mod.bit_length() - 1
    while a.bit_length() - 1 >= mod_degree and a:
        shift = (a.bit_length() - 1) - mod_degree
        a ^= mod << shift
    return a


def minimal_polynomial(field: GF2m, element: int) -> int:
    """Minimal polynomial over GF(2) of ``element`` of ``field``.

    Computed as the product of (x - c) over the conjugacy class
    {element^(2^i)}; the result has coefficients in {0, 1} and is packed
    into an integer (bit i = coefficient of x^i).
    """
    if element == 0:
        return 0b10  # x
    conjugates = []
    current = element
    while current not in conjugates:
        conjugates.append(current)
        current = field.mul(current, current)
    # poly is a list of GF(2^m) coefficients, lowest degree first; start with 1.
    poly = [1]
    for conjugate in conjugates:
        # poly *= (x + conjugate)
        next_poly = [0] * (len(poly) + 1)
        for degree, coeff in enumerate(poly):
            next_poly[degree + 1] ^= coeff  # x * coeff
            next_poly[degree] ^= field.mul(coeff, conjugate)
        poly = next_poly
    packed = 0
    for degree, coeff in enumerate(poly):
        if coeff not in (0, 1):
            raise ArithmeticError(
                "minimal polynomial has a coefficient outside GF(2); "
                "conjugacy-class computation is inconsistent"
            )
        packed |= coeff << degree
    return packed
