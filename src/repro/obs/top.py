"""``repro top``: a refreshing terminal dashboard for the serving layer.

Renders the same per-tenant snapshot the ``/status`` endpoint serves —
tenant table with availability, latency quantiles, backlog and
admission state, an availability sparkline, SLO burn-rate gauges, and
the most recent policy actions — against either source:

* a **live endpoint** (``repro top http://127.0.0.1:9100``): scrapes
  ``/status`` and ``/slo`` each frame;
* a **ledger file** (``repro top serve_ledger.jsonl``): replays the
  ledger offline and synthesizes the identical snapshot shape, so a
  finished session can be inspected with the same dashboard.

Rendering is a pure function of the snapshot dicts (``render_top``), so
tests exercise it without a terminal. This module imports
:mod:`repro.serve` for the offline replay path and is therefore *not*
re-exported from :mod:`repro.obs` (which the serve layer imports).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.slo import SloEngine, slo_from_ledger
from repro.serve.ledger import load_ledger, replay_ledger

__all__ = [
    "fetch_live",
    "render_top",
    "run_top",
    "snapshot_from_ledger",
    "sparkline",
]

#: Eight-level block characters for the availability sparkline.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"
_GAUGE_WIDTH = 12


def sparkline(values: List[float], width: int = 16) -> str:
    """Render ``values`` in [0, 1] as a block-character sparkline.

    The most recent ``width`` values are kept; an empty history renders
    as an empty string.
    """
    tail = values[-width:]
    out = []
    for value in tail:
        clamped = min(1.0, max(0.0, value))
        out.append(_SPARK_BLOCKS[int(clamped * (len(_SPARK_BLOCKS) - 1))])
    return "".join(out)


def _burn_gauge(burn: float, threshold: float) -> str:
    """A fixed-width bar of burn rate against its alert threshold."""
    if threshold <= 0:
        return " " * _GAUGE_WIDTH
    filled = int(min(1.0, burn / threshold) * _GAUGE_WIDTH)
    return "#" * filled + "-" * (_GAUGE_WIDTH - filled)


# ----------------------------------------------------------------------
# Data sources
# ----------------------------------------------------------------------
def fetch_live(base_url: str, timeout: float = 5.0) -> Tuple[dict, dict]:
    """Scrape ``/status`` and ``/slo`` from a live endpoint."""
    base = base_url.rstrip("/")

    def get(path: str) -> dict:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    return get("/status"), get("/slo")


def snapshot_from_ledger(path: Path) -> Tuple[dict, dict]:
    """Synthesize (/status, /slo)-shaped payloads from a ledger file.

    Replays the ledger and re-derives the SLO state offline, producing
    the same snapshot shape the live endpoint publishes at its final
    tick barrier (latency quantiles are absent offline — wall-clock
    latency never reaches the ledger).
    """
    events = load_ledger(path)
    replay = replay_ledger(events)
    slo_replay = slo_from_ledger(events)
    engine: SloEngine = slo_replay.engine
    tenants: Dict[str, dict] = {}
    for name, summary in replay.tenants.items():
        tenants[name] = {
            "availability": summary.availability,
            "requests": dict(summary.requests),
            "offered": summary.offered,
            "backlog": 0,
            "shedding": False,
            "down": False,
            "epochs": 0,
            "resident_faults": 0,
            "responses": dict(summary.responses),
            "faults": dict(summary.faults),
            "latency": {},
            "availability_spark": engine.availability_history(name),
            "slo_firing": engine.firing(name),
        }
    stop = replay.stop_attrs
    tenants_meta = stop.get("epochs", {})
    resident = stop.get("resident_faults", {})
    for name, snapshot in tenants.items():
        snapshot["epochs"] = int(tenants_meta.get(name, 0))
        snapshot["resident_faults"] = int(resident.get(name, 0))
    recent = [
        {"tick": alert["tick"], "tenant": alert["tenant"],
         "action": f"slo:{alert.get('rule', '?')}:{alert.get('state', '?')}"}
        for alert in replay.slo_alerts[-12:]
    ]
    status = {
        "tick": replay.ticks,
        "duration_ticks": replay.config.get("duration_ticks", replay.ticks),
        "complete": True,
        "seed": replay.config.get("seed"),
        "error_rate": replay.config.get("error_rate"),
        "policy": replay.config.get("policy", "auto"),
        "retirement": {
            "retired_capacity_fraction": stop.get(
                "retired_capacity_fraction", 0.0
            ),
        },
        "tenants": tenants,
        "recent_actions": recent,
    }
    return status, engine.to_dict()


# ----------------------------------------------------------------------
# Rendering (pure)
# ----------------------------------------------------------------------
def render_top(status: dict, slo: Optional[dict], source: str) -> str:
    """Render one dashboard frame from snapshot payloads."""
    lines: List[str] = []
    tick = status.get("tick", 0)
    duration = status.get("duration_ticks", 0)
    state = "complete" if status.get("complete") else "running"
    lines.append(
        f"repro top — {source}  "
        f"[tick {tick}/{duration}, {state}]  "
        f"seed={status.get('seed')}  "
        f"error_rate={status.get('error_rate')}  "
        f"policy={status.get('policy')}"
    )
    retirement = status.get("retirement", {})
    if retirement:
        parts = []
        if "retired_pages" in retirement:
            parts.append(
                f"retired pages {retirement['retired_pages']}"
                f"/{retirement.get('max_retired_pages', '?')}"
            )
        fraction = retirement.get("retired_capacity_fraction")
        if fraction is not None:
            parts.append(f"capacity retired {fraction:.4%}")
        lines.append("retirement: " + ", ".join(parts))
    lines.append("")

    tenants = status.get("tenants", {})
    lines.append(
        f"{'tenant':<12} {'avail':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'backlog':>7} {'flags':<10} {'offered':>8}  trend"
    )
    for name in sorted(tenants):
        tenant = tenants[name]
        latency = tenant.get("latency") or {}
        p50 = latency.get("p50")
        p99 = latency.get("p99")
        flags = []
        if tenant.get("down"):
            flags.append("DOWN")
        if tenant.get("shedding"):
            flags.append("SHED")
        if tenant.get("slo_firing"):
            flags.append("SLO!")
        spark = sparkline(tenant.get("availability_spark", []))
        lines.append(
            f"{name:<12} {tenant.get('availability', 1.0):>7.2%} "
            f"{_ms(p50):>8} {_ms(p99):>8} "
            f"{tenant.get('backlog', 0):>7} "
            f"{'+'.join(flags) or '-':<10} "
            f"{tenant.get('offered', 0):>8}  {spark}"
        )
    lines.append("")

    if slo:
        target = slo.get("target")
        lines.append(
            f"SLO target {target:.2%}  (burn = bad fraction / error budget)"
            if isinstance(target, float)
            else "SLO"
        )
        slo_tenants = slo.get("tenants", {})
        for name in sorted(slo_tenants):
            for rule_name in sorted(slo_tenants[name]):
                rule = slo_tenants[name][rule_name]
                burn_short = float(rule.get("burn_short", 0.0))
                threshold = float(rule.get("threshold", 1.0))
                gauge = _burn_gauge(burn_short, threshold)
                marker = "FIRING" if rule.get("state") == "firing" else "ok"
                lines.append(
                    f"  {name:<12} {rule_name:<6} [{gauge}] "
                    f"short {burn_short:>6.2f} "
                    f"long {float(rule.get('burn_long', 0.0)):>6.2f} "
                    f"/ {threshold:g}  {marker}"
                )
        lines.append("")

    recent = status.get("recent_actions", [])
    if recent:
        lines.append("recent actions:")
        for action in recent[-8:]:
            lines.append(
                f"  tick {action.get('tick'):>4}  "
                f"{action.get('tenant', ''):<12} {action.get('action', '')}"
            )
    return "\n".join(lines) + "\n"


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:.2f}"


# ----------------------------------------------------------------------
# Driver loop
# ----------------------------------------------------------------------
def run_top(
    target: str,
    refresh: float = 1.0,
    frames: Optional[int] = None,
    once: bool = False,
    clear: bool = True,
    out=None,
) -> int:
    """Drive the dashboard until interrupted (or for ``frames`` frames).

    ``target`` is an ``http(s)://`` base URL or a ledger-file path.
    Returns a process exit code; a ledger source always renders exactly
    one frame (the replay is final).
    """
    import sys

    stream = out if out is not None else sys.stdout
    is_url = target.startswith(("http://", "https://"))
    if not is_url:
        path = Path(target)
        if not path.is_file():
            print(f"repro top: no such file: {target}", file=sys.stderr)
            return 2
        status, slo = snapshot_from_ledger(path)
        stream.write(render_top(status, slo, source=str(path)))
        return 0

    rendered = 0
    while True:
        try:
            status, slo = fetch_live(target)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"repro top: {target}: {exc}", file=sys.stderr)
            return 1
        frame = render_top(status, slo, source=target)
        if clear:
            stream.write("\x1b[2J\x1b[H")
        stream.write(frame)
        if hasattr(stream, "flush"):
            stream.flush()
        rendered += 1
        if once or (frames is not None and rendered >= frames):
            return 0
        if status.get("complete"):
            return 0
        time.sleep(refresh)
