"""Render saved traces and end-of-run summaries for humans.

Three consumers:

* ``repro report trace.jsonl`` — loads a JSONL trace written via
  ``--trace-out`` and renders the campaign: per-cell outcome table,
  totals, worker utilization, and injection-latency summary.
* ``repro report serve_ledger.jsonl`` — renders a replayed serve ledger
  (per-tenant availability, responses, SLO alert history) via
  :func:`render_serve_report`. Duck-typed over the replay object so
  this module stays independent of :mod:`repro.serve`.
* The ``characterize --metrics`` end-of-run summary table, built from a
  :class:`~repro.obs.progress.CampaignMetrics` aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.events import (
    KIND_SPAN,
    POINT_PROGRESS,
    SPAN_CAMPAIGN,
    SPAN_INJECTION,
    SPAN_TRIAL,
    TraceEvent,
)
from repro.obs.progress import CampaignMetrics
from repro.utils.stats import safe_div

__all__ = [
    "CellSummary",
    "TraceSummary",
    "summarize_trace",
    "render_trace_report",
    "render_run_summary",
    "render_serve_report",
]

#: Outcome values counted as masked (mirrors ErrorOutcome.is_masked;
#: kept as strings because traces are read back without the enum).
_MASKED_OUTCOMES = frozenset(
    {"masked_overwrite", "masked_never_accessed", "masked_logic"}
)


@dataclass
class CellSummary:
    """Per-(cell × error type) outcome tally recovered from a trace."""

    cell: str
    trials: int = 0
    outcome_counts: Dict[str, int] = field(default_factory=dict)

    def count(self, outcome: str) -> None:
        """Tally one trial outcome."""
        self.trials += 1
        self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + 1

    @property
    def crash_fraction(self) -> float:
        """Fraction of trials ending in a crash."""
        return safe_div(self.outcome_counts.get("crash", 0), self.trials)

    @property
    def incorrect_fraction(self) -> float:
        """Fraction of trials with incorrect (non-crash) behaviour."""
        return safe_div(self.outcome_counts.get("incorrect", 0), self.trials)

    @property
    def masked_fraction(self) -> float:
        """Fraction of trials in which the error was tolerated."""
        masked = sum(
            count
            for outcome, count in self.outcome_counts.items()
            if outcome in _MASKED_OUTCOMES
        )
        return safe_div(masked, self.trials)


@dataclass
class TraceSummary:
    """Everything ``repro report`` prints, recovered from raw events."""

    app: str = "?"
    events: int = 0
    trials: int = 0
    cells: Dict[str, CellSummary] = field(default_factory=dict)
    outcome_totals: Dict[str, int] = field(default_factory=dict)
    worker_pids: List[int] = field(default_factory=list)
    campaign_seconds: Optional[float] = None
    injection_count: int = 0
    injection_seconds_total: float = 0.0
    worker_busy_seconds: Dict[int, float] = field(default_factory=dict)

    @property
    def mean_injection_seconds(self) -> float:
        """Average injection latency across the trace."""
        return safe_div(self.injection_seconds_total, self.injection_count)


def summarize_trace(events: List[TraceEvent]) -> TraceSummary:
    """Aggregate a flat event list into a :class:`TraceSummary`."""
    summary = TraceSummary()
    pids = set()
    for event in events:
        summary.events += 1
        if event.kind == KIND_SPAN and event.name == SPAN_TRIAL:
            summary.trials += 1
            pids.add(event.pid)
            cell_key = str(event.attrs.get("cell", "?"))
            cell = summary.cells.get(cell_key)
            if cell is None:
                cell = summary.cells[cell_key] = CellSummary(cell=cell_key)
            outcome = str(event.attrs.get("outcome", "unknown"))
            cell.count(outcome)
            summary.outcome_totals[outcome] = (
                summary.outcome_totals.get(outcome, 0) + 1
            )
        elif event.kind == KIND_SPAN and event.name == SPAN_INJECTION:
            summary.injection_count += 1
            summary.injection_seconds_total += event.duration_seconds or 0.0
        elif event.kind == KIND_SPAN and event.name == SPAN_CAMPAIGN:
            summary.app = str(event.attrs.get("app", summary.app))
            summary.campaign_seconds = event.duration_seconds
        elif event.name == POINT_PROGRESS:
            pid = int(event.attrs.get("worker_pid", event.pid))
            summary.worker_busy_seconds[pid] = summary.worker_busy_seconds.get(
                pid, 0.0
            ) + float(event.attrs.get("shard_seconds", 0.0))
    summary.worker_pids = sorted(pids)
    return summary


def render_trace_report(summary: TraceSummary) -> str:
    """Human-readable report of one saved trace."""
    lines = [
        f"campaign: {summary.app}",
        f"events: {summary.events}  trial spans: {summary.trials}  "
        f"workers: {len(summary.worker_pids) or 1}",
    ]
    if summary.campaign_seconds is not None:
        lines.append(f"campaign wall time: {summary.campaign_seconds:.2f}s")
    if summary.injection_count:
        lines.append(
            f"injections: {summary.injection_count} "
            f"(mean latency {summary.mean_injection_seconds * 1e6:.1f}us)"
        )
    lines.append("")
    lines.append(
        f"{'cell':<32} {'trials':>6} {'crash':>7} {'incorrect':>10} {'masked':>8}"
    )
    for key in sorted(summary.cells):
        cell = summary.cells[key]
        lines.append(
            f"{key:<32} {cell.trials:>6} {cell.crash_fraction:>6.1%} "
            f"{cell.incorrect_fraction:>9.1%} {cell.masked_fraction:>7.1%}"
        )
    if summary.outcome_totals:
        lines.append("")
        lines.append("outcome taxonomy totals:")
        for outcome in sorted(summary.outcome_totals):
            lines.append(f"  {outcome:<24} {summary.outcome_totals[outcome]}")
    if summary.worker_busy_seconds:
        lines.append("")
        lines.append("worker busy time:")
        for pid in sorted(summary.worker_busy_seconds):
            lines.append(
                f"  worker {pid}: {summary.worker_busy_seconds[pid]:.2f}s"
            )
    return "\n".join(lines)


def render_serve_report(replay) -> str:
    """Human-readable report of one replayed serve ledger.

    ``replay`` is duck-typed (``repro.serve.ledger.LedgerReplay``):
    ``ticks``, ``config``, ``tenants`` (name → summary with
    ``availability`` / ``requests`` / ``responses`` / ``slo_fraction``),
    and ``slo_alerts``.
    """
    config = getattr(replay, "config", {})
    lines = [
        f"serve session: {replay.ticks} ticks, "
        f"seed {config.get('seed', '?')}, "
        f"error rate {config.get('error_rate', '?')}/tick, "
        f"policy {config.get('policy', 'auto')}",
        "",
        f"{'tenant':<12} {'avail':>8} {'slo':>7} {'ok':>7} {'bad':>5} "
        f"{'fail':>5} {'shed':>5} {'down':>5} {'responses':>10}",
    ]
    for name in sorted(replay.tenants):
        summary = replay.tenants[name]
        requests = summary.requests
        lines.append(
            f"{name:<12} {summary.availability:>7.2%} "
            f"{summary.slo_fraction:>6.1%} {requests['ok']:>7} "
            f"{requests['incorrect']:>5} {requests['failed']:>5} "
            f"{requests['shed']:>5} {requests['down']:>5} "
            f"{sum(summary.responses.values()):>10}"
        )
    alerts = getattr(replay, "slo_alerts", [])
    lines.append("")
    lines.append(f"slo alert transitions: {len(alerts)}")
    for alert in alerts:
        lines.append(
            f"  tick {alert.get('tick'):>4}  "
            f"{alert.get('tenant', ''):<12} "
            f"{alert.get('rule', '?'):<6} -> {alert.get('state', '?'):<8} "
            f"(burn short {float(alert.get('burn_short', 0.0)):.2f} / "
            f"long {float(alert.get('burn_long', 0.0)):.2f}, "
            f"threshold {float(alert.get('threshold', 0.0)):g})"
        )
    return "\n".join(lines)


def render_run_summary(metrics: CampaignMetrics) -> str:
    """End-of-run summary table for a live campaign's metrics hook."""
    lines = [
        f"{metrics.trials_done}/{metrics.trials_total} trials in "
        f"{metrics.elapsed_seconds:.1f}s "
        f"({metrics.trials_per_second:.1f} trials/sec, "
        f"{metrics.worker_count} workers)"
    ]
    for pid, timing in sorted(metrics.per_worker.items()):
        idle = max(0.0, metrics.elapsed_seconds - timing.busy_seconds)
        lines.append(
            f"  worker {pid}: {timing.shards} shards, {timing.trials} trials, "
            f"{timing.busy_seconds:.1f}s busy, {idle:.1f}s idle"
        )
    return "\n".join(lines)
