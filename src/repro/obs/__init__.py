"""Campaign observability: tracing spans, metrics, and structured logs.

The paper's methodology is as much about *watching* the injection
schedule as running it: every trial outcome must be attributable to a
region, error type, and time. This package provides that layer for the
reproduction:

* hierarchical **tracing spans** (``campaign → cell → trial →
  injection/consume/verify``) via :class:`Observer`'s context-manager
  API (:mod:`repro.obs.trace`), relayed from parallel workers through
  the existing result pipe;
* a **metrics registry** of counters/gauges/fixed-bucket histograms
  (:mod:`repro.obs.metrics`) pre-wired with campaign instruments
  (:mod:`repro.obs.instruments`);
* **sinks/exporters**: a JSONL structured event log, a
  Prometheus-style text exposition, and human-readable summaries
  (:mod:`repro.obs.sinks`, :mod:`repro.obs.report`);
* the **live telemetry plane**: an embedded HTTP server exposing
  ``/metrics``, ``/status``, ``/slo``, and ``/ledger/tail``
  (:mod:`repro.obs.live`), the deterministic multi-window SLO
  burn-rate engine feeding it (:mod:`repro.obs.slo`), and a minimal
  exposition-format parser for scrape sanity checks
  (:mod:`repro.obs.promtext`);
* the **progress hook** layer (:mod:`repro.obs.progress`), still
  re-exported from :mod:`repro.exec` for backward compatibility.

Instrumentation is zero-cost when disabled (the default
:data:`NULL_OBSERVER` allocates nothing on the hot path) and never
perturbs determinism: a traced campaign's profile is byte-identical to
an untraced one.
"""

from repro.obs.events import (
    KIND_POINT,
    KIND_SPAN,
    POINT_PROGRESS,
    SPAN_CAMPAIGN,
    SPAN_CELL,
    SPAN_CONSUME,
    SPAN_EXPLORE,
    SPAN_EXPLORE_PHASE,
    SPAN_FLEET,
    SPAN_FLEET_PHASE,
    SPAN_INJECTION,
    SPAN_MONITOR,
    SPAN_SERVE,
    SPAN_TRIAL,
    SPAN_VERIFY,
    TraceEvent,
)
from repro.obs.instruments import (
    SERVE_LATENCY_BUCKETS,
    CampaignInstruments,
    ExplorationInstruments,
    FleetInstruments,
    ServeInstruments,
)
from repro.obs.live import BackgroundTelemetryServer, ObservabilityServer
from repro.obs.metrics import (
    INJECTION_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.promtext import (
    PromParseError,
    PromSample,
    assert_scrape_parses,
    parse_prometheus,
    sample_value,
)
from repro.obs.progress import (
    CampaignMetrics,
    ProgressClock,
    ProgressEvent,
    WorkerTiming,
    emit_progress,
)
from repro.obs.report import (
    TraceSummary,
    render_run_summary,
    render_serve_report,
    render_trace_report,
    summarize_trace,
)
from repro.obs.sinks import EventBuffer, JsonlSink, load_events
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    DEFAULT_SLO_TARGET,
    BurnWindow,
    SloConfig,
    SloEngine,
    SloReplay,
    audit_slo,
    parse_burn_windows,
    slo_from_ledger,
)
from repro.obs.trace import NULL_OBSERVER, Observer, Span

__all__ = [
    "KIND_POINT",
    "KIND_SPAN",
    "POINT_PROGRESS",
    "SPAN_CAMPAIGN",
    "SPAN_CELL",
    "SPAN_CONSUME",
    "SPAN_EXPLORE",
    "SPAN_EXPLORE_PHASE",
    "SPAN_FLEET",
    "SPAN_FLEET_PHASE",
    "SPAN_INJECTION",
    "SPAN_MONITOR",
    "SPAN_SERVE",
    "SPAN_TRIAL",
    "SPAN_VERIFY",
    "TraceEvent",
    "CampaignInstruments",
    "ExplorationInstruments",
    "FleetInstruments",
    "SERVE_LATENCY_BUCKETS",
    "ServeInstruments",
    "BackgroundTelemetryServer",
    "ObservabilityServer",
    "INJECTION_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PromParseError",
    "PromSample",
    "assert_scrape_parses",
    "parse_prometheus",
    "sample_value",
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_SLO_TARGET",
    "BurnWindow",
    "SloConfig",
    "SloEngine",
    "SloReplay",
    "audit_slo",
    "parse_burn_windows",
    "slo_from_ledger",
    "CampaignMetrics",
    "ProgressClock",
    "ProgressEvent",
    "WorkerTiming",
    "emit_progress",
    "TraceSummary",
    "render_run_summary",
    "render_serve_report",
    "render_trace_report",
    "summarize_trace",
    "EventBuffer",
    "JsonlSink",
    "load_events",
    "NULL_OBSERVER",
    "Observer",
    "Span",
]
