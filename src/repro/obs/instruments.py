"""Pre-wired campaign-level instruments over the metrics registry.

:class:`CampaignInstruments` is the bridge from the event stream to the
registry: an :class:`~repro.obs.trace.Observer` with a metrics registry
attached routes every emitted event through :meth:`update`, which keeps
the paper-relevant aggregates current:

* ``campaign_trials_total{outcome}`` — the Figure 1 outcome taxonomy;
* ``campaign_responses_total{disposition}`` — responded / incorrect /
  failed client requests observed while errors were resident;
* ``injection_latency_seconds`` — fixed-bucket injection-latency
  histogram;
* ``cell_safe_ratio{cell}`` — running masked-fraction estimate per
  campaign cell (the live counterpart of Figure 5b);
* ``worker_busy_seconds_total{pid}`` / ``worker_idle_seconds{pid}`` /
  ``worker_trials_total{pid}`` — pool utilization;
* ``campaign_trials_done`` / ``campaign_trials_budget`` /
  ``campaign_elapsed_seconds`` — overall progress gauges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.events import (
    KIND_POINT,
    KIND_SPAN,
    POINT_PROGRESS,
    SPAN_INJECTION,
    SPAN_TRIAL,
    TraceEvent,
)
from repro.obs.metrics import (
    INJECTION_LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.utils.stats import safe_div

__all__ = [
    "CampaignInstruments",
    "ExplorationInstruments",
    "FleetInstruments",
    "SERVE_LATENCY_BUCKETS",
    "ServeInstruments",
]

#: Fixed bucket upper bounds (seconds) for per-request serve latency.
#: Simulated request execution runs tens of µs to tens of ms depending
#: on the workload; a decade ladder keeps quantile interpolation sane
#: across that range.
SERVE_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0,
)


class ServeInstruments:
    """Live gauges/counters for the HRM serving layer (``repro serve``).

    Updated directly by the multiplexer at each tick barrier (the
    ``record_*`` style of :class:`ExplorationInstruments`). The ledger —
    not these instruments — is the system of record: the availability
    gauge here uses exactly the arithmetic of
    ``repro.serve.ledger.replay_ledger`` (``ok / offered`` over the same
    integers), and the audit test asserts the two agree bit-for-bit.

    * ``serve_requests_total{tenant,disposition}`` — request outcomes
      (ok / incorrect / failed / shed / down);
    * ``serve_faults_total{tenant,kind}`` — fault events by hard/soft;
    * ``serve_responses_total{tenant,action}`` — Table 2 responses;
    * ``serve_pages_retired_total{tenant}`` — pages retired;
    * ``serve_tenant_availability{tenant}`` — ok / offered so far;
    * ``serve_backlog_depth{tenant}`` — pending error-response work;
    * ``serve_shedding{tenant}`` — 1 while admission control sheds.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.requests = registry.counter(
            "serve_requests_total",
            "Serve-session requests by tenant and disposition",
            labels=("tenant", "disposition"),
        )
        self.faults = registry.counter(
            "serve_faults_total",
            "Fault events routed to a tenant, by fault kind",
            labels=("tenant", "kind"),
        )
        self.responses_total = registry.counter(
            "serve_responses_total",
            "Table 2 software responses applied, by action",
            labels=("tenant", "action"),
        )
        self.pages_retired = registry.counter(
            "serve_pages_retired_total",
            "Pages retired on behalf of a tenant",
            labels=("tenant",),
        )
        self.availability = registry.gauge(
            "serve_tenant_availability",
            "Fraction of offered requests answered correctly so far",
            labels=("tenant",),
        )
        self.backlog_depth = registry.gauge(
            "serve_backlog_depth",
            "Detected faults awaiting a software response",
            labels=("tenant",),
        )
        self.shedding = registry.gauge(
            "serve_shedding",
            "1 while admission control sheds the tenant's load",
            labels=("tenant",),
        )
        self.request_latency = registry.histogram(
            "serve_request_latency_seconds",
            "Wall-clock execution latency of one served request",
            labels=("tenant",),
            buckets=SERVE_LATENCY_BUCKETS,
        )
        # tenant -> (ok, offered) backing the availability gauge.
        self._counts: Dict[str, Tuple[int, int]] = {}

    def record_requests(self, tenant: str, counts: Dict[str, int]) -> None:
        """Fold one tick's request dispositions for a tenant."""
        ok, offered = self._counts.get(tenant, (0, 0))
        for disposition, count in counts.items():
            if count:
                self.requests.labels(
                    tenant=tenant, disposition=disposition
                ).inc(count)
            offered += int(count)
        ok += int(counts.get("ok", 0))
        self._counts[tenant] = (ok, offered)
        self.availability.labels(tenant=tenant).set(
            ok / offered if offered else 1.0
        )

    def record_fault(self, tenant: str, kind: str) -> None:
        """Count one routed fault event."""
        self.faults.labels(tenant=tenant, kind=kind).inc()

    def record_response(
        self, tenant: str, action: str, pages_retired: int = 0
    ) -> None:
        """Count one applied Table 2 response."""
        self.responses_total.labels(tenant=tenant, action=action).inc()
        if pages_retired:
            self.pages_retired.labels(tenant=tenant).inc(pages_retired)

    def set_backlog(self, tenant: str, depth: int) -> None:
        """Publish a tenant's current error-response backlog depth."""
        self.backlog_depth.labels(tenant=tenant).set(float(depth))

    def set_shedding(self, tenant: str, shedding: bool) -> None:
        """Publish a tenant's admission-control state."""
        self.shedding.labels(tenant=tenant).set(1.0 if shedding else 0.0)

    def record_latency(self, tenant: str, seconds: float) -> None:
        """Observe one request's wall-clock execution latency.

        Observational only: latency is wall-clock and therefore lives in
        the registry (a convenience view), never in the ledger — the
        determinism invariant covers ledger bytes, not these buckets.
        """
        self.request_latency.labels(tenant=tenant).observe(seconds)

    def record_latency_many(
        self, tenant: str, seconds: Sequence[float]
    ) -> None:
        """Observe a whole quantum's request latencies in one fold.

        The batched data plane serves fused request runs without a
        per-request Python loop, so it reports latency once per run via
        :meth:`Histogram.observe_many` — identical histogram state to
        per-request :meth:`record_latency` calls, one bucket pass.
        """
        if seconds:
            self.request_latency.labels(tenant=tenant).observe_many(seconds)

    def latency_quantiles(self, tenant: str) -> Dict[str, float]:
        """p50/p99 request latency for one tenant (0.0 when unobserved)."""
        histogram = self.request_latency.labels(tenant=tenant)
        return {
            "p50": histogram.quantile(0.50),
            "p99": histogram.quantile(0.99),
        }

    def availability_of(self, tenant: str) -> float:
        """Current availability gauge value for one tenant."""
        ok, offered = self._counts.get(tenant, (0, 0))
        return ok / offered if offered else 1.0


class ExplorationInstruments:
    """Instruments for design-space exploration (``repro.explore``).

    Updated directly by the exploration engine (not from the event
    stream — exploration emits a handful of spans, not per-design
    events, so batch-incrementing counters at phase boundaries keeps
    instrument cost off the search hot path):

    * ``explore_designs_evaluated_total{backend}`` — designs whose exact
      metrics were computed;
    * ``explore_designs_pruned_total{reason}`` — designs eliminated by a
      branch-and-bound bound without exact evaluation (reasons:
      ``availability`` / ``incorrectness`` / ``cost`` / ``dominated``);
    * ``explore_feasible_designs`` — feasible count of the last search;
    * ``explore_space_designs`` — size of the last explored space.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.designs_evaluated = registry.counter(
            "explore_designs_evaluated_total",
            "Designs exactly evaluated during design-space exploration",
            labels=("backend",),
        )
        self.designs_pruned = registry.counter(
            "explore_designs_pruned_total",
            "Designs eliminated by branch-and-bound pruning, by bound",
            labels=("reason",),
        )
        self.feasible_designs = registry.gauge(
            "explore_feasible_designs",
            "Feasible designs found by the last exploration",
        )
        self.space_designs = registry.gauge(
            "explore_space_designs",
            "Total assignment-space size of the last exploration",
        )

    def record_search(
        self,
        backend: str,
        evaluated: int,
        feasible: int,
        total_designs: int,
        pruned_by: Dict[str, int] = None,
    ) -> None:
        """Fold one completed search into the registry."""
        self.designs_evaluated.labels(backend=backend).inc(evaluated)
        for reason, count in (pruned_by or {}).items():
            if count:
                self.designs_pruned.labels(reason=reason).inc(count)
        self.feasible_designs.labels().set(float(feasible))
        self.space_designs.labels().set(float(total_designs))


class FleetInstruments:
    """Instruments for fleet simulation/optimization (``repro.fleet``).

    Updated directly by the fleet engine at run boundaries (the
    ``record_*`` style of :class:`ExplorationInstruments` — a fleet run
    emits a handful of spans, not per-server events):

    * ``fleet_server_months_total{backend}`` — simulated server-months;
    * ``fleet_availability`` — mean routed availability of the last run;
    * ``fleet_machine_availability`` — mean server uptime of the last
      run (routing ignored);
    * ``fleet_downtime_minutes`` — total downtime of the last run;
    * ``fleet_compositions_evaluated_total`` — candidate compositions
      scored by the mixed-fleet optimizer;
    * ``fleet_best_cost_savings`` — server-cost savings of the last
      optimizer winner (0 when no composition was feasible).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.server_months = registry.counter(
            "fleet_server_months_total",
            "Server-months simulated by the fleet engine",
            labels=("backend",),
        )
        self.availability = registry.gauge(
            "fleet_availability",
            "Mean routed fleet availability of the last simulation",
        )
        self.machine_availability = registry.gauge(
            "fleet_machine_availability",
            "Mean server uptime fraction of the last simulation",
        )
        self.downtime_minutes = registry.gauge(
            "fleet_downtime_minutes",
            "Total downtime minutes of the last simulation",
        )
        self.compositions_evaluated = registry.counter(
            "fleet_compositions_evaluated_total",
            "Candidate compositions scored by the fleet optimizer",
        )
        self.best_cost_savings = registry.gauge(
            "fleet_best_cost_savings",
            "Cost savings of the last optimizer winner (0 if none)",
        )

    def record_simulation(self, result) -> None:
        """Fold one completed fleet simulation into the registry."""
        self.server_months.labels(backend=result.backend).inc(
            result.server_months
        )
        self.availability.labels().set(result.mean_fleet_availability)
        self.machine_availability.labels().set(
            result.mean_machine_availability
        )
        self.downtime_minutes.labels().set(sum(result.downtime_by_month))

    def record_optimization(self, result) -> None:
        """Fold one completed composition search into the registry."""
        self.compositions_evaluated.labels().inc(result.evaluated)
        self.best_cost_savings.labels().set(
            result.best.cost_savings if result.best is not None else 0.0
        )


class CampaignInstruments:
    """Keeps campaign-level instruments updated from the event stream."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.trials = registry.counter(
            "campaign_trials_total",
            "Completed injection trials by outcome taxonomy",
            labels=("outcome",),
        )
        self.responses = registry.counter(
            "campaign_responses_total",
            "Client requests observed during trials by disposition",
            labels=("disposition",),
        )
        self.injection_latency = registry.histogram(
            "injection_latency_seconds",
            "Wall-clock latency of one error-injection event",
            buckets=INJECTION_LATENCY_BUCKETS,
        )
        self.cell_safe_ratio = registry.gauge(
            "cell_safe_ratio",
            "Running masked fraction per campaign cell",
            labels=("cell",),
        )
        self.worker_busy = registry.counter(
            "worker_busy_seconds_total",
            "Cumulative shard-execution time per worker",
            labels=("pid",),
        )
        self.worker_idle = registry.gauge(
            "worker_idle_seconds",
            "Campaign elapsed time minus busy time per worker",
            labels=("pid",),
        )
        self.worker_trials = registry.counter(
            "worker_trials_total",
            "Trials completed per worker",
            labels=("pid",),
        )
        self.memory_fastpath = registry.counter(
            "memory_fastpath_accesses_total",
            "Simulated-memory accesses by dispatch path",
            labels=("path",),
        )
        self.memory_restores = registry.counter(
            "memory_restores_total",
            "Snapshot restores by mode",
            labels=("mode",),
        )
        self.memory_restore_bytes = registry.counter(
            "memory_restore_bytes_total",
            "Snapshot-restore byte traffic by disposition",
            labels=("disposition",),
        )
        self.memory_fastpath_hit_ratio = registry.gauge(
            "memory_fastpath_hit_ratio",
            "Fraction of simulated-memory accesses served by the fast path",
        )
        self.pruning_trials = registry.counter(
            "campaign_pruning_trials_total",
            "Trials by pruning disposition (pruned backend only)",
            labels=("disposition",),
        )
        self.pruning_rate = registry.gauge(
            "campaign_pruning_rate",
            "Running fraction of trials resolved analytically",
        )
        self.trials_done = registry.gauge(
            "campaign_trials_done", "Trials completed so far"
        )
        self.trials_budget = registry.gauge(
            "campaign_trials_budget", "Total trial budget of the campaign"
        )
        self.elapsed = registry.gauge(
            "campaign_elapsed_seconds", "Campaign wall-clock time so far"
        )
        # cell key -> (trials, masked) backing the running safe ratio.
        self._cell_counts: Dict[str, Tuple[int, int]] = {}

    def update(self, event: TraceEvent) -> None:
        """Fold one telemetry event into the registry."""
        if event.kind == KIND_SPAN:
            if event.name == SPAN_TRIAL:
                self._update_trial(event)
            elif event.name == SPAN_INJECTION:
                if event.duration_seconds is not None:
                    self.injection_latency.labels().observe(
                        event.duration_seconds
                    )
        elif event.kind == KIND_POINT and event.name == POINT_PROGRESS:
            self._update_progress(event)

    def _update_trial(self, event: TraceEvent) -> None:
        attrs = event.attrs
        outcome = str(attrs.get("outcome", "unknown"))
        self.trials.labels(outcome=outcome).inc()
        for disposition in ("responded", "incorrect", "failed"):
            count = attrs.get(disposition)
            if count:
                self.responses.labels(disposition=disposition).inc(float(count))
        cell = str(attrs.get("cell", "?"))
        trials, masked = self._cell_counts.get(cell, (0, 0))
        trials += 1
        if attrs.get("masked"):
            masked += 1
        self._cell_counts[cell] = (trials, masked)
        self.cell_safe_ratio.labels(cell=cell).set(safe_div(masked, trials))

    def update_batch(self, events: Iterable[TraceEvent]) -> None:
        """Fold many events with one registry touch per aggregate.

        The batch counterpart of :meth:`update`, used when whole trial
        shards land at once (vectorized campaigns, parallel merges):
        trial outcomes and response dispositions are pre-summed in plain
        dicts so each counter label is incremented once per batch, and
        each cell's safe-ratio gauge is set once with its final value.
        Counter sums commute and gauges take the last write, so the
        registry end-state is identical to folding the events one by
        one; progress points are replayed in order because the idle
        gauge reads the busy counter as it goes.
        """
        outcome_counts: Dict[str, int] = {}
        disposition_totals: Dict[str, float] = {}
        durations: List[float] = []
        progress_events: List[TraceEvent] = []
        touched_cells: List[str] = []
        for event in events:
            if event.kind == KIND_SPAN:
                if event.name == SPAN_TRIAL:
                    attrs = event.attrs
                    outcome = str(attrs.get("outcome", "unknown"))
                    outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1
                    for disposition in ("responded", "incorrect", "failed"):
                        count = attrs.get(disposition)
                        if count:
                            disposition_totals[disposition] = (
                                disposition_totals.get(disposition, 0.0)
                                + float(count)
                            )
                    cell = str(attrs.get("cell", "?"))
                    trials, masked = self._cell_counts.get(cell, (0, 0))
                    trials += 1
                    if attrs.get("masked"):
                        masked += 1
                    self._cell_counts[cell] = (trials, masked)
                    if cell not in touched_cells:
                        touched_cells.append(cell)
                elif event.name == SPAN_INJECTION:
                    if event.duration_seconds is not None:
                        durations.append(event.duration_seconds)
            elif event.kind == KIND_POINT and event.name == POINT_PROGRESS:
                progress_events.append(event)
        for outcome, count in outcome_counts.items():
            self.trials.labels(outcome=outcome).inc(count)
        for disposition, total in disposition_totals.items():
            self.responses.labels(disposition=disposition).inc(total)
        for cell in touched_cells:
            trials, masked = self._cell_counts[cell]
            self.cell_safe_ratio.labels(cell=cell).set(safe_div(masked, trials))
        if durations:
            histogram = self.injection_latency.labels()
            for duration in durations:
                histogram.observe(duration)
        for event in progress_events:
            self._update_progress(event)

    def record_memory(self, stats: Dict[str, int]) -> None:
        """Fold one memory fast-path stats delta into the registry.

        Updated directly (like :meth:`ExplorationInstruments.record_search`)
        rather than from the event stream: the address space counts
        accesses and restore bytes itself, and campaigns fold the deltas
        at cell/shard boundaries to keep instrument cost off the trial
        hot path. Keys match ``AddressSpace.fast_path_stats()``.
        """
        fast = int(stats.get("fast_accesses", 0))
        checked = int(stats.get("checked_accesses", 0))
        if fast:
            self.memory_fastpath.labels(path="fast").inc(fast)
        if checked:
            self.memory_fastpath.labels(path="checked").inc(checked)
        full = int(stats.get("restores_full", 0))
        incremental = int(stats.get("restores_incremental", 0))
        if full:
            self.memory_restores.labels(mode="full").inc(full)
        if incremental:
            self.memory_restores.labels(mode="incremental").inc(incremental)
        copied = int(stats.get("restore_bytes_copied", 0))
        saved = int(stats.get("restore_bytes_saved", 0))
        if copied:
            self.memory_restore_bytes.labels(disposition="copied").inc(copied)
        if saved:
            self.memory_restore_bytes.labels(disposition="saved").inc(saved)
        fast_total = self.memory_fastpath.labels(path="fast").value
        checked_total = self.memory_fastpath.labels(path="checked").value
        self.memory_fastpath_hit_ratio.labels().set(
            safe_div(fast_total, fast_total + checked_total)
        )

    def record_pruning(self, stats: Dict[str, int]) -> None:
        """Fold one pruning tally into the registry.

        Updated directly (like :meth:`record_memory`): the campaign's
        pre-classifier counts dispositions itself and folds them at
        cell (serial) or run (parallel) boundaries. Keys match
        ``PruningStats.to_dict()`` — ``pruned`` trials were resolved
        analytically, ``executed`` ran the workload, and ``fallback``
        (a subset of executed) had no analytic model for their fault
        kind.
        """
        for disposition in ("pruned", "executed", "fallback"):
            count = int(stats.get(disposition, 0))
            if count:
                self.pruning_trials.labels(disposition=disposition).inc(count)
        pruned_total = self.pruning_trials.labels(disposition="pruned").value
        executed_total = self.pruning_trials.labels(disposition="executed").value
        self.pruning_rate.labels().set(
            safe_div(pruned_total, pruned_total + executed_total)
        )

    def _update_progress(self, event: TraceEvent) -> None:
        attrs = event.attrs
        pid = str(attrs.get("worker_pid", event.pid))
        busy = self.worker_busy.labels(pid=pid)
        busy.inc(float(attrs.get("shard_seconds", 0.0)))
        self.worker_trials.labels(pid=pid).inc(
            float(attrs.get("shard_trials", 0))
        )
        elapsed = float(attrs.get("elapsed_seconds", 0.0))
        self.worker_idle.labels(pid=pid).set(max(0.0, elapsed - busy.value))
        self.trials_done.labels().set(float(attrs.get("trials_done", 0)))
        self.trials_budget.labels().set(float(attrs.get("trials_total", 0)))
        self.elapsed.labels().set(elapsed)
