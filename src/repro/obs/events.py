"""Structured telemetry events emitted by the observability layer.

Every quantity the campaign engine can report — span completions,
progress ticks, monitor sessions — is normalized into one flat,
picklable :class:`TraceEvent`. Flat events (rather than nested span
trees) are what lets parallel workers relay their telemetry to the
parent through the existing multiprocessing result pipe and lets the
JSONL sink stay append-only; hierarchy is recovered from the ``path`` /
``parent`` fields (see :mod:`repro.obs.report`).

Span paths are *deterministic*: they are derived from the campaign
grid identity (cell name, error label, trial index), never from wall
time, pids, or scheduling — so a serial run and an 8-worker run of the
same campaign produce the same set of span paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Event kinds (the ``event`` column of the schema table in DESIGN.md).
KIND_SPAN = "span"
KIND_POINT = "point"

#: Span names, outermost first. ``campaign`` wraps the whole grid,
#: ``cell`` one (region × error type), ``trial`` one injection trial,
#: and ``injection`` / ``consume`` / ``verify`` the trial's three
#: phases (Algorithm 1a inject, client replay, outcome classification).
SPAN_CAMPAIGN = "campaign"
SPAN_CELL = "cell"
SPAN_TRIAL = "trial"
SPAN_INJECTION = "injection"
SPAN_CONSUME = "consume"
SPAN_VERIFY = "verify"
#: Span name for one :class:`~repro.monitoring.AccessMonitor` session.
SPAN_MONITOR = "monitor"
#: Span wrapping one design-space exploration (``repro.explore``), and
#: its phases (``matrix`` build, ``search``, ``simulate``).
SPAN_EXPLORE = "explore"
SPAN_EXPLORE_PHASE = "explore_phase"
#: Span wrapping one long-lived serve session (``repro serve``).
SPAN_SERVE = "serve"
#: Span wrapping one fleet simulation/optimization (``repro fleet``),
#: and its phases (``layout`` / ``grid`` build, ``simulate``, ``search``).
SPAN_FLEET = "fleet"
SPAN_FLEET_PHASE = "fleet_phase"
#: Point event emitted after every completed shard of campaign work.
POINT_PROGRESS = "progress"


@dataclass(frozen=True)
class TraceEvent:
    """One telemetry event (a completed span or an instantaneous point).

    Attributes:
        kind: ``"span"`` or ``"point"``.
        name: The span/point name (e.g. ``"trial"``).
        path: Deterministic hierarchical identity, e.g.
            ``"campaign/cell:heap|single-bit soft/trial:17"``.
        parent: Path of the enclosing span (``""`` at the root).
        ts: Wall-clock timestamp (``time.time()``) at emission.
        duration_seconds: Span duration; ``None`` for points.
        pid: Process that executed the work (worker pid in parallel runs).
        attrs: Name-specific payload (see the schema table in DESIGN.md).
    """

    kind: str
    name: str
    path: str
    parent: str
    ts: float
    duration_seconds: Optional[float]
    pid: int
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (one JSONL line per event)."""
        return {
            "event": self.kind,
            "name": self.name,
            "path": self.path,
            "parent": self.parent,
            "ts": self.ts,
            "duration_seconds": self.duration_seconds,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (used by ``repro report``)."""
        return cls(
            kind=data["event"],
            name=data["name"],
            path=data["path"],
            parent=data["parent"],
            ts=data["ts"],
            duration_seconds=data["duration_seconds"],
            pid=data["pid"],
            attrs=dict(data.get("attrs", {})),
        )
