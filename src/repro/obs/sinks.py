"""Event sinks: where :class:`~repro.obs.events.TraceEvent`\\ s go.

Sinks are deliberately tiny — anything with a ``write(event)`` method
qualifies — so tests can use :class:`EventBuffer`, the CLI a
:class:`JsonlSink`, and parallel workers a buffer whose contents are
shipped back through the result pipe.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional, Union

from repro.obs.events import TraceEvent

__all__ = ["EventBuffer", "JsonlSink", "load_events"]


class EventBuffer:
    """In-memory sink; also the worker-side relay buffer."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        """Append one event."""
        self.events.append(event)

    def close(self) -> None:  # symmetry with JsonlSink
        """No-op (buffers hold their events)."""

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Append-only structured event log: one JSON object per line.

    The file is opened eagerly so an unwritable path fails at
    construction (fail fast) rather than at the end of a long campaign.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file: Optional[IO[str]] = self.path.open("w", encoding="utf-8")

    def write(self, event: TraceEvent) -> None:
        """Serialize one event as a JSONL line."""
        if self._file is None:
            raise ValueError(f"sink for {self.path} is closed")
        self._file.write(json.dumps(event.to_dict(), sort_keys=True))
        self._file.write("\n")

    def close(self) -> None:
        """Flush and close the log file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_events(path: Union[str, Path]) -> List[TraceEvent]:
    """Read a JSONL trace back into events (inverse of :class:`JsonlSink`).

    Raises ``ValueError`` on malformed lines, naming the line number.
    """
    events: List[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace event: {exc}"
                ) from exc
    return events
