"""Progress and throughput metrics for characterization campaigns.

The campaign engine (serial and parallel) accepts a ``progress``
callback invoked after every completed shard with a
:class:`ProgressEvent`. :class:`CampaignMetrics` is a ready-made hook
that aggregates the events into campaign-level throughput (trials
completed, trials/sec) and a per-worker timing breakdown — the
simulation-side analogue of watching the paper's 40-server cluster chew
through its two-month injection schedule.

Since the observability layer landed, both are thin consumers of the
same shard-completion signal that feeds the structured event stream:
:func:`emit_progress` fans one completed shard out to the legacy
callback *and*, as a ``progress`` point event, to an
:class:`~repro.obs.trace.Observer` (trace sinks + metrics registry).
They remain importable from :mod:`repro.exec.progress` for backward
compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.events import POINT_PROGRESS
from repro.utils.stats import safe_div

__all__ = [
    "ProgressEvent",
    "WorkerTiming",
    "CampaignMetrics",
    "ProgressClock",
    "emit_progress",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One completed shard of campaign work."""

    trials_done: int
    trials_total: int
    elapsed_seconds: float
    worker_pid: int
    shard_trials: int
    shard_seconds: float
    cell_name: str
    error_label: str

    @property
    def trials_per_second(self) -> float:
        """Campaign-level throughput so far."""
        return safe_div(self.trials_done, self.elapsed_seconds)

    @property
    def fraction_done(self) -> float:
        """Completed fraction of the trial budget, in [0, 1]."""
        return safe_div(self.trials_done, self.trials_total, default=1.0)

    def to_dict(self) -> dict:
        """Plain-dict form (the ``progress`` point-event payload)."""
        return {
            "trials_done": self.trials_done,
            "trials_total": self.trials_total,
            "elapsed_seconds": self.elapsed_seconds,
            "worker_pid": self.worker_pid,
            "shard_trials": self.shard_trials,
            "shard_seconds": self.shard_seconds,
            "cell_name": self.cell_name,
            "error_label": self.error_label,
        }


@dataclass
class WorkerTiming:
    """Per-worker accounting of shards, trials, and busy time."""

    shards: int = 0
    trials: int = 0
    busy_seconds: float = 0.0


@dataclass
class CampaignMetrics:
    """A progress hook that aggregates :class:`ProgressEvent` streams.

    Usable directly as the ``progress=`` argument of
    :meth:`repro.core.campaign.CharacterizationCampaign.run`::

        metrics = CampaignMetrics()
        campaign.run(workers=4, progress=metrics)
        print(metrics.trials_per_second, metrics.per_worker)
    """

    trials_total: int = 0
    trials_done: int = 0
    elapsed_seconds: float = 0.0
    per_worker: Dict[int, WorkerTiming] = field(default_factory=dict)
    events: List[ProgressEvent] = field(default_factory=list)

    def __call__(self, event: ProgressEvent) -> None:
        """Fold one shard-completion event into the aggregate."""
        self.trials_total = event.trials_total
        self.trials_done = event.trials_done
        self.elapsed_seconds = event.elapsed_seconds
        timing = self.per_worker.setdefault(event.worker_pid, WorkerTiming())
        timing.shards += 1
        timing.trials += event.shard_trials
        timing.busy_seconds += event.shard_seconds
        self.events.append(event)

    @property
    def trials_per_second(self) -> float:
        """Aggregate campaign throughput."""
        return safe_div(self.trials_done, self.elapsed_seconds)

    @property
    def worker_count(self) -> int:
        """Distinct workers that completed at least one shard."""
        return len(self.per_worker)

    def snapshot(self) -> dict:
        """Plain-dict summary (for logging / JSON reports)."""
        return {
            "trials_total": self.trials_total,
            "trials_done": self.trials_done,
            "elapsed_seconds": self.elapsed_seconds,
            "trials_per_second": self.trials_per_second,
            "workers": {
                str(pid): {
                    "shards": timing.shards,
                    "trials": timing.trials,
                    "busy_seconds": timing.busy_seconds,
                }
                for pid, timing in sorted(self.per_worker.items())
            },
        }

    def to_dict(self) -> dict:
        """Alias of :meth:`snapshot` (the ``--metrics-out`` payload)."""
        return self.snapshot()


class ProgressClock:
    """Monotonic stopwatch shared by the serial and parallel engines."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start


def emit_progress(
    progress: Optional[object],
    clock: ProgressClock,
    trials_done: int,
    trials_total: int,
    worker_pid: int,
    shard_trials: int,
    shard_seconds: float,
    cell_name: str,
    error_label: str,
    observer: Optional[object] = None,
) -> None:
    """Fan one completed shard out to the progress hook and observer.

    Hook errors propagate. ``observer`` receives the same payload as a
    ``progress`` point event (no-op for disabled observers).
    """
    observing = observer is not None and observer.enabled
    if progress is None and not observing:
        return
    event = ProgressEvent(
        trials_done=trials_done,
        trials_total=trials_total,
        elapsed_seconds=clock.elapsed(),
        worker_pid=worker_pid,
        shard_trials=shard_trials,
        shard_seconds=shard_seconds,
        cell_name=cell_name,
        error_label=error_label,
    )
    if progress is not None:
        progress(event)
    if observing:
        observer.point(POINT_PROGRESS, attrs=event.to_dict())
