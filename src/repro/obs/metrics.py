"""Metrics registry: counters, gauges, and fixed-bucket histograms.

A deliberately small, dependency-free subset of the Prometheus data
model. Instruments are created through a :class:`MetricsRegistry` and
addressed by name plus an ordered label set::

    registry = MetricsRegistry()
    trials = registry.counter(
        "campaign_trials_total", "Completed trials", labels=("outcome",))
    trials.labels(outcome="crash").inc()

Determinism: histogram bucket boundaries are fixed at instrument
creation (never adapted to the data), and every serialization —
:meth:`MetricsRegistry.to_dict` and
:meth:`MetricsRegistry.render_prometheus` — emits instruments and label
children in sorted order, so two runs that observe the same values
produce byte-identical dumps.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.stats import safe_div

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentFamily",
    "MetricsRegistry",
    "INJECTION_LATENCY_BUCKETS",
]

#: Fixed bucket upper bounds (seconds) for injection-latency histograms.
#: Powers of ten from 1 µs to 10 s: wide enough for a simulated
#: injection (µs) and a debugger-driven hardware one (ms-s).
INJECTION_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """Monotonically increasing value."""

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Value that can go up and down (a running estimate)."""

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value


class Histogram:
    """Fixed-boundary cumulative histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; an
    implicit ``+Inf`` bucket equals ``count``.
    """

    def __init__(self, buckets: Sequence[float]) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket boundary")
        ordered = tuple(buckets)
        if list(ordered) != sorted(ordered):
            raise ValueError(f"bucket boundaries must be sorted, got {ordered}")
        self.buckets: Tuple[float, ...] = ordered
        self.bucket_counts: List[int] = [0] * len(ordered)
        self.count: int = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations in one bucket pass.

        Equivalent to calling :meth:`observe` once per value — identical
        ``count``, ``sum``, and cumulative bucket counts — but costs one
        sort plus one ``bisect`` per bucket boundary instead of one full
        boundary scan per value, which is what keeps once-per-quantum
        instrument folding off the serve data plane's hot path.
        """
        if not values:
            return
        ordered = sorted(values)
        self.count += len(ordered)
        self.sum += sum(ordered)
        for index, bound in enumerate(self.buckets):
            # Observations <= bound = rank of the boundary in the batch.
            self.bucket_counts[index] += bisect.bisect_right(ordered, bound)

    @property
    def mean(self) -> float:
        """Average observed value (0 when empty)."""
        return safe_div(self.sum, self.count)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by bucket linear interpolation.

        The ``histogram_quantile`` estimator: find the bucket holding
        the ``q``-th observation and interpolate linearly inside it
        (the first bucket interpolates from 0; ranks landing in the
        ``+Inf`` bucket clamp to the highest finite boundary). Returns
        0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for index, bound in enumerate(self.buckets):
            cumulative = self.bucket_counts[index]
            if cumulative >= rank:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                below = self.bucket_counts[index - 1] if index > 0 else 0
                in_bucket = cumulative - below
                if in_bucket == 0:
                    return bound
                fraction = (rank - below) / in_bucket
                return lower + (bound - lower) * fraction
        # Rank falls in the implicit +Inf bucket: clamp to the highest
        # finite boundary, as histogram_quantile does.
        return self.buckets[-1]


@dataclass
class InstrumentFamily:
    """All children of one named instrument, keyed by label values."""

    name: str
    help: str
    kind: str  # "counter" | "gauge" | "histogram"
    label_names: Tuple[str, ...]
    buckets: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **label_values: str):
        """Get (or create) the child instrument for one label combination."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or INJECTION_LATENCY_BUCKETS)

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, instrument) pairs in sorted label order."""
        return sorted(self._children.items())


class MetricsRegistry:
    """Named instrument families with deterministic serialization."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._families: Dict[str, InstrumentFamily] = {}

    # ------------------------------------------------------------------
    # Instrument creation (idempotent per name)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> InstrumentFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help, "counter", labels, None)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> InstrumentFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help, "gauge", labels, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = INJECTION_LATENCY_BUCKETS,
    ) -> InstrumentFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(name, help, "histogram", labels, tuple(buckets))

    def _register(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Sequence[str],
        buckets: Optional[Tuple[float, ...]],
    ) -> InstrumentFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as {family.kind}"
                )
            return family
        family = InstrumentFamily(
            name=name,
            help=help,
            kind=kind,
            label_names=tuple(labels),
            buckets=buckets,
        )
        self._families[name] = family
        return family

    def families(self) -> List[InstrumentFamily]:
        """Registered families in name order."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict dump (the ``--metrics-out`` JSON payload)."""
        out: Dict[str, dict] = {}
        for family in self.families():
            children = {}
            for key, child in family.children():
                label_key = ",".join(
                    f"{name}={value}"
                    for name, value in zip(family.label_names, key)
                )
                if isinstance(child, Histogram):
                    children[label_key] = {
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {
                            repr(bound): count
                            for bound, count in zip(
                                child.buckets, child.bucket_counts
                            )
                        },
                    }
                else:
                    children[label_key] = child.value  # type: ignore[union-attr]
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "values": children,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text-exposition dump of every instrument."""
        lines: List[str] = []
        for family in self.families():
            full = f"{self.namespace}_{family.name}"
            if family.help:
                lines.append(f"# HELP {full} {family.help}")
            lines.append(f"# TYPE {full} {family.kind}")
            for key, child in family.children():
                labels = _format_labels(family.label_names, key)
                if isinstance(child, Histogram):
                    for bound, count in zip(child.buckets, child.bucket_counts):
                        bucket_labels = _format_labels(
                            family.label_names + ("le",), key + (_fmt(bound),)
                        )
                        lines.append(f"{full}_bucket{bucket_labels} {count}")
                    inf_labels = _format_labels(
                        family.label_names + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{full}_bucket{inf_labels} {child.count}")
                    lines.append(f"{full}_sum{labels} {_fmt(child.sum)}")
                    lines.append(f"{full}_count{labels} {child.count}")
                else:
                    value = child.value  # type: ignore[union-attr]
                    lines.append(f"{full}{labels} {_fmt(value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a float the way Prometheus expects (ints without .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and line feed are the three characters the
    format requires escaping inside quoted label values; anything else
    passes through verbatim.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + body + "}"
