"""Minimal Prometheus text-exposition parser (scrape sanity checks).

Just enough of the format to validate what
:meth:`repro.obs.metrics.MetricsRegistry.render_prometheus` (and hence
the ``/metrics`` endpoint) emits: ``# HELP`` / ``# TYPE`` comments,
samples with optional label sets, and the escape rules for label values
(``\\\\``, ``\\"``, ``\\n``). Used by unit tests and the CI serve-smoke
job to assert a live scrape parses; not a general-purpose client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PromParseError",
    "PromSample",
    "assert_scrape_parses",
    "parse_prometheus",
    "sample_value",
]


class PromParseError(ValueError):
    """A line the exposition format does not allow."""


@dataclass
class PromSample:
    """One parsed sample line."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    value: float = 0.0


def parse_prometheus(text: str) -> List[PromSample]:
    """Parse exposition text into samples, validating as it goes.

    Raises:
        PromParseError: on malformed sample lines, bad label syntax,
            unterminated quotes, or non-numeric values — the failure CI
            uses to catch scrape-breaking output (e.g. unescaped quotes
            in label values).
    """
    samples: List[PromSample] = []
    typed: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        name, labels, rest = _split_sample(line, lineno)
        try:
            value = float(rest)
        except ValueError as exc:
            raise PromParseError(
                f"line {lineno}: non-numeric sample value {rest!r}"
            ) from exc
        samples.append(PromSample(name=name, labels=labels, value=value))
    return samples


def _split_sample(line: str, lineno: int) -> Tuple[str, Dict[str, str], str]:
    """Split a sample line into (metric name, labels, value text)."""
    brace = line.find("{")
    if brace == -1:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise PromParseError(f"line {lineno}: no value in {line!r}")
        _check_name(parts[0], lineno)
        return parts[0], {}, parts[1]
    name = line[:brace]
    _check_name(name, lineno)
    labels, after = _parse_labels(line, brace, lineno)
    rest = line[after:].strip()
    if not rest:
        raise PromParseError(f"line {lineno}: no value after labels")
    return name, labels, rest


def _check_name(name: str, lineno: int) -> None:
    if not name or not all(
        ch.isalnum() or ch in "_:" for ch in name
    ) or name[0].isdigit():
        raise PromParseError(f"line {lineno}: bad metric name {name!r}")


def _parse_labels(
    line: str, brace: int, lineno: int
) -> Tuple[Dict[str, str], int]:
    """Parse a ``{name="value",...}`` block; returns (labels, end index)."""
    labels: Dict[str, str] = {}
    index = brace + 1
    while True:
        if index >= len(line):
            raise PromParseError(f"line {lineno}: unterminated label set")
        if line[index] == "}":
            return labels, index + 1
        equals = line.find("=", index)
        if equals == -1:
            raise PromParseError(f"line {lineno}: label without '='")
        label_name = line[index:equals]
        if not label_name or not all(
            ch.isalnum() or ch == "_" for ch in label_name
        ):
            raise PromParseError(
                f"line {lineno}: bad label name {label_name!r}"
            )
        if equals + 1 >= len(line) or line[equals + 1] != '"':
            raise PromParseError(f"line {lineno}: label value not quoted")
        value, index = _parse_quoted(line, equals + 1, lineno)
        labels[label_name] = value
        if index < len(line) and line[index] == ",":
            index += 1


def _parse_quoted(line: str, start: int, lineno: int) -> Tuple[str, int]:
    """Decode one quoted label value starting at ``line[start] == '"'``."""
    out: List[str] = []
    index = start + 1
    while index < len(line):
        ch = line[index]
        if ch == "\\":
            if index + 1 >= len(line):
                raise PromParseError(f"line {lineno}: dangling backslash")
            escape = line[index + 1]
            if escape == "n":
                out.append("\n")
            elif escape in ('"', "\\"):
                out.append(escape)
            else:
                raise PromParseError(
                    f"line {lineno}: bad escape \\{escape}"
                )
            index += 2
        elif ch == '"':
            return "".join(out), index + 1
        else:
            out.append(ch)
            index += 1
    raise PromParseError(f"line {lineno}: unterminated label value")


def assert_scrape_parses(text: str) -> int:
    """Parse or die; returns the sample count (CI convenience)."""
    samples = parse_prometheus(text)
    if not samples:
        raise PromParseError("scrape produced zero samples")
    return len(samples)


def sample_value(
    samples: List[PromSample], name: str, **labels: str
) -> Optional[float]:
    """Find one sample's value by name + exact label match (or None)."""
    for sample in samples:
        if sample.name == name and sample.labels == labels:
            return sample.value
    return None
