"""Deterministic SLO burn-rate engine over virtual tick time.

The serving layer's availability SLO ("fraction of offered requests
answered correctly") gets the standard Google-SRE treatment here:
multi-window **burn-rate alerting**. For an SLO target ``t`` the error
budget is ``1 - t``; the *burn rate* over a trailing window of ticks is
the window's bad-request fraction divided by that budget (burn rate 1.0
means the budget is being consumed exactly at the sustainable pace).
An alert rule pairs a *long* window (is the burn sustained?) with a
*short* window (is it still happening?) and fires only while **both**
exceed the rule's threshold — the short window makes alerts reset
quickly once the condition clears, the long window keeps one-tick
blips from paging.

Everything here is computed **exclusively over virtual time**: the
engine consumes per-tick request-disposition counts (the ``requests``
ledger events of :mod:`repro.serve.ledger`) and never reads wall
clocks, so a seeded serve session produces byte-identical alert
transitions on every run — and :func:`slo_from_ledger` re-derives the
exact same transitions offline from the ledger file alone. The live
multiplexer appends every transition to the ledger (kind
``slo_alert``), making alert history part of the auditable record;
:func:`audit_slo` checks recorded-vs-recomputed equality.

Layering: this module deliberately does **not** import
:mod:`repro.serve` — it duck-types over ledger events (``kind`` /
``tenant`` / ``tick`` / ``attrs``). The event-kind strings below must
match the schema constants in ``repro.serve.ledger`` (pinned by a unit
test).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_SLO_TARGET",
    "SloConfig",
    "SloEngine",
    "SloReplay",
    "audit_slo",
    "parse_burn_windows",
    "slo_from_ledger",
]

#: Ledger event kinds consumed/produced, mirroring the schema constants
#: in ``repro.serve.ledger`` (EVENT_START / EVENT_REQUESTS / EVENT_SLO).
#: Kept as literals so ``repro.obs`` stays independent of ``repro.serve``.
START_KIND = "serve_start"
REQUESTS_KIND = "requests"
SLO_KIND = "slo_alert"

#: Default per-tenant availability SLO target. The serving host runs at
#: paper-scale error rates (whole fault footprints per tick), so 99% is
#: the regime where burn-rate alerts are actually exercised.
DEFAULT_SLO_TARGET = 0.99


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window alert rule.

    Attributes:
        name: Rule name (``fast`` pages, ``slow`` tickets, ...).
        short_ticks: Trailing short-window length in ticks.
        long_ticks: Trailing long-window length in ticks.
        threshold: Burn rate both windows must reach to fire.
    """

    name: str
    short_ticks: int
    long_ticks: int
    threshold: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("burn window needs a name")
        if self.short_ticks < 1:
            raise ValueError(
                f"{self.name}: short_ticks must be >= 1, got {self.short_ticks}"
            )
        if self.long_ticks < self.short_ticks:
            raise ValueError(
                f"{self.name}: long_ticks ({self.long_ticks}) must be >= "
                f"short_ticks ({self.short_ticks})"
            )
        if self.threshold <= 0:
            raise ValueError(
                f"{self.name}: threshold must be > 0, got {self.threshold}"
            )

    def to_dict(self) -> dict:
        """JSON form (embedded in the ledger's ``serve_start`` event)."""
        return {
            "name": self.name,
            "short_ticks": self.short_ticks,
            "long_ticks": self.long_ticks,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BurnWindow":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            short_ticks=int(data["short_ticks"]),  # type: ignore[arg-type]
            long_ticks=int(data["long_ticks"]),  # type: ignore[arg-type]
            threshold=float(data["threshold"]),  # type: ignore[arg-type]
        )


#: Default rule pair (Google SRE workbook shape, scaled to ticks): a
#: fast page-grade rule (2/8 ticks at 6x budget burn) and a slow
#: ticket-grade rule (8/32 ticks at 2x).
DEFAULT_BURN_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow("fast", short_ticks=2, long_ticks=8, threshold=6.0),
    BurnWindow("slow", short_ticks=8, long_ticks=32, threshold=2.0),
)


def parse_burn_windows(spec: str) -> Tuple[BurnWindow, ...]:
    """Parse the CLI ``--burn-windows`` grammar.

    ``name:short:long:threshold`` rules separated by commas, e.g.
    ``fast:2:8:6,slow:8:32:2``.
    """
    windows: List[BurnWindow] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 4:
            raise ValueError(
                f"bad burn window {chunk!r}: expected name:short:long:threshold"
            )
        try:
            windows.append(
                BurnWindow(
                    name=parts[0],
                    short_ticks=int(parts[1]),
                    long_ticks=int(parts[2]),
                    threshold=float(parts[3]),
                )
            )
        except ValueError as exc:
            raise ValueError(f"bad burn window {chunk!r}: {exc}") from exc
    if not windows:
        raise ValueError(f"no burn windows in {spec!r}")
    names = [w.name for w in windows]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate burn-window names in {spec!r}")
    return tuple(windows)


@dataclass(frozen=True)
class SloConfig:
    """Availability target + alert rules for one serve session."""

    target: float = DEFAULT_SLO_TARGET
    windows: Tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"slo target must be in (0, 1), got {self.target}"
            )
        if not self.windows:
            raise ValueError("slo config needs at least one burn window")
        names = [w.name for w in self.windows]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate burn-window names: {names}")
        # Normalize sequences handed in as lists.
        object.__setattr__(self, "windows", tuple(self.windows))

    @property
    def error_budget(self) -> float:
        """The tolerated bad-request fraction (``1 - target``)."""
        return 1.0 - self.target

    @property
    def max_window_ticks(self) -> int:
        """History depth the engine must retain."""
        return max(w.long_ticks for w in self.windows)

    def to_dict(self) -> dict:
        """JSON form (the ``slo`` key of the ``serve_start`` event)."""
        return {
            "target": self.target,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SloConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            target=float(data["target"]),  # type: ignore[arg-type]
            windows=tuple(
                BurnWindow.from_dict(w)  # type: ignore[arg-type]
                for w in data["windows"]  # type: ignore[union-attr]
            ),
        )


@dataclass
class _RuleState:
    """Live alert state of one (tenant, rule)."""

    firing: bool = False
    since_tick: Optional[int] = None


@dataclass
class _TenantSlo:
    """Per-tenant engine state: tick history + per-rule alert states."""

    history: Deque[Tuple[int, int]]  # (ok, offered) per tick, newest last
    rules: Dict[str, _RuleState] = field(default_factory=dict)


class SloEngine:
    """Folds per-tick request counts into burn rates and alert states.

    One instance serves both the live multiplexer and the offline
    replay — determinism between the two is a consequence of this being
    the *only* implementation of the math.
    """

    def __init__(self, config: Optional[SloConfig] = None) -> None:
        self.config = config if config is not None else SloConfig()
        self._tenants: Dict[str, _TenantSlo] = {}
        #: Every transition ever emitted: {"tick", "tenant", **attrs}.
        self.transitions: List[dict] = []

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def _tenant(self, tenant: str) -> _TenantSlo:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantSlo(
                history=deque(maxlen=self.config.max_window_ticks)
            )
        return state

    def observe(
        self, tenant: str, tick: int, counts: Mapping[str, object]
    ) -> List[dict]:
        """Fold one tenant-tick of request dispositions.

        ``counts`` is the ``requests`` ledger payload (disposition →
        count). Returns the alert *transitions* this tick caused, as
        ledger-ready attrs dicts (empty list when nothing changed).
        """
        ok = int(counts.get("ok", 0))  # type: ignore[arg-type]
        offered = sum(int(v) for v in counts.values())  # type: ignore[arg-type]
        state = self._tenant(tenant)
        state.history.append((ok, offered))
        transitions: List[dict] = []
        for window in self.config.windows:
            burn_short = self._burn(state, window.short_ticks)
            burn_long = self._burn(state, window.long_ticks)
            rule = state.rules.setdefault(window.name, _RuleState())
            now_firing = (
                burn_short >= window.threshold and burn_long >= window.threshold
            )
            if now_firing == rule.firing:
                continue
            rule.firing = now_firing
            rule.since_tick = tick
            attrs = {
                "rule": window.name,
                "state": "firing" if now_firing else "resolved",
                "burn_short": burn_short,
                "burn_long": burn_long,
                "threshold": window.threshold,
                "short_ticks": window.short_ticks,
                "long_ticks": window.long_ticks,
                # Exemplar: the deterministic span path of the serve
                # tick that tripped (or cleared) the rule, so an alert
                # can be joined back to trace spans and ledger events.
                "span_path": f"serve/tenant:{tenant}/tick:{tick}",
            }
            transitions.append(attrs)
            self.transitions.append({"tick": tick, "tenant": tenant, **attrs})
        return transitions

    def _burn(self, state: _TenantSlo, window_ticks: int) -> float:
        """Burn rate over the trailing ``window_ticks`` of history."""
        history = state.history
        span = min(window_ticks, len(history))
        if span == 0:
            return 0.0
        ok = offered = 0
        for index in range(len(history) - span, len(history)):
            tick_ok, tick_offered = history[index]
            ok += tick_ok
            offered += tick_offered
        if offered == 0:
            return 0.0
        bad_fraction = (offered - ok) / offered
        return bad_fraction / self.config.error_budget

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def tenants(self) -> List[str]:
        """Tenants observed so far, sorted."""
        return sorted(self._tenants)

    def availability_history(self, tenant: str) -> List[float]:
        """Per-tick availability over the retained window (oldest first)."""
        state = self._tenants.get(tenant)
        if state is None:
            return []
        return [
            ok / offered if offered else 1.0 for ok, offered in state.history
        ]

    def burn_rates(self, tenant: str) -> Dict[str, Tuple[float, float]]:
        """Current (short, long) burn rate per rule for one tenant."""
        state = self._tenants.get(tenant)
        if state is None:
            return {}
        return {
            w.name: (self._burn(state, w.short_ticks), self._burn(state, w.long_ticks))
            for w in self.config.windows
        }

    def firing(self, tenant: str) -> List[str]:
        """Names of rules currently firing for one tenant."""
        state = self._tenants.get(tenant)
        if state is None:
            return []
        return sorted(
            name for name, rule in state.rules.items() if rule.firing
        )

    def to_dict(self) -> dict:
        """The ``/slo`` endpoint payload."""
        tenants = {}
        for name in self.tenants():
            state = self._tenants[name]
            rules = {}
            for window in self.config.windows:
                rule = state.rules.get(window.name, _RuleState())
                burn_short = self._burn(state, window.short_ticks)
                burn_long = self._burn(state, window.long_ticks)
                rules[window.name] = {
                    "state": "firing" if rule.firing else "ok",
                    "since_tick": rule.since_tick,
                    "burn_short": burn_short,
                    "burn_long": burn_long,
                    "threshold": window.threshold,
                }
            tenants[name] = rules
        return {
            "target": self.config.target,
            "error_budget": self.config.error_budget,
            "windows": [w.to_dict() for w in self.config.windows],
            "tenants": tenants,
            "alerts": list(self.transitions),
        }


@dataclass
class SloReplay:
    """Result of re-deriving SLO alerts from a ledger offline."""

    config: SloConfig
    #: Transitions recomputed from the ``requests`` events alone.
    computed: List[dict]
    #: ``slo_alert`` events actually recorded in the ledger.
    recorded: List[dict]
    #: The engine after replay (for burn-rate/state inspection).
    engine: SloEngine

    @property
    def consistent(self) -> bool:
        """Recorded alert history equals the offline recomputation."""
        return self.computed == self.recorded


def slo_from_ledger(
    events: Iterable, config: Optional[SloConfig] = None
) -> SloReplay:
    """Re-derive every SLO alert transition from ledger events alone.

    ``events`` are ledger events (anything with ``kind`` / ``tenant`` /
    ``tick`` / ``attrs``). When ``config`` is omitted it is read from
    the ``serve_start`` event's ``slo`` echo (sessions older than the
    telemetry plane fall back to the defaults).
    """
    events = list(events)
    if config is None:
        if events and events[0].kind == START_KIND:
            echoed = events[0].attrs.get("slo")
            if isinstance(echoed, Mapping):
                config = SloConfig.from_dict(echoed)
    if config is None:
        config = SloConfig()
    engine = SloEngine(config)
    computed: List[dict] = []
    recorded: List[dict] = []
    for event in events:
        if event.kind == REQUESTS_KIND:
            for attrs in engine.observe(event.tenant, event.tick, event.attrs):
                computed.append(
                    {"tick": event.tick, "tenant": event.tenant, **attrs}
                )
        elif event.kind == SLO_KIND:
            recorded.append(
                {"tick": event.tick, "tenant": event.tenant, **dict(event.attrs)}
            )
    return SloReplay(
        config=config, computed=computed, recorded=recorded, engine=engine
    )


def audit_slo(events: Iterable, config: Optional[SloConfig] = None) -> SloReplay:
    """Replay and *assert* recorded == recomputed alert history.

    Raises:
        ValueError: when the ledger's recorded ``slo_alert`` events do
            not match the deterministic recomputation — the audit
            property the acceptance tests and CI enforce.
    """
    replay = slo_from_ledger(events, config=config)
    if not replay.consistent:
        raise ValueError(
            "slo audit failed: ledger records "
            f"{len(replay.recorded)} alert transitions but replay "
            f"computed {len(replay.computed)} (or payloads differ)"
        )
    return replay
