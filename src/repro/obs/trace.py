"""Hierarchical tracing spans with a context-manager API.

:class:`Observer` is the single object threaded through the
injection/campaign/worker stack. It owns the configured sinks and the
optional metrics registry, tracks the current span stack, and emits
:class:`~repro.obs.events.TraceEvent` records when spans close::

    observer = Observer(sinks=[JsonlSink("trace.jsonl")])
    with observer.span(SPAN_TRIAL, key="17", attrs={"cell": "heap"}) as sp:
        ...  # do the work
        sp.set(outcome="crash")

Zero cost when disabled
-----------------------
``NULL_OBSERVER`` (no sinks, no metrics) is the default everywhere. Its
``span()`` returns a shared no-op context manager and ``point()``
returns immediately — no :class:`TraceEvent` (or any other per-call
object) is allocated on the hot path, so an untraced campaign pays only
a method call per would-be span.

Determinism
-----------
Span *paths* are derived purely from campaign-grid identity (see
:mod:`repro.obs.events`); tracing never draws from any RNG stream and
never reorders work, so a traced run's vulnerability profile is
byte-identical to an untraced run's. Wall times and pids are recorded
as observational attributes only.

Worker relay
------------
Parallel workers trace into an in-memory buffer rooted at their cell's
path (``root_path``); the buffered events ride back to the parent
inside :class:`~repro.exec.parallel.ShardResult` and are replayed into
the parent observer's sinks in canonical campaign order, so serial and
parallel runs produce equivalent traces (same span paths and counts).
"""

from __future__ import annotations

import os
import time
from typing import Iterable, List, Optional, Sequence

from repro.obs.events import KIND_POINT, KIND_SPAN, TraceEvent
from repro.obs.instruments import CampaignInstruments
from repro.obs.metrics import MetricsRegistry

__all__ = ["Observer", "Span", "NULL_OBSERVER"]


class _NoopSpan:
    """Shared do-nothing span returned by disabled observers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Ignore attributes (observer is disabled)."""


_NOOP_SPAN = _NoopSpan()


class Span:
    """One live span; emits a ``span`` event when the ``with`` block exits."""

    __slots__ = (
        "_observer", "name", "key", "attrs", "path", "parent",
        "_start_wall", "_start_perf",
    )

    def __init__(
        self,
        observer: "Observer",
        name: str,
        key: Optional[str],
        attrs: Optional[dict],
    ) -> None:
        self._observer = observer
        self.name = name
        self.key = key
        self.attrs = dict(attrs) if attrs else {}

    def set(self, **attrs) -> None:
        """Attach (or overwrite) outcome attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        observer = self._observer
        self.parent = observer.current_path()
        base = f"{self.parent}/{self.name}" if self.parent else self.name
        self.path = f"{base}:{self.key}" if self.key is not None else base
        observer._stack.append(self.path)
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_perf
        observer = self._observer
        observer._stack.pop()
        if exc_type is not None:
            # Record the failure mode but let the exception propagate.
            self.attrs.setdefault("error", exc_type.__name__)
        observer.emit(
            TraceEvent(
                kind=KIND_SPAN,
                name=self.name,
                path=self.path,
                parent=self.parent,
                ts=self._start_wall,
                duration_seconds=duration,
                pid=os.getpid(),
                attrs=self.attrs,
            )
        )
        return False


class Observer:
    """Sinks + metrics + the current span stack (single-threaded)."""

    def __init__(
        self,
        sinks: Optional[Sequence] = None,
        metrics: Optional[MetricsRegistry] = None,
        root_path: str = "",
    ) -> None:
        self.sinks: List = list(sinks) if sinks else []
        self.metrics = metrics
        self.root_path = root_path
        self._stack: List[str] = []
        self._instruments: Optional[CampaignInstruments] = (
            CampaignInstruments(metrics) if metrics is not None else None
        )

    @property
    def enabled(self) -> bool:
        """Whether any sink or metrics registry is configured."""
        return bool(self.sinks) or self.metrics is not None

    @property
    def instruments(self) -> Optional[CampaignInstruments]:
        """The campaign instruments, when a metrics registry is attached.

        Exposed for directly-recorded aggregates (e.g. memory fast-path
        deltas folded at cell boundaries) that do not flow through the
        event stream.
        """
        return self._instruments

    def current_path(self) -> str:
        """Path of the innermost open span (or the relay root path)."""
        return self._stack[-1] if self._stack else self.root_path

    def span(
        self, name: str, key: Optional[str] = None, attrs: Optional[dict] = None
    ):
        """Open a child span of the current span (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, key, attrs)

    def point(self, name: str, attrs: Optional[dict] = None) -> None:
        """Emit an instantaneous event under the current span."""
        if not self.enabled:
            return
        parent = self.current_path()
        path = f"{parent}/{name}" if parent else name
        self.emit(
            TraceEvent(
                kind=KIND_POINT,
                name=name,
                path=path,
                parent=parent,
                ts=time.time(),
                duration_seconds=None,
                pid=os.getpid(),
                attrs=dict(attrs) if attrs else {},
            )
        )

    def emit(self, event: TraceEvent) -> None:
        """Deliver one event to every sink and the metrics instruments."""
        for sink in self.sinks:
            sink.write(event)
        if self._instruments is not None:
            self._instruments.update(event)

    def replay(self, events: Iterable[TraceEvent]) -> None:
        """Re-emit buffered events (parallel merge / vectorized batches).

        Sinks receive the events one by one in order, but the metrics
        instruments are updated once for the whole batch
        (:meth:`CampaignInstruments.update_batch`) — one registry touch
        per aggregate instead of per trial, which is what keeps
        instrument overhead off the vectorized hot path. The registry
        end-state is identical to per-event emission.
        """
        events = list(events)
        for event in events:
            for sink in self.sinks:
                sink.write(event)
        if self._instruments is not None:
            self._instruments.update_batch(events)

    def close(self) -> None:
        """Close every sink that supports it."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


#: The default, disabled observer: safe to share (it never mutates).
NULL_OBSERVER = Observer()
