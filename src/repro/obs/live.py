"""Embedded HTTP observability server (the live telemetry plane).

A stdlib-only asyncio HTTP/1.1 server a serve session (or any long-
running campaign) hosts on its own event loop to expose runtime state:

====================  =====================================================
Endpoint              Payload
====================  =====================================================
``GET /metrics``      Prometheus text exposition of the session registry.
``GET /healthz``      ``ok`` while the process is up (liveness).
``GET /readyz``       ``ready`` once the session loop is running, 503
                      before that (readiness).
``GET /status``       JSON per-tenant snapshot published at each tick
                      barrier: backlog, shedding, availability, latency
                      quantiles, retirement budget, policy counts.
``GET /slo``          JSON burn rates + alert states from the SLO engine.
``GET /ledger/tail``  Chunked stream of ledger JSONL lines as they are
                      appended (``?from=SEQ`` to skip history); the
                      stream ends when the session completes.
``POST /quitz``       Ask the host to stop lingering and exit cleanly.
====================  =====================================================

Determinism: handlers only *read* shared state; the session publishes
an immutable snapshot at each tick barrier. Nothing an HTTP client does
can reorder ledger writes or perturb the seeded arrival process, so a
scraped session still produces a byte-identical ledger.

Requests are parsed with ``asyncio.StreamReader.readuntil`` and
answered with ``Connection: close`` (one request per connection — these
are scrape endpoints, not a web framework). ``port=0`` binds an
ephemeral port, exposed via :attr:`ObservabilityServer.port` after
:meth:`~ObservabilityServer.start`.

:class:`BackgroundTelemetryServer` wraps the same server in a daemon
thread with its own event loop for synchronous hosts (long
``characterize`` campaigns) that have no loop of their own.

Layering: this module must not import :mod:`repro.serve` — snapshots
arrive as plain dicts from whoever hosts the server.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine

__all__ = ["BackgroundTelemetryServer", "ObservabilityServer"]

_MAX_REQUEST_BYTES = 65536
_SERVER_NAME = "repro-obs"


class ObservabilityServer:
    """Asyncio HTTP server exposing a session's telemetry surfaces."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        slo: Optional[SloEngine] = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.requested_port = port
        self.slo = slo
        #: Set by ``POST /quitz`` — hosts use it to cut linger short.
        self.quit_event = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = False
        self._complete = False
        self._snapshot: Dict[str, object] = {}
        self._ledger_lines: List[str] = []
        self._new_lines = asyncio.Condition()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("observability server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.requested_port
        )

    @property
    def started(self) -> bool:
        """True once :meth:`start` has bound the listening socket."""
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("observability server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        """Stop accepting connections and release tail streams."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.mark_complete()

    def mark_ready(self) -> None:
        """Flip ``/readyz`` to 200 (the session loop is running)."""
        self._ready = True

    async def mark_complete(self) -> None:
        """Tell tail streams the ledger is final (ends ``/ledger/tail``)."""
        self._complete = True
        async with self._new_lines:
            self._new_lines.notify_all()

    # ------------------------------------------------------------------
    # Publishing (called by the host at each tick barrier)
    # ------------------------------------------------------------------
    async def publish(
        self,
        snapshot: Optional[Dict[str, object]] = None,
        ledger_lines: Optional[List[str]] = None,
    ) -> None:
        """Publish a new ``/status`` snapshot and/or fresh ledger lines."""
        if snapshot is not None:
            self._snapshot = snapshot
        if ledger_lines:
            self._ledger_lines.extend(ledger_lines)
            async with self._new_lines:
                self._new_lines.notify_all()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target = await self._read_request(reader)
            await self._dispatch(method, target, writer)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ValueError,
            ConnectionError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str]:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=10.0
        )
        if len(head) > _MAX_REQUEST_BYTES:
            raise ValueError("request too large")
        request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"bad request line: {request_line!r}")
        method, target, _version = parts
        return method.upper(), target

    async def _dispatch(
        self, method: str, target: str, writer: asyncio.StreamWriter
    ) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if method == "POST" and path == "/quitz":
            self.quit_event.set()
            await _respond(writer, 200, "text/plain", "bye\n")
        elif method != "GET":
            await _respond(writer, 405, "text/plain", "method not allowed\n")
        elif path == "/metrics":
            await _respond(
                writer,
                200,
                "text/plain; version=0.0.4",
                self.registry.render_prometheus(),
            )
        elif path == "/healthz":
            await _respond(writer, 200, "text/plain", "ok\n")
        elif path == "/readyz":
            if self._ready:
                await _respond(writer, 200, "text/plain", "ready\n")
            else:
                await _respond(writer, 503, "text/plain", "starting\n")
        elif path == "/status":
            await _respond_json(writer, self._snapshot)
        elif path == "/slo":
            payload = self.slo.to_dict() if self.slo is not None else {}
            await _respond_json(writer, payload)
        elif path == "/ledger/tail":
            start = int(query.get("from", ["0"])[0])
            await self._stream_ledger(writer, max(0, start))
        else:
            await _respond(writer, 404, "text/plain", "not found\n")

    async def _stream_ledger(
        self, writer: asyncio.StreamWriter, start: int
    ) -> None:
        """Chunked-transfer stream of ledger lines from ``start`` on.

        Sends everything already appended, then blocks on the tick-
        barrier condition for fresh lines until the session completes.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Server: " + _SERVER_NAME.encode() + b"\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        cursor = start
        while True:
            lines = self._ledger_lines[cursor:]
            cursor += len(lines)
            if lines:
                body = ("".join(line + "\n" for line in lines)).encode("utf-8")
                writer.write(f"{len(body):x}\r\n".encode("ascii"))
                writer.write(body)
                writer.write(b"\r\n")
                await writer.drain()
            if self._complete and cursor >= len(self._ledger_lines):
                break
            async with self._new_lines:
                if cursor >= len(self._ledger_lines) and not self._complete:
                    await self._new_lines.wait()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


async def _respond(
    writer: asyncio.StreamWriter, status: int, content_type: str, body: str
) -> None:
    reasons = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
               503: "Service Unavailable"}
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Server: {_SERVER_NAME}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()


async def _respond_json(writer: asyncio.StreamWriter, payload: object) -> None:
    await _respond(
        writer,
        200,
        "application/json",
        json.dumps(payload, sort_keys=True) + "\n",
    )


class BackgroundTelemetryServer:
    """Host an :class:`ObservabilityServer` from synchronous code.

    Spins a daemon thread running its own event loop; ``publish`` and
    the lifecycle methods marshal onto that loop with
    ``run_coroutine_threadsafe``. For long synchronous campaigns that
    want a scrape endpoint without adopting asyncio themselves.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        slo: Optional[SloEngine] = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-obs-http", daemon=True
        )
        self._registry = registry
        self._host = host
        self._port = port
        self._slo = slo
        self.server: Optional[ObservabilityServer] = None

    def start(self) -> "BackgroundTelemetryServer":
        """Start the thread, loop, and HTTP server; returns self."""
        self._thread.start()

        async def _boot() -> ObservabilityServer:
            server = ObservabilityServer(
                self._registry, host=self._host, port=self._port, slo=self._slo
            )
            await server.start()
            server.mark_ready()
            return server

        self.server = asyncio.run_coroutine_threadsafe(
            _boot(), self._loop
        ).result(timeout=10.0)
        return self

    @property
    def port(self) -> int:
        """The bound port."""
        if self.server is None:
            raise RuntimeError("background telemetry server not started")
        return self.server.port

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        if self.server is None:
            raise RuntimeError("background telemetry server not started")
        return self.server.url

    def publish(
        self,
        snapshot: Optional[Dict[str, object]] = None,
        ledger_lines: Optional[List[str]] = None,
    ) -> None:
        """Thread-safe snapshot/ledger publish."""
        if self.server is None:
            raise RuntimeError("background telemetry server not started")
        asyncio.run_coroutine_threadsafe(
            self.server.publish(snapshot=snapshot, ledger_lines=ledger_lines),
            self._loop,
        ).result(timeout=10.0)

    def stop(self) -> None:
        """Stop the server, loop, and thread (idempotent)."""
        if self.server is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=10.0)
            self.server = None
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop.close()

    def __enter__(self) -> "BackgroundTelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
