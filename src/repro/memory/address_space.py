"""Byte-addressable simulated application address space.

This module is the load-bearing substitution of the reproduction (see
DESIGN.md): instead of flipping bits in a native process with a debugger
as the paper does, the workloads serialize *all* of their state into an
:class:`AddressSpace`, and the error-injection framework flips bits in it
directly. Because application control data (offsets, lengths, counts)
lives in the same simulated bytes as payload data, injected errors
propagate exactly as in the paper's taxonomy — masked by overwrite,
masked by logic, incorrect output, or crash (via
:class:`~repro.memory.errors.SegmentationFault` and friends).

Facilities provided:

* region-mapped reads/writes with guard-gap fault semantics,
* typed accessors (``read_u32``, ``write_f64``, ...),
* a logical clock that advances on every access (used for safe-ratio and
  recoverability analyses),
* soft bit flips and stuck-at hard faults (:mod:`repro.memory.faults`),
* software watchpoints equivalent to the paper's ``awatch`` usage,
* per-region access counters and optional per-page write tracking,
* snapshot/restore for fast campaign trial resets.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.memory.errors import ProtectionFault, SegmentationFault
from repro.memory.faults import FaultKind, FaultLog, HardFaultOverlay, InjectedFault
from repro.memory.regions import (
    PAGE_SIZE,
    MemoryLayout,
    Region,
    RegionSpec,
)

#: Signature of a watchpoint callback: (addr, is_store, byte_value, time).
WatchCallback = Callable[[int, bool, int, int], None]

_STRUCT_F32 = struct.Struct("<f")
_STRUCT_F64 = struct.Struct("<d")


class MemorySnapshot:
    """Opaque snapshot of an address space's contents and clock.

    Captures raw memory and the logical clock but *not* injected faults,
    watchpoints, or access statistics — restoring a snapshot models
    restarting the application with pristine data (step 1 of the paper's
    Figure 2 loop), after which fresh faults are injected.
    """

    __slots__ = ("mem", "time")

    def __init__(self, mem: bytes, time: int) -> None:
        self.mem = mem
        self.time = time


class AddressSpace:
    """A simulated process address space with fault-injection support."""

    def __init__(self, layout: MemoryLayout) -> None:
        self._layout = layout
        self._size = layout.total_size
        self._mem = bytearray(self._size)
        self.regions: List[Region] = layout.regions
        # Coarse page -> region-index map for O(1) bounds/region checks.
        page_map = [-1] * ((self._size + PAGE_SIZE - 1) // PAGE_SIZE)
        for region in self.regions:
            for page in range(region.base // PAGE_SIZE, region.end // PAGE_SIZE):
                page_map[page] = region.index
        self._page_map = page_map
        self._time = 0
        # Per-region access counters (bytes loaded / stored, access counts).
        n = len(self.regions)
        self._load_bytes = [0] * n
        self._store_bytes = [0] * n
        self._load_ops = [0] * n
        self._store_ops = [0] * n
        # Fault machinery.
        self._overlay = HardFaultOverlay()
        self.fault_log = FaultLog()
        # Watchpoints: addr -> list of callbacks.
        self._watchpoints: Dict[int, List[WatchCallback]] = {}
        # Disturbance couplings: aggressor addr -> [(victim, bit, prob, rng)].
        self._disturbances: Dict[int, List] = {}
        # Consumption tracking for injected fault addresses (used by the
        # outcome taxonomy): addr -> [reads_before_overwrite, overwritten].
        self._tracked_faults: Dict[int, List[int]] = {}
        # Optional per-page write tracking for recoverability analysis.
        self._page_write_tracking = False
        self._page_write_counts: Dict[int, int] = {}
        self._page_last_write: Dict[int, int] = {}
        self._page_first_write: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total span of the address space including guard gaps."""
        return self._size

    @property
    def layout(self) -> MemoryLayout:
        """The layout this space was built from."""
        return self._layout

    @property
    def time(self) -> int:
        """Current logical time (advances by 1 per access)."""
        return self._time

    def advance_time(self, units: int) -> None:
        """Advance the logical clock, e.g. to model think time between queries."""
        if units < 0:
            raise ValueError(f"time units must be non-negative, got {units}")
        self._time += units

    def region_named(self, name: str) -> Region:
        """Return the region called ``name`` (KeyError if absent)."""
        return self._layout.region_named(name)

    def region_at(self, addr: int) -> Optional[Region]:
        """Return the region containing ``addr``, or None for guard gaps."""
        if 0 <= addr < self._size:
            index = self._page_map[addr // PAGE_SIZE]
            if index >= 0:
                return self.regions[index]
        return None

    def mapped_ranges(self) -> List[Tuple[int, int]]:
        """Return (base, end) for every mapped region, in address order."""
        return [(region.base, region.end) for region in self.regions]

    # ------------------------------------------------------------------
    # Checked access path (what applications use)
    # ------------------------------------------------------------------
    def _region_index_for(self, addr: int, n: int) -> int:
        """Validate an access and return its region index.

        Raises:
            SegmentationFault: for unmapped, out-of-bounds, or
                region-straddling accesses.
        """
        if n <= 0:
            raise SegmentationFault(addr, n, "non-positive access size")
        end = addr + n - 1
        if addr < 0 or end >= self._size:
            raise SegmentationFault(addr, n, "address out of bounds")
        index = self._page_map[addr // PAGE_SIZE]
        if index < 0:
            raise SegmentationFault(addr, n, "unmapped address")
        region = self.regions[index]
        if end >= region.end:
            raise SegmentationFault(addr, n, "access crosses region boundary")
        return index

    def read(self, addr: int, n: int) -> bytes:
        """Load ``n`` bytes from ``addr`` with full fault/watch semantics."""
        index = self._region_index_for(addr, n)
        self._time += 1
        self._load_ops[index] += 1
        self._load_bytes[index] += n
        data = bytes(self._mem[addr : addr + n])
        if self._overlay:
            data = self._apply_overlay(addr, data)
        if self._tracked_faults:
            self._note_tracked(addr, n, is_store=False)
        if self._disturbances:
            self._fire_disturbances(addr, n)
        if self._watchpoints:
            self._fire_watchpoints(addr, data, is_store=False)
        return data

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr`` with full fault/watch semantics.

        Raises:
            ProtectionFault: if the target region is frozen.
        """
        n = len(data)
        index = self._region_index_for(addr, n)
        region = self.regions[index]
        if region.frozen:
            raise ProtectionFault(addr, region.name)
        self._time += 1
        self._store_ops[index] += 1
        self._store_bytes[index] += n
        self._mem[addr : addr + n] = data
        if self._tracked_faults:
            self._note_tracked(addr, n, is_store=True)
        if self._page_write_tracking:
            self._note_page_writes(addr, n)
        if self._watchpoints:
            self._fire_watchpoints(addr, data, is_store=True)

    def _apply_overlay(self, addr: int, data: bytes) -> bytes:
        end = addr + len(data)
        patched: Optional[bytearray] = None
        for fault_addr in self._overlay.faulty_addresses():
            if addr <= fault_addr < end:
                if patched is None:
                    patched = bytearray(data)
                offset = fault_addr - addr
                patched[offset] = self._overlay.apply(fault_addr, patched[offset])
        return bytes(patched) if patched is not None else data

    def _note_tracked(self, addr: int, n: int, is_store: bool) -> None:
        end = addr + n
        for fault_addr, state in self._tracked_faults.items():
            if addr <= fault_addr < end:
                if is_store:
                    state[1] = 1
                elif not state[1]:
                    state[0] += 1

    def _note_page_writes(self, addr: int, n: int) -> None:
        now = self._time
        for page in range(addr // PAGE_SIZE, (addr + n - 1) // PAGE_SIZE + 1):
            self._page_write_counts[page] = self._page_write_counts.get(page, 0) + 1
            self._page_last_write[page] = now
            if page not in self._page_first_write:
                self._page_first_write[page] = now

    def _fire_disturbances(self, addr: int, n: int) -> None:
        end = addr + n
        for aggressor, couplings in self._disturbances.items():
            if addr <= aggressor < end:
                for coupling in couplings:
                    victim, bit, probability, rng = coupling
                    if rng.random() < probability:
                        self._mem[victim] ^= 1 << bit
                        fault = InjectedFault(
                            addr=victim,
                            bit=bit,
                            kind=FaultKind.DISTURBANCE,
                            stuck_value=(self._mem[victim] >> bit) & 1,
                            injected_at=self._time,
                        )
                        self.fault_log.record(fault)
                        self._tracked_faults.setdefault(victim, [0, 0])

    def _fire_watchpoints(self, addr: int, data: bytes, is_store: bool) -> None:
        now = self._time
        watchpoints = self._watchpoints
        for offset, byte in enumerate(data):
            callbacks = watchpoints.get(addr + offset)
            if callbacks:
                for callback in callbacks:
                    callback(addr + offset, is_store, byte, now)

    # ------------------------------------------------------------------
    # Typed accessors
    # ------------------------------------------------------------------
    def read_u8(self, addr: int) -> int:
        """Load one unsigned byte."""
        return self.read(addr, 1)[0]

    def read_u16(self, addr: int) -> int:
        """Load an unsigned little-endian 16-bit integer."""
        return int.from_bytes(self.read(addr, 2), "little")

    def read_u32(self, addr: int) -> int:
        """Load an unsigned little-endian 32-bit integer."""
        return int.from_bytes(self.read(addr, 4), "little")

    def read_u64(self, addr: int) -> int:
        """Load an unsigned little-endian 64-bit integer."""
        return int.from_bytes(self.read(addr, 8), "little")

    def read_i32(self, addr: int) -> int:
        """Load a signed little-endian 32-bit integer."""
        return int.from_bytes(self.read(addr, 4), "little", signed=True)

    def read_f32(self, addr: int) -> float:
        """Load a little-endian IEEE-754 single."""
        return _STRUCT_F32.unpack(self.read(addr, 4))[0]

    def read_f64(self, addr: int) -> float:
        """Load a little-endian IEEE-754 double."""
        return _STRUCT_F64.unpack(self.read(addr, 8))[0]

    def write_u8(self, addr: int, value: int) -> None:
        """Store one unsigned byte."""
        self.write(addr, bytes(((value & 0xFF),)))

    def write_u16(self, addr: int, value: int) -> None:
        """Store an unsigned little-endian 16-bit integer."""
        self.write(addr, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, addr: int, value: int) -> None:
        """Store an unsigned little-endian 32-bit integer."""
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def write_u64(self, addr: int, value: int) -> None:
        """Store an unsigned little-endian 64-bit integer."""
        self.write(addr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def write_f32(self, addr: int, value: float) -> None:
        """Store a little-endian IEEE-754 single.

        Doubles beyond f32 range overflow to ±infinity, matching IEEE
        double→single conversion in hardware.
        """
        try:
            packed = _STRUCT_F32.pack(value)
        except (OverflowError, ValueError):
            packed = _STRUCT_F32.pack(
                float("inf") if value > 0 else float("-inf")
            )
        self.write(addr, packed)

    def write_f64(self, addr: int, value: float) -> None:
        """Store a little-endian IEEE-754 double."""
        self.write(addr, _STRUCT_F64.pack(value))

    # ------------------------------------------------------------------
    # Raw access path (hardware / framework side, bypasses all semantics)
    # ------------------------------------------------------------------
    def peek(self, addr: int, n: int = 1) -> bytes:
        """Read raw stored bytes without clock, counters, faults, or watchpoints.

        This is the debugger's-eye view used by the injector and by
        recovery code: it sees the *stored* value, before any stuck-at
        overlay is applied.
        """
        if addr < 0 or addr + n > self._size:
            raise SegmentationFault(addr, n, "peek out of bounds")
        return bytes(self._mem[addr : addr + n])

    def poke(self, addr: int, data: bytes) -> None:
        """Write raw bytes, ignoring frozen regions and watchpoints.

        Used by the injector (hardware errors do not respect page
        protection) and by software recovery (restoring a clean copy).
        """
        if addr < 0 or addr + len(data) > self._size:
            raise SegmentationFault(addr, len(data), "poke out of bounds")
        self._mem[addr : addr + len(data)] = data

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_soft_flip(self, addr: int, bit: int) -> InjectedFault:
        """Flip one stored bit (transient error), Algorithm 1(a) of the paper."""
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {bit}")
        if self.region_at(addr) is None:
            raise SegmentationFault(addr, 1, "soft-error injection at unmapped address")
        self._mem[addr] ^= 1 << bit
        fault = InjectedFault(
            addr=addr,
            bit=bit,
            kind=FaultKind.SOFT,
            stuck_value=(self._mem[addr] >> bit) & 1,
            injected_at=self._time,
        )
        self.fault_log.record(fault)
        self._tracked_faults.setdefault(addr, [0, 0])
        return fault

    def inject_hard_fault(self, addr: int, bit: int, stuck_value: Optional[int] = None) -> InjectedFault:
        """Install a stuck-at bit (recurring error).

        If ``stuck_value`` is None the bit is stuck at the *complement* of
        its current value, matching the paper's flip-and-reapply emulation.
        """
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {bit}")
        if self.region_at(addr) is None:
            raise SegmentationFault(addr, 1, "hard-error injection at unmapped address")
        if stuck_value is None:
            stuck_value = 1 - ((self._mem[addr] >> bit) & 1)
        self._overlay.add_stuck_bit(addr, bit, stuck_value)
        fault = InjectedFault(
            addr=addr,
            bit=bit,
            kind=FaultKind.HARD,
            stuck_value=stuck_value,
            injected_at=self._time,
        )
        self.fault_log.record(fault)
        self._tracked_faults.setdefault(addr, [0, 0])
        return fault

    def install_disturbance(
        self,
        aggressor_addr: int,
        victim_addr: int,
        bit: int,
        probability: float,
        rng,
    ) -> None:
        """Couple an aggressor and a victim cell (disturbance fault).

        Every *load* touching ``aggressor_addr`` flips ``bit`` of the
        byte at ``victim_addr`` with the given probability — the
        access-pattern-dependent failure mode (RowHammer-style
        disturbance, data-retention weakness under neighbouring
        activations) the paper's footnote 2 highlights. Flips are
        recorded in the fault log as :attr:`FaultKind.DISTURBANCE`.

        Raises:
            SegmentationFault: if either address is unmapped.
            ValueError: for an invalid bit index or probability.
        """
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {bit}")
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        for label, check_addr in (("aggressor", aggressor_addr), ("victim", victim_addr)):
            if self.region_at(check_addr) is None:
                raise SegmentationFault(
                    check_addr, 1, f"disturbance {label} at unmapped address"
                )
        self._disturbances.setdefault(aggressor_addr, []).append(
            (victim_addr, bit, probability, rng)
        )

    def clear_faults(self) -> None:
        """Remove all injected faults, their log, and consumption tracking."""
        self._overlay.clear()
        self.fault_log.clear()
        self._tracked_faults.clear()
        self._disturbances.clear()

    def fault_consumption(self, addr: int) -> Tuple[int, bool]:
        """Return (reads_before_overwrite, overwritten) for a fault address.

        Used by the taxonomy to distinguish *masked by overwrite* (never
        read before being overwritten) from *consumed* errors.

        Raises:
            KeyError: if no fault was injected at ``addr``.
        """
        state = self._tracked_faults[addr]
        return state[0], bool(state[1])

    def correct_value_of(self, addr: int) -> int:
        """Return the value the byte at ``addr`` *should* hold.

        For soft faults this is unknowable after the fact, so callers
        needing golden data must consult a snapshot or backing store; this
        helper simply exposes the stored byte without the hard-fault
        overlay, which is what a repair of the stuck cell would reveal.
        """
        return self._mem[addr]

    # ------------------------------------------------------------------
    # Region protection
    # ------------------------------------------------------------------
    def freeze_region(self, name: str) -> None:
        """Mark a region read-only (e.g. after building a file-mapped index)."""
        self.region_named(name).frozen = True

    def thaw_region(self, name: str) -> None:
        """Allow writes to a previously frozen region."""
        self.region_named(name).frozen = False

    # ------------------------------------------------------------------
    # Watchpoints
    # ------------------------------------------------------------------
    def add_watchpoint(self, addr: int, callback: WatchCallback) -> None:
        """Invoke ``callback`` on every load/store touching byte ``addr``.

        Equivalent to GDB's ``awatch`` used by the paper's monitoring
        framework (Algorithm 1(b)).
        """
        if self.region_at(addr) is None:
            raise SegmentationFault(addr, 1, "watchpoint at unmapped address")
        self._watchpoints.setdefault(addr, []).append(callback)

    def remove_watchpoint(self, addr: int, callback: WatchCallback) -> None:
        """Remove a previously registered watchpoint callback."""
        callbacks = self._watchpoints.get(addr)
        if not callbacks or callback not in callbacks:
            raise KeyError(f"no such watchpoint at 0x{addr:x}")
        callbacks.remove(callback)
        if not callbacks:
            del self._watchpoints[addr]

    def clear_watchpoints(self) -> None:
        """Remove all watchpoints."""
        self._watchpoints.clear()

    # ------------------------------------------------------------------
    # Access statistics
    # ------------------------------------------------------------------
    def access_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-region load/store counters since construction (or reset)."""
        stats: Dict[str, Dict[str, int]] = {}
        for region in self.regions:
            i = region.index
            stats[region.name] = {
                "load_ops": self._load_ops[i],
                "store_ops": self._store_ops[i],
                "load_bytes": self._load_bytes[i],
                "store_bytes": self._store_bytes[i],
            }
        return stats

    def reset_access_stats(self) -> None:
        """Zero all per-region counters and page write tracking."""
        n = len(self.regions)
        self._load_bytes = [0] * n
        self._store_bytes = [0] * n
        self._load_ops = [0] * n
        self._store_ops = [0] * n
        self._page_write_counts.clear()
        self._page_last_write.clear()
        self._page_first_write.clear()

    def enable_page_write_tracking(self) -> None:
        """Start recording per-page write counts and timestamps."""
        self._page_write_tracking = True

    def disable_page_write_tracking(self) -> None:
        """Stop recording per-page write statistics (data is retained)."""
        self._page_write_tracking = False

    def page_write_stats(self) -> Dict[int, Dict[str, int]]:
        """Return {page_index: {count, first_write, last_write}}."""
        return {
            page: {
                "count": count,
                "first_write": self._page_first_write[page],
                "last_write": self._page_last_write[page],
            }
            for page, count in self._page_write_counts.items()
        }

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> MemorySnapshot:
        """Capture memory contents + clock for later restoration."""
        return MemorySnapshot(bytes(self._mem), self._time)

    def restore(self, snap: MemorySnapshot) -> None:
        """Restore a snapshot: clears faults, keeps watchpoints/stats.

        Models an application restart with pristine data (Figure 2 step 1).
        """
        if len(snap.mem) != self._size:
            raise ValueError(
                f"snapshot size {len(snap.mem)} does not match space size {self._size}"
            )
        self._mem[:] = snap.mem
        self._time = snap.time
        self.clear_faults()


def build_address_space(specs: Sequence[RegionSpec]) -> AddressSpace:
    """Convenience constructor from a list of region specs."""
    return AddressSpace(MemoryLayout(list(specs)))
