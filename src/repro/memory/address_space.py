"""Byte-addressable simulated application address space.

This module is the load-bearing substitution of the reproduction (see
DESIGN.md): instead of flipping bits in a native process with a debugger
as the paper does, the workloads serialize *all* of their state into an
:class:`AddressSpace`, and the error-injection framework flips bits in it
directly. Because application control data (offsets, lengths, counts)
lives in the same simulated bytes as payload data, injected errors
propagate exactly as in the paper's taxonomy — masked by overwrite,
masked by logic, incorrect output, or crash (via
:class:`~repro.memory.errors.SegmentationFault` and friends).

Facilities provided:

* region-mapped reads/writes with guard-gap fault semantics,
* typed accessors (``read_u32``, ``write_f64``, ...),
* bulk array kernels (``read_array``, ``write_array``) with identical
  fault/region semantics and per-element accounting,
* a logical clock that advances on every access (used for safe-ratio and
  recoverability analyses),
* soft bit flips and stuck-at hard faults (:mod:`repro.memory.faults`),
* software watchpoints equivalent to the paper's ``awatch`` usage,
* per-region access counters and optional per-page write tracking,
* snapshot/restore for fast campaign trial resets, with page-granular
  dirty tracking so restores copy only what a trial touched.

Two access paths implement one semantics. The *checked* path
(`_read_guarded`/`_write_guarded`) is the scalar oracle: it validates,
advances the clock, updates counters, applies the hard-fault overlay,
and fires tracked-fault / disturbance / watchpoint hooks per access.
The *fast* path handles the overwhelmingly common case — a validated,
in-region access that overlaps no fault, watchpoint, or disturbance
aggressor (tracked via a single ``[_guard_lo, _guard_hi]`` interval) —
with the exact same clock/counter updates but none of the hook
dispatch. Any access the fast path cannot prove clean falls through to
the checked path, so results, exceptions, and side effects are
bit-identical by construction (enforced by the hypothesis equivalence
suite in ``tests/property/test_prop_fastpath.py``).
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.memory.errors import ProtectionFault, SegmentationFault
from repro.memory.fastpath import fastpath_enabled
from repro.memory.faults import FaultKind, FaultLog, HardFaultOverlay, InjectedFault
from repro.memory.regions import (
    PAGE_SIZE,
    MemoryLayout,
    Region,
    RegionSpec,
)

#: Signature of a watchpoint callback: (addr, is_store, byte_value, time).
WatchCallback = Callable[[int, bool, int, int], None]

_STRUCT_F32 = struct.Struct("<f")
_STRUCT_F64 = struct.Struct("<d")
_STRUCT_U16 = struct.Struct("<H")
_STRUCT_U32 = struct.Struct("<I")
_STRUCT_U64 = struct.Struct("<Q")
_STRUCT_I32 = struct.Struct("<i")
_STRUCT_U32X2 = struct.Struct("<II")

_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
assert 1 << _PAGE_SHIFT == PAGE_SIZE, "dirty tracking needs a power-of-two page"


class MemorySnapshot:
    """Opaque snapshot of an address space's contents and clock.

    Captures raw memory and the logical clock but *not* injected faults,
    watchpoints, or access statistics — restoring a snapshot models
    restarting the application with pristine data (step 1 of the paper's
    Figure 2 loop), after which fresh faults are injected.
    """

    __slots__ = ("mem", "time")

    def __init__(self, mem: bytes, time: int) -> None:
        self.mem = mem
        self.time = time


class AddressSpace:
    """A simulated process address space with fault-injection support."""

    def __init__(self, layout: MemoryLayout) -> None:
        self._layout = layout
        self._size = layout.total_size
        self._mem = bytearray(self._size)
        self.regions: List[Region] = layout.regions
        # Coarse page -> region-index map for O(1) bounds/region checks.
        page_map = [-1] * ((self._size + PAGE_SIZE - 1) // PAGE_SIZE)
        for region in self.regions:
            for page in range(region.base // PAGE_SIZE, region.end // PAGE_SIZE):
                page_map[page] = region.index
        self._page_map = page_map
        self._region_ends = [region.end for region in self.regions]
        self._time = 0
        # Per-region access counters (bytes loaded / stored, access counts).
        n = len(self.regions)
        self._load_bytes = [0] * n
        self._store_bytes = [0] * n
        self._load_ops = [0] * n
        self._store_ops = [0] * n
        # Fault machinery.
        self._overlay = HardFaultOverlay()
        self.fault_log = FaultLog()
        # Watchpoints: addr -> list of callbacks.
        self._watchpoints: Dict[int, List[WatchCallback]] = {}
        # Disturbance couplings: aggressor addr -> [(victim, bit, prob, rng)].
        self._disturbances: Dict[int, List] = {}
        # Consumption tracking for injected fault addresses (used by the
        # outcome taxonomy): addr -> [reads_before_overwrite, overwritten].
        self._tracked_faults: Dict[int, List[int]] = {}
        # Optional per-page write tracking for recoverability analysis.
        self._page_write_tracking = False
        self._page_write_counts: Dict[int, int] = {}
        self._page_last_write: Dict[int, int] = {}
        self._page_first_write: Dict[int, int] = {}
        # Fast path state. `_guard_lo/_guard_hi` bound every address that
        # needs per-access hook dispatch (faults, watchpoints, disturbance
        # aggressors); an access that does not overlap the interval is
        # provably clean. `_overlay_keys`/`_tracked_keys` are the sorted
        # fault addresses the checked path bisects instead of scanning.
        self._fast = fastpath_enabled()
        self._overlay_keys: List[int] = []
        self._tracked_keys: List[int] = []
        self._guard_lo = self._size + 1
        self._guard_hi = -1
        # Per-region content versions: bumped whenever a region's stored
        # bytes may have changed. Workload drivers key pristine-data
        # caches on these so a memcmp re-verification happens only after
        # an actual mutation, not per access.
        self._region_versions = [0] * n
        # Dirty pages since the last snapshot/restore of `_baseline`.
        self._baseline: Optional[MemorySnapshot] = None
        self._dirty_pages: Set[int] = set()
        self._fast_hits = 0
        self._fast_fallbacks = 0
        self._restores_full = 0
        self._restores_incremental = 0
        self._restore_bytes_copied = 0
        self._restore_bytes_saved = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total span of the address space including guard gaps."""
        return self._size

    @property
    def layout(self) -> MemoryLayout:
        """The layout this space was built from."""
        return self._layout

    @property
    def time(self) -> int:
        """Current logical time (advances by 1 per access)."""
        return self._time

    @property
    def fast_path_enabled(self) -> bool:
        """Whether this space uses the clean fast path for accesses."""
        return self._fast

    def set_fast_path(self, enabled: bool) -> None:
        """Pin this space to the fast path or the scalar oracle path.

        Semantics are identical either way; this exists for equivalence
        tests and benchmark baselines. Enabling drops any incremental
        restore baseline, so the next ``restore`` is a full copy.
        """
        enabled = bool(enabled)
        if enabled == self._fast:
            return
        self._fast = enabled
        self._baseline = None
        self._dirty_pages.clear()

    def fast_path_stats(self) -> Dict[str, int]:
        """Counters for fast-path hit rate and dirty-page restore savings.

        ``fast_accesses`` / ``checked_accesses`` partition every
        completed load/store by which path served it;
        ``restore_bytes_saved`` is the bytes an incremental restore did
        *not* have to copy versus a full-space copy.
        """
        return {
            "fast_accesses": self._fast_hits,
            "checked_accesses": self._fast_fallbacks,
            "restores_full": self._restores_full,
            "restores_incremental": self._restores_incremental,
            "restore_bytes_copied": self._restore_bytes_copied,
            "restore_bytes_saved": self._restore_bytes_saved,
        }

    def advance_time(self, units: int) -> None:
        """Advance the logical clock, e.g. to model think time between queries."""
        if units < 0:
            raise ValueError(f"time units must be non-negative, got {units}")
        self._time += units

    def region_named(self, name: str) -> Region:
        """Return the region called ``name`` (KeyError if absent)."""
        return self._layout.region_named(name)

    def region_at(self, addr: int) -> Optional[Region]:
        """Return the region containing ``addr``, or None for guard gaps."""
        if 0 <= addr < self._size:
            index = self._page_map[addr // PAGE_SIZE]
            if index >= 0:
                return self.regions[index]
        return None

    def mapped_ranges(self) -> List[Tuple[int, int]]:
        """Return (base, end) for every mapped region, in address order."""
        return [(region.base, region.end) for region in self.regions]

    # ------------------------------------------------------------------
    # Checked access path (the scalar oracle)
    # ------------------------------------------------------------------
    def _region_index_for(self, addr: int, n: int) -> int:
        """Validate an access and return its region index.

        Raises:
            SegmentationFault: for unmapped, out-of-bounds, or
                region-straddling accesses.
        """
        if n <= 0:
            raise SegmentationFault(addr, n, "non-positive access size")
        end = addr + n - 1
        if addr < 0 or end >= self._size:
            raise SegmentationFault(addr, n, "address out of bounds")
        index = self._page_map[addr // PAGE_SIZE]
        if index < 0:
            raise SegmentationFault(addr, n, "unmapped address")
        region = self.regions[index]
        if end >= region.end:
            raise SegmentationFault(addr, n, "access crosses region boundary")
        return index

    def _fast_index(self, addr: int, n: int) -> int:
        """Fast-path admission check: region index, or -1 to fall back.

        Accepts exactly the accesses the checked path would complete
        without touching a fault, watchpoint, or disturbance aggressor;
        everything else (including invalid accesses, which must raise
        with the oracle's exact exception) returns -1.
        """
        if addr < 0 or addr + n > self._size:
            return -1
        index = self._page_map[addr >> _PAGE_SHIFT]
        if index < 0 or addr + n > self._region_ends[index]:
            return -1
        if addr <= self._guard_hi and addr + n > self._guard_lo:
            return -1
        return index

    def read(self, addr: int, n: int) -> bytes:
        """Load ``n`` bytes from ``addr`` with full fault/watch semantics."""
        if self._fast and n > 0:
            index = self._fast_index(addr, n)
            if index >= 0:
                self._time += 1
                self._load_ops[index] += 1
                self._load_bytes[index] += n
                self._fast_hits += 1
                return bytes(self._mem[addr : addr + n])
        return self._read_guarded(addr, n)

    def _read_guarded(self, addr: int, n: int) -> bytes:
        index = self._region_index_for(addr, n)
        if self._fast:
            self._fast_fallbacks += 1
        self._time += 1
        self._load_ops[index] += 1
        self._load_bytes[index] += n
        data = bytes(self._mem[addr : addr + n])
        if self._overlay:
            data = self._apply_overlay(addr, data)
        if self._tracked_faults:
            self._note_tracked(addr, n, is_store=False)
        if self._disturbances:
            self._fire_disturbances(addr, n)
        if self._watchpoints:
            self._fire_watchpoints(addr, data, is_store=False)
        return data

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr`` with full fault/watch semantics.

        Raises:
            ProtectionFault: if the target region is frozen.
        """
        n = len(data)
        if self._fast and n > 0:
            index = self._fast_index(addr, n)
            if index >= 0 and not self.regions[index].frozen:
                if not self._page_write_tracking:
                    self._time += 1
                    self._store_ops[index] += 1
                    self._store_bytes[index] += n
                    self._mem[addr : addr + n] = data
                    self._mark_dirty(addr, n)
                    self._region_versions[index] += 1
                    self._fast_hits += 1
                    return
        self._write_guarded(addr, data)

    def _write_guarded(self, addr: int, data: bytes) -> None:
        n = len(data)
        index = self._region_index_for(addr, n)
        region = self.regions[index]
        if region.frozen:
            raise ProtectionFault(addr, region.name)
        if self._fast:
            self._fast_fallbacks += 1
        self._time += 1
        self._store_ops[index] += 1
        self._store_bytes[index] += n
        self._mem[addr : addr + n] = data
        self._region_versions[index] += 1
        if self._fast:
            self._mark_dirty(addr, n)
        if self._tracked_faults:
            self._note_tracked(addr, n, is_store=True)
        if self._page_write_tracking:
            self._note_page_writes(addr, n)
        if self._watchpoints:
            self._fire_watchpoints(addr, data, is_store=True)

    def _apply_overlay(self, addr: int, data: bytes) -> bytes:
        keys = self._overlay_keys
        end = addr + len(data)
        i = bisect_left(keys, addr)
        if i == len(keys) or keys[i] >= end:
            return data
        patched = bytearray(data)
        overlay = self._overlay
        total = len(keys)
        while i < total:
            fault_addr = keys[i]
            if fault_addr >= end:
                break
            offset = fault_addr - addr
            patched[offset] = overlay.apply(fault_addr, patched[offset])
            i += 1
        return bytes(patched)

    def _note_tracked(self, addr: int, n: int, is_store: bool) -> None:
        keys = self._tracked_keys
        end = addr + n
        i = bisect_left(keys, addr)
        tracked = self._tracked_faults
        total = len(keys)
        while i < total:
            fault_addr = keys[i]
            if fault_addr >= end:
                break
            state = tracked[fault_addr]
            if is_store:
                state[1] = 1
            elif not state[1]:
                state[0] += 1
            i += 1

    def _note_page_writes(self, addr: int, n: int) -> None:
        now = self._time
        for page in range(addr // PAGE_SIZE, (addr + n - 1) // PAGE_SIZE + 1):
            self._page_write_counts[page] = self._page_write_counts.get(page, 0) + 1
            self._page_last_write[page] = now
            if page not in self._page_first_write:
                self._page_first_write[page] = now

    def _fire_disturbances(self, addr: int, n: int) -> None:
        end = addr + n
        for aggressor, couplings in self._disturbances.items():
            if addr <= aggressor < end:
                for coupling in couplings:
                    victim, bit, probability, rng = coupling
                    if rng.random() < probability:
                        self._mem[victim] ^= 1 << bit
                        victim_region = self._page_map[victim >> _PAGE_SHIFT]
                        if victim_region >= 0:
                            self._region_versions[victim_region] += 1
                        if self._fast:
                            self._mark_dirty(victim, 1)
                        fault = InjectedFault(
                            addr=victim,
                            bit=bit,
                            kind=FaultKind.DISTURBANCE,
                            stuck_value=(self._mem[victim] >> bit) & 1,
                            injected_at=self._time,
                        )
                        self.fault_log.record(fault)
                        if victim not in self._tracked_faults:
                            self._tracked_faults[victim] = [0, 0]
                            self._refresh_guards()

    def _fire_watchpoints(self, addr: int, data: bytes, is_store: bool) -> None:
        now = self._time
        watchpoints = self._watchpoints
        for offset, byte in enumerate(data):
            callbacks = watchpoints.get(addr + offset)
            if callbacks:
                for callback in callbacks:
                    callback(addr + offset, is_store, byte, now)

    def _refresh_guards(self) -> None:
        """Rebuild sorted fault-key lists and the guarded-address interval."""
        self._overlay_keys = sorted(self._overlay.masks)
        self._tracked_keys = sorted(self._tracked_faults)
        lo: Optional[int] = None
        hi: Optional[int] = None
        for keys in (self._overlay_keys, self._tracked_keys):
            if keys:
                lo = keys[0] if lo is None else min(lo, keys[0])
                hi = keys[-1] if hi is None else max(hi, keys[-1])
        for addrs in (self._watchpoints, self._disturbances):
            if addrs:
                first = min(addrs)
                last = max(addrs)
                lo = first if lo is None else min(lo, first)
                hi = last if hi is None else max(hi, last)
        if lo is None:
            self._guard_lo = self._size + 1
            self._guard_hi = -1
        else:
            self._guard_lo = lo
            self._guard_hi = hi

    def _mark_dirty(self, addr: int, n: int) -> None:
        first = addr >> _PAGE_SHIFT
        last = (addr + n - 1) >> _PAGE_SHIFT
        if first == last:
            self._dirty_pages.add(first)
        else:
            self._dirty_pages.update(range(first, last + 1))

    def _bump_span_versions(self, addr: int, n: int) -> None:
        """Bump the content version of every region overlapping the span.

        Versions track *stored* bytes only: stuck-at overlays never touch
        stored memory (the guard interval already excludes them from any
        clean-span claim), so hard-fault installation does not bump.
        """
        page_map = self._page_map
        versions = self._region_versions
        previous = -1
        for page in range(addr >> _PAGE_SHIFT, ((addr + n - 1) >> _PAGE_SHIFT) + 1):
            index = page_map[page]
            if index >= 0 and index != previous:
                versions[index] += 1
                previous = index

    # ------------------------------------------------------------------
    # Clean-span fusion hooks (used by batched workload drivers)
    # ------------------------------------------------------------------
    def version_at(self, addr: int) -> int:
        """Content version of the region containing ``addr``.

        Bumped on every mutation of that region's stored bytes (stores,
        pokes, soft flips, disturbance flips, snapshot restores). Callers
        key caches of decoded pristine data on this counter so expensive
        re-verification only happens after an actual mutation.
        """
        index = self._page_map[addr >> _PAGE_SHIFT]
        if index < 0:
            raise SegmentationFault(addr, 1, "version query at unmapped address")
        return self._region_versions[index]

    def span_is_clean(self, addr: int, n: int) -> bool:
        """True when reads of ``[addr, addr+n)`` are provably unobserved.

        A clean span lies inside one region and intersects no stuck-at
        overlay, tracked fault, watchpoint, or disturbance aggressor, so a
        batch of loads from it returns stored bytes verbatim and has no
        side effects beyond clock/counter accounting (which callers settle
        separately via :meth:`charge_reads`). Always False in oracle mode.
        """
        return self._fast and n > 0 and self._fast_index(addr, n) >= 0

    def charge_reads(self, addr: int, ops: int, nbytes: int) -> None:
        """Account for ``ops`` fused loads totalling ``nbytes`` bytes.

        Settles the exact clock/counter debt of a batch of loads that a
        driver satisfied from a pristine-data cache instead of issuing
        individually. Only valid for spans vetted via :meth:`span_is_clean`
        (same region, no fault/watchpoint interaction), where deferred
        bulk accounting is observationally identical to per-access updates.
        """
        index = self._page_map[addr >> _PAGE_SHIFT]
        if index < 0:
            raise SegmentationFault(addr, 1, "charge at unmapped address")
        self._time += ops
        self._load_ops[index] += ops
        self._load_bytes[index] += nbytes
        self._fast_hits += ops

    @property
    def guard_interval_empty(self) -> bool:
        """True when no address needs per-access hook dispatch.

        An empty guard interval means no stuck-at overlay, tracked
        fault, watchpoint, or disturbance aggressor exists anywhere in
        the space — every access everywhere behaves as plain memory.
        The batched serve data plane uses this as its cheapest
        admission check before the version-keyed content comparison.
        """
        return self._guard_hi < self._guard_lo

    def region_versions(self) -> Tuple[int, ...]:
        """Current content version of every region, in region order.

        The whole-space analogue of :meth:`version_at`: an unchanged
        tuple proves stored bytes did not mutate since it was captured
        (overlay installs excepted, which never touch stored bytes), so
        callers can memoize whole-space comparisons on it.
        """
        return tuple(self._region_versions)

    def stored_bytes_equal(self, image) -> bool:
        """Whole-space comparison of stored bytes against ``image``.

        One NumPy memcmp over the raw storage (overlay *not* applied —
        pair with :attr:`guard_interval_empty` when observed bytes must
        match too). This is the batched data plane's pristine-run
        verification; key it on :meth:`region_versions` to skip re-runs.
        """
        if len(image) != self._size:
            return False
        return bool(
            np.array_equal(
                np.frombuffer(self._mem, dtype=np.uint8),
                np.frombuffer(image, dtype=np.uint8),
            )
        )

    def charge_recorded(
        self, time_units: int, per_region: Sequence[Sequence[int]]
    ) -> None:
        """Settle the exact clock/counter debt of a fused request run.

        ``per_region`` is aligned with :attr:`regions` order; each entry
        is ``(load_ops, load_bytes, store_ops, store_bytes)``. The
        batched data plane records these deltas during the golden
        replay and applies them here when a pristine run is served
        without execution, so clock and per-region counters end up
        byte-for-byte where live execution would have left them.
        """
        self._time += int(time_units)
        ops = 0
        for index, (lops, lbytes, sops, sbytes) in enumerate(per_region):
            if lops or lbytes:
                self._load_ops[index] += int(lops)
                self._load_bytes[index] += int(lbytes)
            if sops or sbytes:
                self._store_ops[index] += int(sops)
                self._store_bytes[index] += int(sbytes)
            ops += int(lops) + int(sops)
        self._fast_hits += ops

    def drain_dirty_pages(self) -> List[int]:
        """Return and clear the pages dirtied since the last drain.

        Recording hook for the batched data plane's golden replay: the
        caller drains after every query to learn which pages that query
        wrote, then hands the union back via :meth:`mark_pages_dirty`
        before restoring, so incremental restore still copies everything
        that diverged from the baseline. Only meaningful on the fast
        path (the slow path does not track dirty pages).
        """
        pages = sorted(self._dirty_pages)
        self._dirty_pages.clear()
        return pages

    def mark_pages_dirty(self, pages: Iterable[int]) -> None:
        """Re-add drained pages to the dirty set (see :meth:`drain_dirty_pages`)."""
        self._dirty_pages.update(pages)

    def guarded_addresses(self) -> Tuple[int, ...]:
        """Sorted addresses that need per-access hook dispatch.

        The union of stuck-at overlay bytes, tracked soft faults,
        watchpoints, and disturbance aggressors — exactly the bytes
        where an access can observe or cause something other than
        plain stored memory. The batched serve data plane fuses only
        requests whose recorded golden footprint avoids every page
        containing one of these addresses, and excuses only these
        addresses in :meth:`stored_bytes_equal_except`.
        """
        addrs = set(self._overlay.masks)
        addrs.update(self._tracked_faults)
        addrs.update(self._watchpoints)
        addrs.update(self._disturbances)
        return tuple(sorted(addrs))

    def soft_guard_addresses(self) -> Tuple[int, ...]:
        """Sorted tracked-fault, watchpoint, and disturbance addresses.

        The guarded addresses whose pages the batched data plane must
        always avoid: tracked soft flips corrupt reads, watchpoints
        have arbitrary callbacks, and disturbance aggressors flip
        victim bytes when touched. Stuck-at overlays are reported
        separately by :meth:`hard_fault_silence` because a *silent*
        overlay (masks that fix the current stored byte) is
        observationally absent for reads.
        """
        addrs = set(self._tracked_faults)
        addrs.update(self._watchpoints)
        addrs.update(self._disturbances)
        return tuple(sorted(addrs))

    def tracked_addresses(self) -> Tuple[int, ...]:
        """Sorted tracked soft-fault addresses — the only bytes whose
        *stored* value legitimately differs from a pristine image (a
        soft flip XORs storage in place; overlays, watchpoints, and
        disturbance aggressors never mutate stored bytes)."""
        return tuple(sorted(self._tracked_faults))

    def hard_fault_silence(self) -> Tuple[Tuple[int, bool], ...]:
        """Per stuck-at overlay byte: ``(addr, silent)``, sorted.

        ``silent`` means applying the overlay masks to the *current*
        stored byte returns it unchanged — every read of that byte
        observes plain memory. The batched data plane may fuse reads
        of a silent overlay byte provided nothing writes the page (a
        store could change the stored byte and wake the fault).
        """
        out = []
        for addr in sorted(self._overlay.masks):
            and_mask, or_mask = self._overlay.masks[addr]
            byte = self._mem[addr]
            out.append((addr, ((byte & and_mask) | or_mask) == byte))
        return tuple(out)

    def stored_bytes_equal_except(self, image, allowed: Sequence[int]) -> bool:
        """Whole-space comparison of stored bytes, excusing ``allowed``.

        True when stored memory matches ``image`` at every address not
        in ``allowed`` (a sorted sequence). Used by the batched data
        plane with ``allowed = guarded_addresses()``: stuck-at overlays
        never mutate stored bytes and tracked soft flips mutate only
        their own byte, so memory that matches the golden image outside
        those addresses behaves identically to golden for any access
        that stays off the guarded pages.
        """
        if len(image) != self._size:
            return False
        mine = np.frombuffer(self._mem, dtype=np.uint8)
        theirs = np.frombuffer(image, dtype=np.uint8)
        diff = np.flatnonzero(mine != theirs)
        if diff.size == 0:
            return True
        if not allowed:
            return False
        allowed_arr = np.asarray(allowed, dtype=np.int64)
        slots = np.searchsorted(allowed_arr, diff)
        in_bounds = slots < allowed_arr.size
        return bool(
            np.all(in_bounds)
            and np.all(allowed_arr[slots[in_bounds]] == diff[in_bounds])
        )

    def begin_access_capture(self) -> None:
        """Start recording the page footprint of every validated access.

        Shadows the two admission chokepoints (:meth:`_fast_index` and
        :meth:`_region_index_for`) with wrappers that note the touched
        pages — every load and store, typed or raw, fast or guarded,
        validates through one of them — and forces
        :meth:`span_is_clean` to False so drivers take their live path
        and their reads are observed. Instance-attribute shadowing
        keeps the production hot path completely untouched outside
        recording. Not reentrant; pair with :meth:`end_access_capture`.
        """
        pages: set = set()
        self._capture_pages = pages
        fast_index = type(self)._fast_index.__get__(self)
        region_index_for = type(self)._region_index_for.__get__(self)

        def capturing_fast_index(addr: int, n: int) -> int:
            if n > 0:
                pages.update(
                    range(addr >> _PAGE_SHIFT, ((addr + n - 1) >> _PAGE_SHIFT) + 1)
                )
            return fast_index(addr, n)

        def capturing_region_index_for(addr: int, n: int) -> int:
            index = region_index_for(addr, n)
            pages.update(
                range(addr >> _PAGE_SHIFT, ((addr + n - 1) >> _PAGE_SHIFT) + 1)
            )
            return index

        self._fast_index = capturing_fast_index  # type: ignore[method-assign]
        self._region_index_for = capturing_region_index_for  # type: ignore[method-assign]
        self.span_is_clean = lambda addr, n: False  # type: ignore[method-assign]

    def end_access_capture(self) -> List[int]:
        """Stop recording and return the sorted pages touched since begin."""
        del self._fast_index
        del self._region_index_for
        del self.span_is_clean
        pages = sorted(self._capture_pages)
        del self._capture_pages
        return pages

    # ------------------------------------------------------------------
    # Byte-granular access tracing (trial-pruning golden replay)
    # ------------------------------------------------------------------
    def begin_access_trace(self) -> None:
        """Start recording the byte-granular read/write footprint.

        The trial-pruning pre-classifier needs, for every byte, whether
        its *first* access was a load or a store and whether it was ever
        loaded at all. Tracing therefore requires the oracle path: with
        the fast path pinned off, every load and store — typed, raw, or
        bulk (which decomposes per element in oracle mode) — funnels
        through :meth:`_read_guarded` / :meth:`_write_guarded`, and
        ``span_is_clean`` is always False so drivers take their live
        path. Both chokepoints are shadowed with recording wrappers via
        the same instance-attribute pattern as
        :meth:`begin_access_capture`. Not reentrant; pair with
        :meth:`end_access_trace`, which also rolls the clock and
        per-region counters back so the traced replay is invisible to
        accounting.
        """
        if self._fast:
            raise RuntimeError(
                "access tracing requires the oracle path; "
                "call set_fast_path(False) first"
            )
        first = bytearray(self._size)  # 0 never, 1 read-first, 2 write-first
        read_seen = bytearray(self._size)
        self._trace_first = first
        self._trace_read_seen = read_seen
        self._trace_saved = (
            self._time,
            list(self._load_ops),
            list(self._load_bytes),
            list(self._store_ops),
            list(self._store_bytes),
        )
        read_guarded = type(self)._read_guarded.__get__(self)
        write_guarded = type(self)._write_guarded.__get__(self)

        def tracing_read_guarded(addr: int, n: int) -> bytes:
            data = read_guarded(addr, n)
            for a in range(addr, addr + n):
                if not first[a]:
                    first[a] = 1
                read_seen[a] = 1
            return data

        def tracing_write_guarded(addr: int, data: bytes) -> None:
            write_guarded(addr, data)
            for a in range(addr, addr + len(data)):
                if not first[a]:
                    first[a] = 2

        self._read_guarded = tracing_read_guarded  # type: ignore[method-assign]
        self._write_guarded = tracing_write_guarded  # type: ignore[method-assign]

    def end_access_trace(self) -> Dict[str, object]:
        """Stop tracing; return the footprint and undo the accounting.

        Returns a dict with ``first_access`` / ``read_seen`` (uint8
        arrays, one slot per byte of the space), ``end_time`` (the
        absolute logical time the traced run finished at), and
        ``per_region`` — ``(load_ops, load_bytes, store_ops,
        store_bytes)`` deltas in region order. The clock and per-region
        counters are rolled back to their values at
        :meth:`begin_access_trace`, so recording a golden replay leaves
        ``access_stats()`` untouched (memory contents are the caller's
        to restore, typically via a workload reset).
        """
        del self._read_guarded
        del self._write_guarded
        first = self._trace_first
        read_seen = self._trace_read_seen
        del self._trace_first
        del self._trace_read_seen
        saved_time, lops, lbytes, sops, sbytes = self._trace_saved
        del self._trace_saved
        end_time = self._time
        per_region = tuple(
            (
                self._load_ops[i] - lops[i],
                self._load_bytes[i] - lbytes[i],
                self._store_ops[i] - sops[i],
                self._store_bytes[i] - sbytes[i],
            )
            for i in range(len(self.regions))
        )
        self._time = saved_time
        self._load_ops = lops
        self._load_bytes = lbytes
        self._store_ops = sops
        self._store_bytes = sbytes
        return {
            "first_access": np.frombuffer(bytes(first), dtype=np.uint8),
            "read_seen": np.frombuffer(bytes(read_seen), dtype=np.uint8),
            "end_time": end_time,
            "per_region": per_region,
        }

    def settle_recorded_trial(
        self, end_time: int, per_region: Sequence[Sequence[int]]
    ) -> None:
        """Settle the exact accounting of one analytically resolved trial.

        A pruned trial's execution is provably byte-identical to the
        golden replay, so its clock and counter effects are known without
        running it: the per-region deltas recorded by the golden trace
        are added and the clock is *set* to the replay's absolute end
        time (every trial starts from the same snapshot restore, so the
        end time is an absolute, idempotent fact — correct after any
        interleaving of pruned and executed trials). The skipped
        accesses are credited to the fast path, like
        :meth:`charge_recorded`.
        """
        ops = 0
        for index, (lops, lbytes, sops, sbytes) in enumerate(per_region):
            if lops or lbytes:
                self._load_ops[index] += int(lops)
                self._load_bytes[index] += int(lbytes)
            if sops or sbytes:
                self._store_ops[index] += int(sops)
                self._store_bytes[index] += int(sbytes)
            ops += int(lops) + int(sops)
        self._fast_hits += ops
        self._time = int(end_time)
        self._fast_hits += ops

    # ------------------------------------------------------------------
    # Typed accessors
    # ------------------------------------------------------------------
    def read_u8(self, addr: int) -> int:
        """Load one unsigned byte."""
        if self._fast:
            index = self._fast_index(addr, 1)
            if index >= 0:
                self._time += 1
                self._load_ops[index] += 1
                self._load_bytes[index] += 1
                self._fast_hits += 1
                return self._mem[addr]
        return self._read_guarded(addr, 1)[0]

    def read_u16(self, addr: int) -> int:
        """Load an unsigned little-endian 16-bit integer."""
        if self._fast:
            index = self._fast_index(addr, 2)
            if index >= 0:
                self._time += 1
                self._load_ops[index] += 1
                self._load_bytes[index] += 2
                self._fast_hits += 1
                return _STRUCT_U16.unpack_from(self._mem, addr)[0]
        return int.from_bytes(self._read_guarded(addr, 2), "little")

    def read_u32(self, addr: int) -> int:
        """Load an unsigned little-endian 32-bit integer."""
        if self._fast:
            index = self._fast_index(addr, 4)
            if index >= 0:
                self._time += 1
                self._load_ops[index] += 1
                self._load_bytes[index] += 4
                self._fast_hits += 1
                return _STRUCT_U32.unpack_from(self._mem, addr)[0]
        return int.from_bytes(self._read_guarded(addr, 4), "little")

    def read_u64(self, addr: int) -> int:
        """Load an unsigned little-endian 64-bit integer."""
        if self._fast:
            index = self._fast_index(addr, 8)
            if index >= 0:
                self._time += 1
                self._load_ops[index] += 1
                self._load_bytes[index] += 8
                self._fast_hits += 1
                return _STRUCT_U64.unpack_from(self._mem, addr)[0]
        return int.from_bytes(self._read_guarded(addr, 8), "little")

    def read_i32(self, addr: int) -> int:
        """Load a signed little-endian 32-bit integer."""
        if self._fast:
            index = self._fast_index(addr, 4)
            if index >= 0:
                self._time += 1
                self._load_ops[index] += 1
                self._load_bytes[index] += 4
                self._fast_hits += 1
                return _STRUCT_I32.unpack_from(self._mem, addr)[0]
        return int.from_bytes(self._read_guarded(addr, 4), "little", signed=True)

    def read_f32(self, addr: int) -> float:
        """Load a little-endian IEEE-754 single."""
        if self._fast:
            index = self._fast_index(addr, 4)
            if index >= 0:
                self._time += 1
                self._load_ops[index] += 1
                self._load_bytes[index] += 4
                self._fast_hits += 1
                return _STRUCT_F32.unpack_from(self._mem, addr)[0]
        return _STRUCT_F32.unpack(self._read_guarded(addr, 4))[0]

    def read_f64(self, addr: int) -> float:
        """Load a little-endian IEEE-754 double."""
        if self._fast:
            index = self._fast_index(addr, 8)
            if index >= 0:
                self._time += 1
                self._load_ops[index] += 1
                self._load_bytes[index] += 8
                self._fast_hits += 1
                return _STRUCT_F64.unpack_from(self._mem, addr)[0]
        return _STRUCT_F64.unpack(self._read_guarded(addr, 8))[0]

    def read_u32_pair(self, addr: int) -> Tuple[int, int]:
        """Load two consecutive u32s, fused into one bounds/guard check.

        Semantically identical to ``(read_u32(addr), read_u32(addr+4))``
        — two clock ticks, two load ops, eight load bytes — but a single
        dispatch on the fast path. Any case the fused check cannot admit
        (straddle, guard overlap, oracle mode) decomposes into the two
        scalar loads, preserving exception identity and hook order.
        """
        if self._fast:
            index = self._fast_index(addr, 8)
            if index >= 0:
                self._time += 2
                self._load_ops[index] += 2
                self._load_bytes[index] += 8
                self._fast_hits += 2
                return _STRUCT_U32X2.unpack_from(self._mem, addr)
        return (
            int.from_bytes(self.read(addr, 4), "little"),
            int.from_bytes(self.read(addr + 4, 4), "little"),
        )

    def write_u8(self, addr: int, value: int) -> None:
        """Store one unsigned byte."""
        self.write(addr, bytes(((value & 0xFF),)))

    def write_u16(self, addr: int, value: int) -> None:
        """Store an unsigned little-endian 16-bit integer."""
        self.write(addr, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, addr: int, value: int) -> None:
        """Store an unsigned little-endian 32-bit integer."""
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def write_u64(self, addr: int, value: int) -> None:
        """Store an unsigned little-endian 64-bit integer."""
        self.write(addr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def write_f32(self, addr: int, value: float) -> None:
        """Store a little-endian IEEE-754 single.

        Doubles beyond f32 range overflow to ±infinity, matching IEEE
        double→single conversion in hardware.
        """
        try:
            packed = _STRUCT_F32.pack(value)
        except (OverflowError, ValueError):
            packed = _STRUCT_F32.pack(
                float("inf") if value > 0 else float("-inf")
            )
        self.write(addr, packed)

    def write_f64(self, addr: int, value: float) -> None:
        """Store a little-endian IEEE-754 double."""
        self.write(addr, _STRUCT_F64.pack(value))

    # ------------------------------------------------------------------
    # Bulk array kernels
    # ------------------------------------------------------------------
    def read_array(self, addr: int, count: int, dtype: str = "<u4") -> np.ndarray:
        """Load ``count`` elements of ``dtype`` starting at ``addr``.

        Semantically identical to ``count`` consecutive element-sized
        loads in ascending address order — ``count`` clock ticks,
        ``count`` load ops, ``count * itemsize`` load bytes, identical
        fault/overlay/watchpoint behaviour and exceptions — but a single
        dispatch and one buffer copy on the fast path. ``count == 0``
        performs no access (an empty loop) and returns an empty array.
        Accepts any NumPy dtype string, including void records such as
        ``"V5"`` for raw fixed-width slots. The returned array owns its
        data (it never aliases simulated memory).
        """
        dt = np.dtype(dtype)
        if count < 0:
            raise ValueError(f"element count must be non-negative, got {count}")
        width = dt.itemsize
        total = count * width
        if count == 0:
            return np.frombuffer(b"", dtype=dt)
        if self._fast:
            index = self._fast_index(addr, total)
            if index >= 0:
                self._time += count
                self._load_ops[index] += count
                self._load_bytes[index] += total
                self._fast_hits += count
                return np.frombuffer(
                    bytes(self._mem[addr : addr + total]), dtype=dt
                )
        data = b"".join(
            self.read(addr + i * width, width) for i in range(count)
        )
        return np.frombuffer(data, dtype=dt)

    def write_array(self, addr: int, values: np.ndarray) -> None:
        """Store a 1-D array's elements starting at ``addr``.

        Semantically identical to one element-sized store per entry in
        ascending address order (little-endian byte images), with the
        matching per-element accounting; fused into a single dispatch
        and one buffer copy when the whole span is provably clean.
        """
        arr = np.ascontiguousarray(values)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
        width = arr.dtype.itemsize
        count = arr.size
        total = count * width
        if count == 0:
            return
        if self._fast and not self._page_write_tracking:
            index = self._fast_index(addr, total)
            if index >= 0 and not self.regions[index].frozen:
                self._time += count
                self._store_ops[index] += count
                self._store_bytes[index] += total
                self._mem[addr : addr + total] = arr.tobytes()
                self._mark_dirty(addr, total)
                self._region_versions[index] += 1
                self._fast_hits += count
                return
        raw = arr.tobytes()
        for i in range(count):
            self.write(addr + i * width, raw[i * width : (i + 1) * width])

    def read_block_array(self, addr: int, count: int, dtype: str = "<u4") -> np.ndarray:
        """Decode one block load of ``count * itemsize`` bytes as an array.

        Semantically identical to ``read(addr, count * itemsize)`` — a
        *single* access on the clock and counters — followed by a NumPy
        decode; the block-read counterpart of :meth:`read_array`.
        """
        dt = np.dtype(dtype)
        return np.frombuffer(self.read(addr, count * dt.itemsize), dtype=dt)

    # ------------------------------------------------------------------
    # Raw access path (hardware / framework side, bypasses all semantics)
    # ------------------------------------------------------------------
    def peek(self, addr: int, n: int = 1) -> bytes:
        """Read raw stored bytes without clock, counters, faults, or watchpoints.

        This is the debugger's-eye view used by the injector and by
        recovery code: it sees the *stored* value, before any stuck-at
        overlay is applied.
        """
        if addr < 0 or addr + n > self._size:
            raise SegmentationFault(addr, n, "peek out of bounds")
        return bytes(self._mem[addr : addr + n])

    def poke(self, addr: int, data: bytes) -> None:
        """Write raw bytes, ignoring frozen regions and watchpoints.

        Used by the injector (hardware errors do not respect page
        protection) and by software recovery (restoring a clean copy).
        """
        if addr < 0 or addr + len(data) > self._size:
            raise SegmentationFault(addr, len(data), "poke out of bounds")
        self._mem[addr : addr + len(data)] = data
        if data:
            self._bump_span_versions(addr, len(data))
            if self._fast:
                self._mark_dirty(addr, len(data))

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_soft_flip(self, addr: int, bit: int) -> InjectedFault:
        """Flip one stored bit (transient error), Algorithm 1(a) of the paper."""
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {bit}")
        if self.region_at(addr) is None:
            raise SegmentationFault(addr, 1, "soft-error injection at unmapped address")
        self._mem[addr] ^= 1 << bit
        self._bump_span_versions(addr, 1)
        if self._fast:
            self._mark_dirty(addr, 1)
        fault = InjectedFault(
            addr=addr,
            bit=bit,
            kind=FaultKind.SOFT,
            stuck_value=(self._mem[addr] >> bit) & 1,
            injected_at=self._time,
        )
        self.fault_log.record(fault)
        self._tracked_faults.setdefault(addr, [0, 0])
        self._refresh_guards()
        return fault

    def inject_hard_fault(self, addr: int, bit: int, stuck_value: Optional[int] = None) -> InjectedFault:
        """Install a stuck-at bit (recurring error).

        If ``stuck_value`` is None the bit is stuck at the *complement* of
        its current value, matching the paper's flip-and-reapply emulation.
        """
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {bit}")
        if self.region_at(addr) is None:
            raise SegmentationFault(addr, 1, "hard-error injection at unmapped address")
        if stuck_value is None:
            stuck_value = 1 - ((self._mem[addr] >> bit) & 1)
        self._overlay.add_stuck_bit(addr, bit, stuck_value)
        fault = InjectedFault(
            addr=addr,
            bit=bit,
            kind=FaultKind.HARD,
            stuck_value=stuck_value,
            injected_at=self._time,
        )
        self.fault_log.record(fault)
        self._tracked_faults.setdefault(addr, [0, 0])
        self._refresh_guards()
        return fault

    def track_virtual_fault(self, addr: int, bit: int, kind: FaultKind) -> InjectedFault:
        """Track a hardware-corrected fault without corrupting memory.

        Models an error landing in a word whose region codec transparently
        corrects it (SEC-DED and stronger): stored bytes and the overlay
        are untouched, so every read observes golden data, but the fault
        is logged and its consumption tracked exactly like a real one —
        a read before the first overwrite classifies as corrected-consume
        (masked by logic), an overwrite first as masked-by-overwrite.
        Cleared by :meth:`restore` / :meth:`clear_faults` like any fault.
        """
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {bit}")
        if self.region_at(addr) is None:
            raise SegmentationFault(
                addr, 1, "virtual-fault tracking at unmapped address"
            )
        fault = InjectedFault(
            addr=addr,
            bit=bit,
            kind=kind,
            stuck_value=(self._mem[addr] >> bit) & 1,
            injected_at=self._time,
        )
        self.fault_log.record(fault)
        self._tracked_faults.setdefault(addr, [0, 0])
        self._refresh_guards()
        return fault

    def install_disturbance(
        self,
        aggressor_addr: int,
        victim_addr: int,
        bit: int,
        probability: float,
        rng,
    ) -> None:
        """Couple an aggressor and a victim cell (disturbance fault).

        Every *load* touching ``aggressor_addr`` flips ``bit`` of the
        byte at ``victim_addr`` with the given probability — the
        access-pattern-dependent failure mode (RowHammer-style
        disturbance, data-retention weakness under neighbouring
        activations) the paper's footnote 2 highlights. Flips are
        recorded in the fault log as :attr:`FaultKind.DISTURBANCE`.

        Raises:
            SegmentationFault: if either address is unmapped.
            ValueError: for an invalid bit index or probability.
        """
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {bit}")
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        for label, check_addr in (("aggressor", aggressor_addr), ("victim", victim_addr)):
            if self.region_at(check_addr) is None:
                raise SegmentationFault(
                    check_addr, 1, f"disturbance {label} at unmapped address"
                )
        self._disturbances.setdefault(aggressor_addr, []).append(
            (victim_addr, bit, probability, rng)
        )
        self._refresh_guards()

    def clear_faults(self) -> None:
        """Remove all injected faults, their log, and consumption tracking."""
        self._overlay.clear()
        self.fault_log.clear()
        self._tracked_faults.clear()
        self._disturbances.clear()
        self._refresh_guards()

    def clear_faults_in_range(self, addr: int, n: int) -> int:
        """Neutralize resident faults in ``[addr, addr+n)``; returns count.

        Models repair actions that decommission physical cells — page
        retirement migrating data off a faulty page, a rank being mapped
        out — after which the stuck-at overlay and consumption tracking
        for those addresses no longer apply. Stored bytes and the fault
        log (history) are untouched; callers restore clean contents
        separately (:meth:`poke` / :class:`~repro.memory.persistence.RegionBacking`).
        """
        if n <= 0:
            return 0
        end = addr + n
        cleared = 0
        for fault_addr in [a for a in self._overlay.masks if addr <= a < end]:
            del self._overlay.masks[fault_addr]
            cleared += 1
        for fault_addr in [a for a in self._tracked_faults if addr <= a < end]:
            del self._tracked_faults[fault_addr]
        self._refresh_guards()
        return cleared

    def fault_consumption(self, addr: int) -> Tuple[int, bool]:
        """Return (reads_before_overwrite, overwritten) for a fault address.

        Used by the taxonomy to distinguish *masked by overwrite* (never
        read before being overwritten) from *consumed* errors.

        Raises:
            KeyError: if no fault was injected at ``addr``.
        """
        state = self._tracked_faults[addr]
        return state[0], bool(state[1])

    def correct_value_of(self, addr: int) -> int:
        """Return the value the byte at ``addr`` *should* hold.

        For soft faults this is unknowable after the fact, so callers
        needing golden data must consult a snapshot or backing store; this
        helper simply exposes the stored byte without the hard-fault
        overlay, which is what a repair of the stuck cell would reveal.
        """
        return self._mem[addr]

    # ------------------------------------------------------------------
    # Region protection
    # ------------------------------------------------------------------
    def freeze_region(self, name: str) -> None:
        """Mark a region read-only (e.g. after building a file-mapped index)."""
        self.region_named(name).frozen = True

    def thaw_region(self, name: str) -> None:
        """Allow writes to a previously frozen region."""
        self.region_named(name).frozen = False

    # ------------------------------------------------------------------
    # Watchpoints
    # ------------------------------------------------------------------
    def add_watchpoint(self, addr: int, callback: WatchCallback) -> None:
        """Invoke ``callback`` on every load/store touching byte ``addr``.

        Equivalent to GDB's ``awatch`` used by the paper's monitoring
        framework (Algorithm 1(b)).
        """
        if self.region_at(addr) is None:
            raise SegmentationFault(addr, 1, "watchpoint at unmapped address")
        self._watchpoints.setdefault(addr, []).append(callback)
        self._refresh_guards()

    def remove_watchpoint(self, addr: int, callback: WatchCallback) -> None:
        """Remove a previously registered watchpoint callback."""
        callbacks = self._watchpoints.get(addr)
        if not callbacks or callback not in callbacks:
            raise KeyError(f"no such watchpoint at 0x{addr:x}")
        callbacks.remove(callback)
        if not callbacks:
            del self._watchpoints[addr]
        self._refresh_guards()

    def clear_watchpoints(self) -> None:
        """Remove all watchpoints."""
        self._watchpoints.clear()
        self._refresh_guards()

    # ------------------------------------------------------------------
    # Access statistics
    # ------------------------------------------------------------------
    def access_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-region load/store counters since construction (or reset)."""
        stats: Dict[str, Dict[str, int]] = {}
        for region in self.regions:
            i = region.index
            stats[region.name] = {
                "load_ops": self._load_ops[i],
                "store_ops": self._store_ops[i],
                "load_bytes": self._load_bytes[i],
                "store_bytes": self._store_bytes[i],
            }
        return stats

    def reset_access_stats(self) -> None:
        """Zero all per-region counters and page write tracking."""
        n = len(self.regions)
        self._load_bytes = [0] * n
        self._store_bytes = [0] * n
        self._load_ops = [0] * n
        self._store_ops = [0] * n
        self._page_write_counts.clear()
        self._page_last_write.clear()
        self._page_first_write.clear()

    def enable_page_write_tracking(self) -> None:
        """Start recording per-page write counts and timestamps."""
        self._page_write_tracking = True

    def disable_page_write_tracking(self) -> None:
        """Stop recording per-page write statistics (data is retained)."""
        self._page_write_tracking = False

    def page_write_stats(self) -> Dict[int, Dict[str, int]]:
        """Return {page_index: {count, first_write, last_write}}."""
        return {
            page: {
                "count": count,
                "first_write": self._page_first_write[page],
                "last_write": self._page_last_write[page],
            }
            for page, count in self._page_write_counts.items()
        }

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> MemorySnapshot:
        """Capture memory contents + clock for later restoration.

        On the fast path the snapshot becomes the dirty-tracking
        baseline: subsequent restores of *this* snapshot copy only the
        pages written since.
        """
        snap = MemorySnapshot(bytes(self._mem), self._time)
        if self._fast:
            self._baseline = snap
            self._dirty_pages.clear()
        return snap

    def restore(self, snap: MemorySnapshot) -> None:
        """Restore a snapshot: clears faults, keeps watchpoints/stats.

        Models an application restart with pristine data (Figure 2 step 1).
        Restoring the current baseline snapshot copies only dirty pages;
        restoring any other snapshot falls back to a full copy and makes
        that snapshot the new baseline.
        """
        if len(snap.mem) != self._size:
            raise ValueError(
                f"snapshot size {len(snap.mem)} does not match space size {self._size}"
            )
        if self._fast and snap is self._baseline:
            copied = 0
            if self._dirty_pages:
                destination = np.frombuffer(self._mem, dtype=np.uint8)
                source = np.frombuffer(snap.mem, dtype=np.uint8)
                pages = sorted(self._dirty_pages)
                run_start = previous = pages[0]
                for page in pages[1:]:
                    if page != previous + 1:
                        copied += self._copy_page_run(
                            destination, source, run_start, previous
                        )
                        run_start = page
                    previous = page
                copied += self._copy_page_run(
                    destination, source, run_start, previous
                )
            self._restores_incremental += 1
            self._restore_bytes_copied += copied
            self._restore_bytes_saved += self._size - copied
        else:
            self._mem[:] = snap.mem
            self._restores_full += 1
            self._restore_bytes_copied += self._size
            for index in range(len(self._region_versions)):
                self._region_versions[index] += 1
            if self._fast:
                self._baseline = snap
        self._dirty_pages.clear()
        self._time = snap.time
        self.clear_faults()

    def _copy_page_run(
        self,
        destination: np.ndarray,
        source: np.ndarray,
        first_page: int,
        last_page: int,
    ) -> int:
        start = first_page << _PAGE_SHIFT
        end = min((last_page + 1) << _PAGE_SHIFT, self._size)
        destination[start:end] = source[start:end]
        self._bump_span_versions(start, end - start)
        return end - start


def build_address_space(specs: Sequence[RegionSpec]) -> AddressSpace:
    """Convenience constructor from a list of region specs."""
    return AddressSpace(MemoryLayout(list(specs)))
