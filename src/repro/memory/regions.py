"""Logical memory regions of an application address space.

The paper (Table 2) partitions an application's data into *private*
(pre-allocated, user-managed, e.g. ``VirtualAlloc``/``mmap``), *heap*
(dynamically allocated), *stack* (function parameters and locals), and
*other* (code, managed heap). The characterization methodology and the
heterogeneous-reliability mapping both operate at this granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.memory.errors import LayoutError

#: Default page size used for page-granularity analyses (region retirement,
#: recoverability, page→region lookup). Matches the ~4 KB granularity the
#: paper cites for page retirement.
PAGE_SIZE = 4096


class RegionKind(enum.Enum):
    """The paper's Table 2 region taxonomy."""

    PRIVATE = "private"
    HEAP = "heap"
    STACK = "stack"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class RegionSpec:
    """Declarative description of a region used to build an address space.

    Attributes:
        name: Unique region name (e.g. ``"private"``).
        kind: The Table 2 classification of the region.
        size: Region size in bytes; rounded up to a page multiple.
        file_backed: Whether a clean copy of the region's initial contents
            exists in simulated persistent storage (enables *implicit*
            recoverability per paper §III-C).
    """

    name: str
    kind: RegionKind
    size: int
    file_backed: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise LayoutError(f"region '{self.name}' must have positive size")
        # Round up to a whole number of pages so page-level analyses are exact.
        remainder = self.size % PAGE_SIZE
        if remainder:
            self.size += PAGE_SIZE - remainder


@dataclass
class Region:
    """A mapped region inside an :class:`AddressSpace`.

    Attributes:
        name: Unique region name.
        kind: Region classification.
        base: First valid address of the region.
        size: Size in bytes (page multiple).
        file_backed: Whether the initial contents have a persistent copy.
        frozen: Whether application writes are rejected (read-only mapping).
        index: Dense region id assigned by the address space.
    """

    name: str
    kind: RegionKind
    base: int
    size: int
    file_backed: bool = False
    frozen: bool = False
    index: int = -1

    @property
    def end(self) -> int:
        """One past the last valid address."""
        return self.base + self.size

    @property
    def page_count(self) -> int:
        """Number of pages spanned by the region."""
        return self.size // PAGE_SIZE

    def contains(self, addr: int) -> bool:
        """Return True if ``addr`` lies within the region."""
        return self.base <= addr < self.end

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Region({self.name}/{self.kind.value}: "
            f"0x{self.base:x}-0x{self.end:x}, {self.size} B)"
        )


@dataclass
class MemoryLayout:
    """Computes region placement with guard gaps between regions.

    Guard gaps ensure that a corrupted pointer that walks off the end of a
    region faults (as it would with real unmapped pages) instead of
    silently reading a neighbouring region.
    """

    specs: List[RegionSpec]
    guard_pages: int = 1
    null_guard_pages: int = 1

    regions: List[Region] = field(init=False, default_factory=list)
    total_size: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not self.specs:
            raise LayoutError("layout requires at least one region")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise LayoutError(f"duplicate region names in layout: {names}")
        if self.guard_pages < 0 or self.null_guard_pages < 0:
            raise LayoutError("guard page counts must be non-negative")
        cursor = self.null_guard_pages * PAGE_SIZE
        for index, spec in enumerate(self.specs):
            region = Region(
                name=spec.name,
                kind=spec.kind,
                base=cursor,
                size=spec.size,
                file_backed=spec.file_backed,
                index=index,
            )
            self.regions.append(region)
            cursor = region.end + self.guard_pages * PAGE_SIZE
        self.total_size = cursor

    def region_named(self, name: str) -> Region:
        """Return the region called ``name``.

        Raises:
            KeyError: if no region has that name.
        """
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named '{name}'")

    def regions_of_kind(self, kind: RegionKind) -> List[Region]:
        """Return all regions of classification ``kind``."""
        return [region for region in self.regions if region.kind is kind]


def standard_layout(
    private_size: int = 0,
    heap_size: int = 0,
    stack_size: int = 0,
    other_size: int = 0,
    private_file_backed: bool = True,
) -> MemoryLayout:
    """Build the canonical private/heap/stack layout used by the workloads.

    Regions with zero size are omitted (e.g. Memcached and GraphLab have no
    private region in Table 3).
    """
    specs: List[RegionSpec] = []
    if private_size:
        specs.append(
            RegionSpec(
                "private",
                RegionKind.PRIVATE,
                private_size,
                file_backed=private_file_backed,
            )
        )
    if heap_size:
        specs.append(RegionSpec("heap", RegionKind.HEAP, heap_size))
    if stack_size:
        specs.append(RegionSpec("stack", RegionKind.STACK, stack_size))
    if other_size:
        specs.append(RegionSpec("other", RegionKind.OTHER, other_size))
    if not specs:
        raise LayoutError("standard_layout requires at least one non-zero region")
    return MemoryLayout(specs)


def region_kind_from_string(value: str) -> RegionKind:
    """Parse a region kind from a string, case-insensitively."""
    try:
        return RegionKind(value.lower())
    except ValueError as exc:
        valid = ", ".join(kind.value for kind in RegionKind)
        raise ValueError(f"unknown region kind '{value}' (expected one of {valid})") from exc
