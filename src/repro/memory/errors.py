"""Exception types raised by the simulated memory subsystem.

These play the role of hardware traps in the real system: an application
running on the simulated :class:`~repro.memory.address_space.AddressSpace`
that dereferences a corrupted offset receives a
:class:`SegmentationFault`, which the workload harness interprets as an
application crash (outcome 2.3 in the paper's Figure 1 taxonomy).
"""

from __future__ import annotations


class SimulatedMemoryError(Exception):
    """Base class for all simulated-memory faults and misuse errors."""


class SegmentationFault(SimulatedMemoryError):
    """Access to an unmapped or out-of-bounds simulated address."""

    def __init__(self, addr: int, size: int, reason: str = "unmapped address"):
        self.addr = addr
        self.size = size
        super().__init__(f"segmentation fault: {reason} at 0x{addr:x} (+{size})")


class ProtectionFault(SimulatedMemoryError):
    """Write to a frozen (read-only) region, e.g. a file-mapped index."""

    def __init__(self, addr: int, region_name: str):
        self.addr = addr
        self.region_name = region_name
        super().__init__(
            f"protection fault: write to read-only region '{region_name}' "
            f"at 0x{addr:x}"
        )


class AllocationError(SimulatedMemoryError):
    """The heap allocator could not satisfy a request."""


class HeapCorruptionError(SimulatedMemoryError):
    """Allocator metadata stored in simulated memory failed validation.

    This is the analogue of glibc's ``malloc(): corrupted`` abort — a bit
    flip landing in a block header is detected when the block is freed or
    reallocated, and takes the application down.
    """

    def __init__(self, addr: int, detail: str):
        self.addr = addr
        super().__init__(f"heap corruption at 0x{addr:x}: {detail}")


class StackOverflowError(SimulatedMemoryError):
    """The simulated stack region ran out of space."""


class LayoutError(SimulatedMemoryError):
    """Invalid region layout (overlap, bad size, duplicate name)."""
