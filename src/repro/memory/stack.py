"""Simulated call-stack manager.

The paper's stack region holds "function parameters and local variables"
that are "frequently expanded and discarded whenever new functions are
called or returned from" (Finding 4), giving the stack a high safe ratio
(errors are usually masked by frame re-initialization) but a *high crash
probability when an error is consumed*, because stack data is dense with
control values.

Workloads model this by pushing a :class:`StackFrame` per query or per
operation, writing locals into it, and popping it afterwards. Frames are
(optionally) re-zeroed on push, which is what overwrites — and therefore
masks — lingering soft errors.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.address_space import AddressSpace
from repro.memory.errors import SegmentationFault, StackOverflowError
from repro.memory.regions import Region


class StackFrame:
    """One frame: a slice of the stack region with typed local slots."""

    def __init__(self, space: AddressSpace, base: int, size: int) -> None:
        self._space = space
        self.base = base
        self.size = size

    def slot(self, offset: int) -> int:
        """Address of a local at byte ``offset`` within the frame.

        Raises:
            SegmentationFault: if the offset lies outside the frame — a
                data-dependent wild frame offset behaves like the stack
                smash it models, not like a Python bug.
        """
        if not 0 <= offset < self.size:
            raise SegmentationFault(
                self.base + offset, 1, "frame-relative access outside frame"
            )
        return self.base + offset


class StackManager:
    """Downward-growing stack over a region, one frame per active call."""

    def __init__(
        self, space: AddressSpace, region: Region, zero_on_push: bool = True
    ) -> None:
        self._space = space
        self._region = region
        self._zero_on_push = zero_on_push
        self._top = region.end  # grows downward, like x86
        self._frames: List[StackFrame] = []
        self._max_depth = 0

    @property
    def region(self) -> Region:
        """The stack region being managed."""
        return self._region

    @property
    def depth(self) -> int:
        """Number of active frames."""
        return len(self._frames)

    @property
    def max_depth(self) -> int:
        """Deepest nesting observed."""
        return self._max_depth

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied by active frames."""
        return self._region.end - self._top

    def push(self, size: int) -> StackFrame:
        """Push a frame of ``size`` bytes and return it.

        Raises:
            StackOverflowError: if the region is exhausted.
            ValueError: for a non-positive size.
        """
        if size <= 0:
            raise ValueError(f"frame size must be positive, got {size}")
        aligned = (size + 7) // 8 * 8
        new_top = self._top - aligned
        if new_top < self._region.base:
            raise StackOverflowError(
                f"stack overflow: frame of {aligned} B exceeds remaining "
                f"{self._top - self._region.base} B"
            )
        frame = StackFrame(self._space, new_top, aligned)
        self._top = new_top
        self._frames.append(frame)
        self._max_depth = max(self._max_depth, len(self._frames))
        if self._zero_on_push:
            # Frame initialization overwrites stale data — this is the
            # mechanism behind the stack's high safe ratio in Finding 4.
            self._space.write(frame.base, bytes(aligned))
        return frame

    def pop(self) -> None:
        """Pop the most recent frame.

        Raises:
            IndexError: if the stack is empty.
        """
        if not self._frames:
            raise IndexError("pop from empty simulated stack")
        frame = self._frames.pop()
        self._top = frame.base + frame.size

    def current_frame(self) -> Optional[StackFrame]:
        """Return the innermost active frame, or None."""
        return self._frames[-1] if self._frames else None
