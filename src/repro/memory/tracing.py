"""Access-trace recording built on top of watchpoints.

The paper's Algorithm 1(b) attaches a hardware watchpoint to a sampled
address and logs ``(value, load-or-store, time)`` on every access. The
:class:`AccessTrace` here is the software equivalent: it accumulates
:class:`AccessEvent` records that the safe-ratio and recoverability
analyses (:mod:`repro.core.safe_ratio`, :mod:`repro.monitoring`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.memory.address_space import AddressSpace


@dataclass(frozen=True)
class AccessEvent:
    """One observed access to a watched byte."""

    addr: int
    is_store: bool
    value: int
    time: int

    @property
    def kind(self) -> str:
        """``"store"`` or ``"load"`` — convenient for display and filters."""
        return "store" if self.is_store else "load"


@dataclass
class AccessTrace:
    """Collects access events for a set of watched addresses."""

    events: List[AccessEvent] = field(default_factory=list)
    _attached: Dict[int, AddressSpace] = field(default_factory=dict)

    def record(self, addr: int, is_store: bool, value: int, time: int) -> None:
        """Watchpoint callback; appends one event."""
        self.events.append(AccessEvent(addr, is_store, value, time))

    def attach(self, space: AddressSpace, addr: int) -> None:
        """Watch ``addr`` in ``space``, logging into this trace."""
        space.add_watchpoint(addr, self.record)
        self._attached[addr] = space

    def detach_all(self) -> None:
        """Remove every watchpoint this trace installed."""
        for addr, space in self._attached.items():
            try:
                space.remove_watchpoint(addr, self.record)
            except KeyError:
                pass  # space may have been cleared wholesale
        self._attached.clear()

    def events_for(self, addr: int) -> List[AccessEvent]:
        """All events observed at ``addr``, in time order."""
        return [event for event in self.events if event.addr == addr]

    def by_address(self) -> Dict[int, List[AccessEvent]]:
        """Group events by address, preserving time order within each."""
        grouped: Dict[int, List[AccessEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.addr, []).append(event)
        return grouped

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self.events)
