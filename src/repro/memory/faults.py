"""Fault records maintained by the simulated address space.

Two fault classes mirror the paper's §II-A distinction:

* **Soft (transient) errors** flip a stored bit once. A subsequent write
  to the byte removes the error (it is *masked by overwrite*, outcome 1
  in Figure 1).
* **Hard (recurring) errors** behave like a stuck DRAM cell: the faulty
  bit is forced to the erroneous value on every load, surviving any
  overwrite. The paper emulated this by re-applying the flip every 30 ms;
  the overlay used here is the limit of that process (see DESIGN.md and
  the ``bench_ablation_hard_fault`` ablation for the comparison).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class FaultKind(enum.Enum):
    """Transient, recurring, or access-pattern-dependent memory error."""

    SOFT = "soft"
    HARD = "hard"
    #: Disturbance (RowHammer/retention-style) errors, flagged by the
    #: paper's footnote 2 as increasingly common in scaled DRAM: reads
    #: of an *aggressor* location probabilistically flip a *victim* bit.
    DISTURBANCE = "disturbance"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class InjectedFault:
    """Record of one injected bit error.

    Attributes:
        addr: Byte address of the fault.
        bit: Bit index within the byte (0 = LSB).
        kind: Soft or hard.
        stuck_value: For hard faults, the value (0/1) the bit is stuck at;
            for soft faults, the value the bit was flipped to at injection.
        injected_at: Logical time of injection.
    """

    addr: int
    bit: int
    kind: FaultKind
    stuck_value: int
    injected_at: int

    def __post_init__(self) -> None:
        if not 0 <= self.bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {self.bit}")
        if self.stuck_value not in (0, 1):
            raise ValueError(f"stuck_value must be 0 or 1, got {self.stuck_value}")


@dataclass
class HardFaultOverlay:
    """Per-byte stuck-bit masks applied on every load.

    For each faulty byte the overlay stores ``(and_mask, or_mask)`` such
    that the observed value is ``(stored & and_mask) | or_mask``: bits
    stuck at 0 are cleared by ``and_mask``; bits stuck at 1 are set by
    ``or_mask``.
    """

    masks: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def add_stuck_bit(self, addr: int, bit: int, stuck_value: int) -> None:
        """Force ``bit`` of the byte at ``addr`` to ``stuck_value``."""
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8), got {bit}")
        and_mask, or_mask = self.masks.get(addr, (0xFF, 0x00))
        bit_mask = 1 << bit
        if stuck_value:
            or_mask |= bit_mask
            and_mask |= bit_mask
        else:
            and_mask &= ~bit_mask
            or_mask &= ~bit_mask
        self.masks[addr] = (and_mask, or_mask)

    def apply(self, addr: int, value: int) -> int:
        """Return the observed value of the byte at ``addr``."""
        masks = self.masks.get(addr)
        if masks is None:
            return value
        and_mask, or_mask = masks
        return (value & and_mask) | or_mask

    def faulty_addresses(self) -> Iterable[int]:
        """Addresses that currently have at least one stuck bit."""
        return self.masks.keys()

    def clear(self) -> None:
        """Remove all stuck bits."""
        self.masks.clear()

    def __bool__(self) -> bool:
        return bool(self.masks)

    def __len__(self) -> int:
        return len(self.masks)


@dataclass
class FaultLog:
    """Append-only log of every fault injected into an address space."""

    entries: List[InjectedFault] = field(default_factory=list)

    def record(self, fault: InjectedFault) -> None:
        """Append ``fault`` to the log."""
        self.entries.append(fault)

    def of_kind(self, kind: FaultKind) -> List[InjectedFault]:
        """Return all logged faults of ``kind``."""
        return [fault for fault in self.entries if fault.kind is kind]

    def clear(self) -> None:
        """Empty the log."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)
