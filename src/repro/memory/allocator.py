"""First-fit heap allocator with in-memory block headers.

The allocator manages the *heap* region of a simulated address space.
Each allocated block is preceded by an 8-byte header stored **inside the
simulated memory** — 4 bytes of size and a 4-byte magic/checksum word —
so that bit flips landing in allocator metadata are detected exactly the
way a real allocator detects them: a corrupted header observed during
``free``/``realloc`` raises :class:`HeapCorruptionError`, which the
workload harness treats as an application crash. This reproduces the
paper's observation that heap errors can crash an application even when
payload data would have been tolerated.

Free-space bookkeeping (the free list) is kept on the Python side for
speed; only per-block headers are exposed to fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.memory.address_space import AddressSpace
from repro.memory.errors import AllocationError, HeapCorruptionError
from repro.memory.regions import Region

#: Bytes of header preceding every allocated block (size + magic).
HEADER_SIZE = 8
#: Allocation granularity; keeps blocks aligned for typed accessors.
ALIGNMENT = 8
_MAGIC_BASE = 0x5A5A0000


def _header_magic(size: int) -> int:
    """Magic word derived from the block size; detects size corruption too."""
    return (_MAGIC_BASE ^ (size * 2654435761)) & 0xFFFFFFFF


@dataclass(frozen=True)
class AllocationInfo:
    """Metadata about a live allocation (payload address and size)."""

    addr: int
    size: int


class RegionArena:
    """Sequential carve allocator over one region (no free, no headers).

    The bump-pointer counterpart of :class:`HeapAllocator` for layouts
    that are built once and never freed — protected-array tiers, serving
    partitions, example scaffolding. Unlike ad-hoc cursor arithmetic it
    enforces alignment, keeps carves inside the region, and can leave an
    unallocated guard gap after each carve so a corrupted pointer that
    walks off one carve faults in the gap instead of silently reading
    the next one.
    """

    def __init__(self, region: Region) -> None:
        self._region = region
        self._cursor = region.base
        self._carves: List[AllocationInfo] = []

    @property
    def region(self) -> Region:
        """The region being carved."""
        return self._region

    @property
    def carves(self) -> List[AllocationInfo]:
        """Every carve handed out so far, in address order."""
        return list(self._carves)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed from the region (carves + alignment + guards)."""
        return self._cursor - self._region.base

    @property
    def free_bytes(self) -> int:
        """Bytes still available to carve."""
        return self._region.end - self._cursor

    def carve(self, size: int, *, align: int = 8, guard: int = 0) -> int:
        """Reserve ``size`` bytes; returns the aligned base address.

        Args:
            size: Bytes to reserve (must be positive).
            align: Power-of-two alignment of the returned address.
            guard: Unallocated bytes left after the carve (kept inside
                the region; later carves start beyond them).

        Raises:
            AllocationError: on bad arguments or an exhausted region.
        """
        if size <= 0:
            raise AllocationError(f"carve size must be positive, got {size}")
        if align < 1 or align & (align - 1):
            raise AllocationError(f"alignment must be a power of two, got {align}")
        if guard < 0:
            raise AllocationError(f"guard must be non-negative, got {guard}")
        base = (self._cursor + align - 1) & ~(align - 1)
        if base + size > self._region.end:
            raise AllocationError(
                f"region '{self._region.name}' exhausted: requested {size} B "
                f"at 0x{base:x}, region ends at 0x{self._region.end:x}"
            )
        self._cursor = base + size + guard
        self._carves.append(AllocationInfo(addr=base, size=size))
        return base


class HeapAllocator:
    """First-fit allocator with coalescing free list over one region."""

    def __init__(self, space: AddressSpace, region: Region) -> None:
        self._space = space
        self._region = region
        # Free list of (base, size) spans, kept sorted by base address.
        self._free: List[Tuple[int, int]] = [(region.base, region.size)]
        self._live: Dict[int, int] = {}  # payload addr -> payload size
        self._peak_bytes = 0
        self._allocated_bytes = 0

    @property
    def region(self) -> Region:
        """The heap region being managed."""
        return self._region

    @property
    def live_allocations(self) -> int:
        """Number of currently live blocks."""
        return len(self._live)

    @property
    def allocated_bytes(self) -> int:
        """Total live payload bytes."""
        return self._allocated_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark of live payload bytes."""
        return self._peak_bytes

    @property
    def free_bytes(self) -> int:
        """Total bytes available in the free list (excludes headers)."""
        return sum(size for _, size in self._free)

    def malloc(self, size: int) -> int:
        """Allocate ``size`` payload bytes; returns the payload address.

        Raises:
            AllocationError: for non-positive sizes or exhausted heap.
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        padded = HEADER_SIZE + ((size + ALIGNMENT - 1) // ALIGNMENT) * ALIGNMENT
        for index, (base, span) in enumerate(self._free):
            if span >= padded:
                remainder = span - padded
                if remainder:
                    self._free[index] = (base + padded, remainder)
                else:
                    del self._free[index]
                payload = base + HEADER_SIZE
                self._write_header(base, padded)
                self._live[payload] = padded
                self._allocated_bytes += padded - HEADER_SIZE
                self._peak_bytes = max(self._peak_bytes, self._allocated_bytes)
                return payload
        raise AllocationError(
            f"out of heap memory: requested {size} B, {self.free_bytes} B free "
            f"(fragmented across {len(self._free)} spans)"
        )

    def calloc(self, size: int) -> int:
        """Allocate ``size`` zeroed payload bytes."""
        addr = self.malloc(size)
        self._space.write(addr, bytes(size))
        return addr

    def free(self, addr: int) -> None:
        """Release a block previously returned by :meth:`malloc`.

        Raises:
            AllocationError: for an address that is not a live allocation.
            HeapCorruptionError: if the block header fails validation —
                the simulated-memory analogue of a glibc heap abort.
        """
        padded = self._live.pop(addr, None)
        if padded is None:
            raise AllocationError(f"free of non-allocated address 0x{addr:x}")
        self._validate_header(addr - HEADER_SIZE, padded)
        self._allocated_bytes -= padded - HEADER_SIZE
        self._insert_free_span(addr - HEADER_SIZE, padded)

    def usable_size(self, addr: int) -> int:
        """Return the payload capacity of a live block."""
        padded = self._live.get(addr)
        if padded is None:
            raise AllocationError(f"usable_size of non-allocated address 0x{addr:x}")
        return padded - HEADER_SIZE

    def state(self) -> dict:
        """Capture the allocator's bookkeeping for later restoration.

        Pairs with :meth:`restore_state` and a memory snapshot: restoring
        both returns the heap to a bit- and metadata-consistent past
        state (used by workload checkpoints when operations allocate and
        free after build, e.g. key-value DELETEs).
        """
        return {
            "free": list(self._free),
            "live": dict(self._live),
            "allocated_bytes": self._allocated_bytes,
            "peak_bytes": self._peak_bytes,
        }

    def restore_state(self, state: dict) -> None:
        """Restore bookkeeping captured by :meth:`state`."""
        self._free = list(state["free"])
        self._live = dict(state["live"])
        self._allocated_bytes = state["allocated_bytes"]
        self._peak_bytes = state["peak_bytes"]

    def live_spans(self) -> List[Tuple[int, int]]:
        """(base, end) of every live block including its header.

        Used by samplers that must target *application data* rather than
        free heap space (the paper's ``getMappedAddr`` only returns
        addresses where "a program has data stored").
        """
        spans = [
            (addr - HEADER_SIZE, addr - HEADER_SIZE + padded)
            for addr, padded in self._live.items()
        ]
        spans.sort()
        return spans

    def check_integrity(self) -> None:
        """Validate every live block header (a heap-consistency sweep).

        Raises:
            HeapCorruptionError: on the first corrupted header found.
        """
        for addr, padded in self._live.items():
            self._validate_header(addr - HEADER_SIZE, padded)

    # ------------------------------------------------------------------
    def _write_header(self, base: int, padded: int) -> None:
        space = self._space
        space.write_u32(base, padded)
        space.write_u32(base + 4, _header_magic(padded))

    def _validate_header(self, base: int, padded: int) -> None:
        space = self._space
        stored_size = space.read_u32(base)
        stored_magic = space.read_u32(base + 4)
        if stored_size != padded or stored_magic != _header_magic(padded):
            raise HeapCorruptionError(
                base,
                f"header mismatch (size {stored_size} vs {padded}, "
                f"magic 0x{stored_magic:x})",
            )

    def _insert_free_span(self, base: int, size: int) -> None:
        """Insert a span into the sorted free list, coalescing neighbours."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < base:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, (base, size))
        # Coalesce with successor then predecessor.
        if lo + 1 < len(free) and free[lo][0] + free[lo][1] == free[lo + 1][0]:
            free[lo] = (free[lo][0], free[lo][1] + free[lo + 1][1])
            del free[lo + 1]
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == free[lo][0]:
            free[lo - 1] = (free[lo - 1][0], free[lo - 1][1] + free[lo][1])
            del free[lo]
