"""Simulated persistent storage (disk/flash) behind the address space.

Two paper mechanisms depend on a persistent clean copy of data:

* **Implicit recoverability** (§III-C): file-mapped, read-only data — the
  WebSearch index — can be re-read from disk after an error is detected.
* **Explicit recoverability / Par+R** (§VI-B): the OS keeps a backup of
  infrequently-written pages, flushed every ≈5 minutes, and restores a
  page when parity detects an error.

:class:`BackingStore` is a content-addressed dictionary standing in for
the disk; :class:`RegionBacking` connects a store file to a region and
implements page-granularity recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.memory.address_space import AddressSpace
from repro.memory.regions import PAGE_SIZE, Region


class BackingStore:
    """In-memory stand-in for a disk: named immutable-by-default files."""

    def __init__(self) -> None:
        self._files: Dict[str, bytes] = {}
        self.read_ops = 0
        self.write_ops = 0

    def store(self, path: str, data: bytes) -> None:
        """Write (or overwrite) the file at ``path``."""
        self._files[path] = bytes(data)
        self.write_ops += 1

    def load(self, path: str) -> bytes:
        """Read the file at ``path``.

        Raises:
            FileNotFoundError: if the file does not exist.
        """
        if path not in self._files:
            raise FileNotFoundError(f"no such backing file: {path}")
        self.read_ops += 1
        return self._files[path]

    def exists(self, path: str) -> bool:
        """Whether a file exists at ``path``."""
        return path in self._files

    def size_of(self, path: str) -> int:
        """Size in bytes of the file at ``path``."""
        return len(self.load(path))

    def paths(self) -> List[str]:
        """All stored file paths."""
        return sorted(self._files)


@dataclass
class RecoveryStats:
    """Counters describing software recovery activity."""

    pages_recovered: int = 0
    bytes_recovered: int = 0
    flushes: int = 0


@dataclass
class RegionBacking:
    """Binds a region of simulated memory to a backing-store file.

    For a read-only file mapping (``writable=False``) the file holds the
    build-time contents and never changes — recovery always has a clean
    copy (implicit recoverability). For a writable backing
    (``writable=True``, the Par+R scheme) :meth:`flush` must be called
    periodically to refresh the on-disk copy; recovery then restores the
    most recent flush, which is correct as long as the page was not
    modified after the last flush.
    """

    space: AddressSpace
    region: Region
    store: BackingStore
    path: str
    writable: bool = False
    stats: RecoveryStats = field(default_factory=RecoveryStats)

    def mirror_current_contents(self) -> None:
        """Copy the region's current bytes to the backing file."""
        data = self.space.peek(self.region.base, self.region.size)
        self.store.store(self.path, data)
        self.stats.flushes += 1

    def flush(self) -> None:
        """Refresh the on-disk copy (Par+R periodic flush).

        Raises:
            PermissionError: on a read-only backing, which must never be
                rewritten (it is the golden copy).
        """
        if not self.writable:
            raise PermissionError(
                f"backing '{self.path}' is read-only; flush is only valid "
                "for Par+R writable backings"
            )
        self.mirror_current_contents()

    def recover_page(self, addr: int) -> None:
        """Restore the 4 KB page containing ``addr`` from the backing file.

        Raises:
            ValueError: if ``addr`` is outside the backed region.
        """
        if not self.region.contains(addr):
            raise ValueError(
                f"address 0x{addr:x} outside backed region '{self.region.name}'"
            )
        page_base = self.region.base + ((addr - self.region.base) // PAGE_SIZE) * PAGE_SIZE
        offset = page_base - self.region.base
        clean = self.store.load(self.path)[offset : offset + PAGE_SIZE]
        self.space.poke(page_base, clean)
        self.stats.pages_recovered += 1
        self.stats.bytes_recovered += len(clean)

    def recover_region(self) -> None:
        """Restore the entire region from the backing file."""
        clean = self.store.load(self.path)
        self.space.poke(self.region.base, clean)
        self.stats.pages_recovered += self.region.page_count
        self.stats.bytes_recovered += len(clean)


def mmap_region(
    space: AddressSpace,
    region_name: str,
    store: BackingStore,
    path: str,
    freeze: bool = True,
) -> RegionBacking:
    """Map a backing file into a region (simulated read-only ``mmap``).

    Loads the file contents into the region, optionally freezes it, and
    returns the :class:`RegionBacking` for later recovery.

    Raises:
        ValueError: if the file is larger than the region.
    """
    region = space.region_named(region_name)
    data = store.load(path)
    if len(data) > region.size:
        raise ValueError(
            f"file '{path}' ({len(data)} B) larger than region "
            f"'{region_name}' ({region.size} B)"
        )
    space.poke(region.base, data)
    if freeze:
        space.freeze_region(region_name)
    region.file_backed = True
    return RegionBacking(space=space, region=region, store=store, path=path, writable=False)
