"""Simulated memory substrate: address space, regions, allocator, faults.

This package replaces the native process memory + debugger combination of
the paper with a fully controllable byte-addressable simulation. See
DESIGN.md ("Faithful-substitution statement") for the rationale.
"""

from repro.memory.address_space import (
    AddressSpace,
    MemorySnapshot,
    build_address_space,
)
from repro.memory.allocator import AllocationInfo, HeapAllocator, RegionArena
from repro.memory.errors import (
    AllocationError,
    HeapCorruptionError,
    LayoutError,
    ProtectionFault,
    SegmentationFault,
    SimulatedMemoryError,
    StackOverflowError,
)
from repro.memory.faults import FaultKind, FaultLog, HardFaultOverlay, InjectedFault
from repro.memory.persistence import (
    BackingStore,
    RecoveryStats,
    RegionBacking,
    mmap_region,
)
from repro.memory.regions import (
    PAGE_SIZE,
    MemoryLayout,
    Region,
    RegionKind,
    RegionSpec,
    region_kind_from_string,
    standard_layout,
)
from repro.memory.stack import StackFrame, StackManager
from repro.memory.tracing import AccessEvent, AccessTrace

__all__ = [
    "AddressSpace",
    "MemorySnapshot",
    "build_address_space",
    "AllocationInfo",
    "HeapAllocator",
    "RegionArena",
    "AllocationError",
    "HeapCorruptionError",
    "LayoutError",
    "ProtectionFault",
    "SegmentationFault",
    "SimulatedMemoryError",
    "StackOverflowError",
    "FaultKind",
    "FaultLog",
    "HardFaultOverlay",
    "InjectedFault",
    "BackingStore",
    "RecoveryStats",
    "RegionBacking",
    "mmap_region",
    "PAGE_SIZE",
    "MemoryLayout",
    "Region",
    "RegionKind",
    "RegionSpec",
    "region_kind_from_string",
    "standard_layout",
    "StackFrame",
    "StackManager",
    "AccessEvent",
    "AccessTrace",
]
