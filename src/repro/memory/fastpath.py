"""Process-wide toggle for the trial-loop memory fast path.

The fast path (fused typed accessors, dirty-page snapshot restore, bulk
array kernels — see DESIGN.md "Memory fast path") is bit-identical to
the scalar access path by construction, so it defaults to **on**. The
toggle exists so benchmarks and equivalence tests can pin a space to
the legacy scalar-oracle behaviour:

* environment: ``REPRO_MEMORY_FASTPATH=0`` disables it for a whole
  process before any space is built;
* :func:`set_fastpath` flips the default for spaces built afterwards;
* :func:`oracle_mode` scopes the legacy behaviour to a ``with`` block;
* ``AddressSpace.set_fast_path`` repins one existing space.

The flag is sampled at :class:`~repro.memory.address_space.AddressSpace`
construction, so toggling never changes the semantics of a live space
mid-trial.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["fastpath_enabled", "set_fastpath", "oracle_mode"]

_ENV_VAR = "REPRO_MEMORY_FASTPATH"
_FALSEY = {"0", "false", "no", "off", ""}

_enabled = os.environ.get(_ENV_VAR, "1").strip().lower() not in _FALSEY


def fastpath_enabled() -> bool:
    """Whether newly built address spaces use the memory fast path."""
    return _enabled


def set_fastpath(enabled: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def oracle_mode() -> Iterator[None]:
    """Build spaces on the legacy scalar oracle path within the block."""
    previous = set_fastpath(False)
    try:
        yield
    finally:
        set_fastpath(previous)
