"""WebSearch: interactive web-search index serving workload."""

from repro.apps.websearch.corpus import (
    Corpus,
    Document,
    ZipfSampler,
    fnv1a64,
    generate_corpus,
    generate_query_trace,
)
from repro.apps.websearch.engine import SearchEngine, SearchResponse
from repro.apps.websearch.index_builder import build_index_bytes, expected_index_size
from repro.apps.websearch.index_layout import IndexHeader, unpack_header
from repro.apps.websearch.workload import WebSearch

__all__ = [
    "Corpus",
    "Document",
    "ZipfSampler",
    "fnv1a64",
    "generate_corpus",
    "generate_query_trace",
    "SearchEngine",
    "SearchResponse",
    "build_index_bytes",
    "expected_index_size",
    "IndexHeader",
    "unpack_header",
    "WebSearch",
]
