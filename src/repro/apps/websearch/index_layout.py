"""On-"disk"/in-memory layout of the WebSearch inverted index.

The index file is built once (:mod:`index_builder`), stored in the
simulated :class:`~repro.memory.BackingStore`, and mapped read-only into
the application's **private** region — exactly the paper's structure
(WebSearch "uses DRAM as a read-only cache for ... frequently-accessed
data", giving the private region its implicit recoverability).

Posting lists are stored as **chains of blocks**, the way production
index formats lay out skip-list/delta-block structures: each block
carries a link to the next block of the same term. This matters for
fault-injection fidelity — block links are pointer-like metadata that
queries *consume on every scan*, so a bit flip there walks the reader
into unmapped memory (crash) exactly as in a native serving stack,
while flips in posting payloads merely perturb ranking (incorrect).

Layout (all little-endian):

======================  ============================================
Header (24 bytes)       magic u32, term_count u32, doc_count u32,
                        term_table_off u32, postings_off u32,
                        postings_bytes u32
Term table              term_count × 16 B: term_id u32,
                        first_block_rel u32, total_count u32, idf f32
                        — sorted by term_id (binary search)
Posting blocks          per block: header (next_block_rel u32 —
                        END_OF_CHAIN terminates — count u16, pad u16)
                        then count × postings of 8 B
                        (doc_id u32, term_frequency u16, pad u16)
======================  ============================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

INDEX_MAGIC = 0x48435253  # "SRCH"
HEADER_SIZE = 24
TERM_ENTRY_SIZE = 16
POSTING_SIZE = 8
BLOCK_HEADER_SIZE = 8
#: Postings per full block (production formats use 64-256B blocks).
BLOCK_CAPACITY = 24
#: Chain terminator for next_block_rel.
END_OF_CHAIN = 0xFFFFFFFF

#: Sanity cap on posting-list scans; a corrupted count/chain beyond this
#: raises QueryTimeout instead of looping over garbage for seconds.
MAX_POSTINGS_PER_TERM = 65536
MAX_BLOCKS_PER_TERM = 128

_HEADER = struct.Struct("<IIIIII")
_TERM_ENTRY = struct.Struct("<IIIf")
_BLOCK_HEADER = struct.Struct("<IHH")
_POSTING = struct.Struct("<IHH")


@dataclass(frozen=True)
class IndexHeader:
    """Decoded index header."""

    term_count: int
    doc_count: int
    term_table_off: int
    postings_off: int
    postings_bytes: int


def pack_header(header: IndexHeader) -> bytes:
    """Serialize a header (with magic)."""
    return _HEADER.pack(
        INDEX_MAGIC,
        header.term_count,
        header.doc_count,
        header.term_table_off,
        header.postings_off,
        header.postings_bytes,
    )


def unpack_header(data: bytes) -> IndexHeader:
    """Parse a header.

    Raises:
        ValueError: on bad magic — the application refuses to start on a
            corrupt index file (this check runs at build/load time only).
    """
    magic, term_count, doc_count, term_table_off, postings_off, postings_bytes = (
        _HEADER.unpack(data[:HEADER_SIZE])
    )
    if magic != INDEX_MAGIC:
        raise ValueError(f"bad index magic 0x{magic:x}")
    return IndexHeader(
        term_count=term_count,
        doc_count=doc_count,
        term_table_off=term_table_off,
        postings_off=postings_off,
        postings_bytes=postings_bytes,
    )


def pack_term_entry(
    term_id: int, first_block_rel: int, total_count: int, idf: float
) -> bytes:
    """Serialize one term-table entry."""
    return _TERM_ENTRY.pack(term_id, first_block_rel, total_count, idf)


def unpack_term_entry(data: bytes):
    """Parse one entry -> (term_id, first_block_rel, total_count, idf)."""
    return _TERM_ENTRY.unpack(data)


def pack_block_header(next_block_rel: int, count: int) -> bytes:
    """Serialize one posting-block header."""
    return _BLOCK_HEADER.pack(next_block_rel, count, 0)


def unpack_block_header(data: bytes):
    """Parse a block header -> (next_block_rel, count, pad)."""
    return _BLOCK_HEADER.unpack(data)


def pack_posting(doc_id: int, term_frequency: int) -> bytes:
    """Serialize one posting."""
    return _POSTING.pack(doc_id, term_frequency, 0)


def iter_unpack_postings(data: bytes):
    """Iterate (doc_id, tf, pad) tuples over a raw posting block."""
    return _POSTING.iter_unpack(data)
