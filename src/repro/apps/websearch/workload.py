"""The WebSearch workload: index serving on simulated memory.

Region structure mirrors the paper's Table 3 for WebSearch:

* **private** — the read-only, file-backed inverted index (the paper's
  36 GB mmap'd index cache), frozen after load → implicitly recoverable;
* **heap** — read-mostly ranking metadata (document popularity table,
  snippet digests) plus the query cache (written on every miss);
* **stack** — per-query scratch frames, rewritten every query.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.apps.base import Workload
from repro.apps.websearch.corpus import Corpus, generate_corpus, generate_query_trace
from repro.apps.websearch.engine import (
    CACHE_SLOTS,
    CACHE_SLOT_SIZE,
    SearchEngine,
)
from repro.apps.websearch.index_builder import build_index_with_map
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.persistence import BackingStore, RegionBacking, mmap_region
from repro.memory.regions import standard_layout
from repro.memory.stack import StackManager
from repro.utils.timescale import TimeScale
from repro.utils.rng import SeedSequenceFactory

#: Simulated client load; with the logical clock ticking once per memory
#: access this anchors minute-denominated thresholds (5-min flush,
#: 10-min recovery) to observable workload behaviour.
QUERIES_PER_MINUTE = 30.0
INDEX_PATH = "websearch/index.dat"
DOCMETA_PATH = "websearch/docmeta.dat"


class WebSearch(Workload):
    """Interactive web-search index serving (paper §V-A, first workload)."""

    name = "WebSearch"

    def __init__(
        self,
        seed: int = 1234,
        vocabulary_size: int = 1500,
        doc_count: int = 1200,
        query_count: int = 600,
        heap_size: int = 131072,
        stack_size: int = 16384,
        store: Optional[BackingStore] = None,
    ) -> None:
        super().__init__()
        self._seeds = SeedSequenceFactory(seed).child("websearch")
        self._vocabulary_size = vocabulary_size
        self._doc_count = doc_count
        self._query_count = query_count
        self._heap_size = heap_size
        self._stack_size = stack_size
        self.store = store if store is not None else BackingStore()
        self.corpus: Optional[Corpus] = None
        self.queries: List[List[int]] = []
        self.engine: Optional[SearchEngine] = None
        self.index_backing: Optional[RegionBacking] = None
        self._stack: Optional[StackManager] = None
        self._units_per_query: float = 100.0

    # ------------------------------------------------------------------
    def build(self) -> None:
        """Generate corpus, serialize the index, map it, build heap state."""
        corpus_rng = self._seeds.stream("corpus")
        self.corpus = generate_corpus(
            corpus_rng,
            vocabulary_size=self._vocabulary_size,
            doc_count=self._doc_count,
        )
        self.queries = generate_query_trace(
            self.corpus, self._seeds.stream("queries"), query_count=self._query_count
        )
        index_image, self._structure_map = build_index_with_map(self.corpus)
        self.store.store(INDEX_PATH, index_image)

        layout = standard_layout(
            private_size=len(index_image),
            heap_size=self._heap_size,
            stack_size=self._stack_size,
        )
        space = AddressSpace(layout)
        self._space = space
        self.index_backing = mmap_region(space, "private", self.store, INDEX_PATH)

        heap = HeapAllocator(space, space.region_named("heap"))
        self._allocator = heap
        doc_table_addr = heap.malloc(self.corpus.doc_count * 8)
        snippet_table_addr = heap.malloc(self.corpus.doc_count * 4)
        cache_addr = heap.calloc(CACHE_SLOTS * CACHE_SLOT_SIZE)
        for document in self.corpus.documents:
            base = doc_table_addr + document.doc_id * 8
            space.write_f32(base, document.popularity)
            space.write_u32(base + 4, document.length)
            space.write_u32(
                snippet_table_addr + document.doc_id * 4, document.snippet_digest
            )
        # The ranking tables are derived from on-disk corpus metadata, so
        # a clean copy exists in persistent storage: store it, making
        # those heap spans *implicitly recoverable* (paper §III-C — this
        # is why the paper measures 59 % of the WebSearch heap as
        # implicitly recoverable).
        self.store.store(
            DOCMETA_PATH,
            space.peek(doc_table_addr, self.corpus.doc_count * 8)
            + space.peek(snippet_table_addr, self.corpus.doc_count * 4),
        )
        self._doc_table_addr = doc_table_addr
        self._snippet_table_addr = snippet_table_addr
        self._cache_addr = cache_addr

        self._stack = StackManager(space, space.region_named("stack"))
        private = space.region_named("private")
        self.engine = SearchEngine(
            space=space,
            index_base=private.base,
            doc_table_addr=doc_table_addr,
            snippet_table_addr=snippet_table_addr,
            cache_addr=cache_addr,
            stack=self._stack,
        )
        self._calibrate_clock()

    def _calibrate_clock(self) -> None:
        """Measure accesses-per-query so the time scale reflects reality."""
        sample = min(10, len(self.queries))
        if sample == 0:
            return
        start = self.space.time
        for index in range(sample):
            self.engine.search(self.queries[index])
        self._units_per_query = max(1.0, (self.space.time - start) / sample)

    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        """Number of queries in the trace."""
        return len(self.queries)

    def execute(self, query_index: int) -> Hashable:
        """Serve one query from the trace."""
        if self.engine is None:
            raise RuntimeError("WebSearch: build() must be called first")
        return self.engine.search(self.queries[query_index])

    @property
    def time_scale(self) -> TimeScale:
        """Logical-clock units per simulated minute at the modeled load."""
        return TimeScale(units_per_minute=self._units_per_query * QUERIES_PER_MINUTE)

    def sample_ranges(self, region):
        """Live-data spans: whole index, allocated heap, active stack top."""
        if region.name == "heap":
            return self._allocator.live_spans()
        if region.name == "stack":
            return self.active_stack_window(region, 256)
        return [(region.base, region.end)]

    def data_structure_ranges(self):
        """Byte spans of individual data structures (finest granularity).

        Feeds the structure-granularity characterization extension: the
        pointer-bearing index metadata (term table, posting-block
        headers) versus payload, plus the heap tables and the active
        stack window. Spans are absolute simulated addresses.
        """
        private = self.space.region_named("private")
        structures = self._structure_map.shifted(private.base)
        structures["doc_table"] = [
            (self._doc_table_addr, self._doc_table_addr + self.corpus.doc_count * 8)
        ]
        structures["snippets"] = [
            (
                self._snippet_table_addr,
                self._snippet_table_addr + self.corpus.doc_count * 4,
            )
        ]
        structures["query_cache"] = [
            (self._cache_addr, self._cache_addr + CACHE_SLOTS * CACHE_SLOT_SIZE)
        ]
        stack = self.space.region_named("stack")
        structures["stack_frames"] = self.active_stack_window(stack, 256)
        return structures

    def implicit_ranges(self, region):
        """Spans with a clean persistent copy (for recoverability analysis).

        The private index is file-mapped; the heap's document-metadata
        tables are derived from on-disk corpus data (stored at build
        time). The query cache and stack have no persistent copy.
        """
        if region.name == "private":
            return [(region.base, region.end)]
        if region.name == "heap":
            return [
                (self._doc_table_addr, self._doc_table_addr + self.corpus.doc_count * 8),
                (
                    self._snippet_table_addr,
                    self._snippet_table_addr + self.corpus.doc_count * 4,
                ),
            ]
        return []
