"""WebSearch query engine operating on simulated memory.

Serves top-4 document queries against the inverted index mapped into the
private region, with ranking metadata (document popularity, snippet
digests) and a query cache living in the heap, and per-query scratch
state in a stack frame. Every piece of state the engine consults flows
through the simulated address space, so injected bit errors propagate to
query responses the same way the paper's debugger-injected errors did:

* a corrupted posting ``doc_id``/``tf`` or a stale cache entry yields an
  **incorrect response**;
* a corrupted posting-list offset or count typically walks off the index
  and raises a :class:`~repro.memory.errors.SegmentationFault` or a
  :class:`~repro.apps.base.QueryTimeout` — a **failed request**;
* corruption in rarely-read bytes is **masked**.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import QueryTimeout
from repro.apps.websearch.corpus import fnv1a64
from repro.apps.websearch.index_layout import (
    BLOCK_HEADER_SIZE,
    END_OF_CHAIN,
    MAX_BLOCKS_PER_TERM,
    MAX_POSTINGS_PER_TERM,
    POSTING_SIZE,
    TERM_ENTRY_SIZE,
    IndexHeader,
    iter_unpack_postings,
    unpack_block_header,
    unpack_header,
)
from repro.memory.address_space import AddressSpace
from repro.memory.stack import StackManager

#: Weight of the popularity signal in the final ranking score.
POPULARITY_WEIGHT = 0.3
#: Results returned per query (the paper's "top four most relevant").
TOP_K = 4
#: Relevance candidates re-ranked with popularity before truncating.
CANDIDATE_POOL = 8
#: Query-cache geometry (direct-mapped).
CACHE_SLOTS = 256
CACHE_SLOT_SIZE = 48  # u64 qhash, u32 count, u32 pad, 4 × (u32 doc, f32 score)

_TERM_ENTRY = struct.Struct("<IIIf")
_CACHE_HEADER = struct.Struct("<QII")
_RESULT = struct.Struct("<If")
_F32 = struct.Struct("<f")
_POSTING_DTYPE = np.dtype([("doc", "<u4"), ("tf", "<u2"), ("pad", "<u2")])

_LOG1P_FACTORS: Optional[np.ndarray] = None

#: Memo sentinel: this chain/lookup cannot be replayed offline (it walks
#: outside the pristine index bytes or trips a sanity cap) — the caller
#: must issue the real simulated-memory accesses.
_LIVE = object()


def _log1p_factor_table() -> np.ndarray:
    """``1.0 + log1p(tf)`` for every possible u16 term frequency.

    Table lookup keeps the vectorized postings decode bit-identical to
    the scalar ``math.log1p`` call — entries are computed with the very
    same libm function.
    """
    global _LOG1P_FACTORS
    if _LOG1P_FACTORS is None:
        _LOG1P_FACTORS = np.array(
            [1.0 + math.log1p(tf) for tf in range(65536)], dtype=np.float64
        )
    return _LOG1P_FACTORS

#: One search response: tuple of (doc_id, score, snippet_digest).
SearchResponse = Tuple[Tuple[int, float, int], ...]


def _quantize(score: float) -> float:
    """Quantize a score to f32 then round — identical on all code paths.

    Keeps cache-hit and cache-miss responses bit-identical for the same
    underlying result, so correctness comparison never false-positives.
    """
    try:
        narrowed = _F32.unpack(_F32.pack(score))[0]
    except (OverflowError, ValueError):
        narrowed = float("inf") if score > 0 else float("-inf")
    return round(narrowed, 3)


class SearchEngine:
    """Top-4 ranked retrieval over the serialized inverted index."""

    def __init__(
        self,
        space: AddressSpace,
        index_base: int,
        doc_table_addr: int,
        snippet_table_addr: int,
        cache_addr: int,
        stack: StackManager,
    ) -> None:
        self._space = space
        self._index_base = index_base
        self._doc_table_addr = doc_table_addr
        self._snippet_table_addr = snippet_table_addr
        self._cache_addr = cache_addr
        self._stack = stack
        # Query-hash memo: fnv1a64 over the packed term ids is a pure
        # function of the query tuple, and workloads replay a fixed query
        # mix thousands of times per campaign.
        self._query_hash_cache: Dict[Tuple[int, ...], int] = {}
        # The header is read once at startup — like a real server parsing
        # the shard header into locals — so later corruption of header
        # bytes is never consumed (a masked, never-read location).
        self._header: IndexHeader = unpack_header(
            space.peek(index_base, 24)
        )
        # Index-level fusion state: the build-time bytes of the whole
        # serialized index (header + term table + posting blocks), the
        # region content version at which those bytes were last
        # re-verified, and per-term / per-chain replay memos. While the
        # index span is provably clean and byte-identical to build time,
        # term lookups and chain walks are served from these memos with
        # exact deferred accounting instead of per-access reads.
        self._index_len = self._header.postings_off + self._header.postings_bytes
        self._index_raw = space.peek(index_base, self._index_len)
        self._index_version: Optional[int] = None
        self._term_memo: Dict[int, object] = {}
        self._scan_memo: Dict[int, object] = {}
        # Candidate-selection memo for fully-fused queries, keyed by the
        # exact (first_block_rel, idf) pairs scanned in order — the sole
        # inputs determining the result once every chain was served from
        # the pristine replay. Keying on the values actually read back
        # from the stack frame (not the query terms) keeps a corrupted
        # frame from aliasing a cached selection. Bounded defensively.
        self._select_memo: Dict[Tuple, List[Tuple[int, float]]] = {}

    @property
    def header(self) -> IndexHeader:
        """The decoded index header."""
        return self._header

    # ------------------------------------------------------------------
    def search(self, terms: Sequence[int]) -> SearchResponse:
        """Serve one query: list of term ids -> top-4 response tuple."""
        query_key = tuple(terms)
        query_hash = self._query_hash_cache.get(query_key)
        if query_hash is None:
            query_hash = fnv1a64(
                b"".join(term.to_bytes(4, "little") for term in terms)
            )
            self._query_hash_cache[query_key] = query_hash
        cached = self._cache_lookup(query_hash)
        if cached is not None:
            return cached

        frame = self._stack.push(192)
        space = self._space
        try:
            term_count = min(len(terms), 4)
            batched = space.fast_path_enabled
            space.write_u32(frame.slot(128), term_count)
            for position, term in enumerate(terms[:term_count]):
                entry = self._find_term_fused(term) if batched else _LIVE
                if entry is _LIVE:
                    entry = self._find_term(term)
                base = position * 16
                if entry is None:
                    space.write_u32(frame.slot(base), 0)
                    space.write_u32(frame.slot(base + 4), 0)
                    space.write_f32(frame.slot(base + 8), 0.0)
                else:
                    rel_off, count, idf = entry
                    space.write_u32(frame.slot(base), rel_off)
                    space.write_u32(frame.slot(base + 4), count)
                    space.write_f32(frame.slot(base + 8), idf)
                space.write_u32(frame.slot(base + 12), terms[position] if position < len(terms) else 0)

            relevance: dict = {}
            doc_chunks: List[np.ndarray] = []
            contrib_chunks: List[np.ndarray] = []
            fused_scans: Optional[List[Tuple[int, float]]] = []
            stored_count = space.read_u32(frame.slot(128))
            if stored_count > 4:
                raise QueryTimeout(
                    f"query dispatch table reports {stored_count} terms"
                )
            for position in range(stored_count):
                base = position * 16
                first_block_rel = space.read_u32(frame.slot(base))
                count = space.read_u32(frame.slot(base + 4))
                idf = space.read_f32(frame.slot(base + 8))
                if count == 0:
                    continue
                if count > MAX_POSTINGS_PER_TERM:
                    raise QueryTimeout(
                        f"posting list claims {count} entries "
                        f"(cap {MAX_POSTINGS_PER_TERM})"
                    )
                if batched:
                    if self._scan_fused(
                        first_block_rel, idf, doc_chunks, contrib_chunks
                    ):
                        if fused_scans is not None:
                            fused_scans.append((first_block_rel, idf))
                    else:
                        fused_scans = None
                        self._scan_postings_batched(
                            first_block_rel, idf, doc_chunks, contrib_chunks
                        )
                else:
                    self._scan_postings(first_block_rel, idf, relevance)

            if batched:
                if fused_scans is not None:
                    select_key = tuple(fused_scans)
                    candidates = self._select_memo.get(select_key)
                    if candidates is None:
                        candidates = self._select_candidates(
                            doc_chunks, contrib_chunks
                        )
                        if len(self._select_memo) < 4096:
                            self._select_memo[select_key] = candidates
                else:
                    candidates = self._select_candidates(
                        doc_chunks, contrib_chunks
                    )
            else:
                candidates = sorted(
                    relevance.items(), key=lambda item: (-item[1], item[0])
                )[:CANDIDATE_POOL]
            ranked: List[Tuple[float, int]] = []
            for doc_id, score in candidates:
                popularity = space.read_f32(self._doc_table_addr + doc_id * 8)
                ranked.append((score + POPULARITY_WEIGHT * popularity, doc_id))
            ranked.sort(key=lambda item: (-item[0], item[1]))
            top = ranked[:TOP_K]

            # Stage the results through the stack frame (results buffer),
            # then read them back to build the response — consumed stack
            # data, as in a real call chain returning by reference.
            for slot_index, (score, doc_id) in enumerate(top):
                offset = 64 + slot_index * 8
                space.write_u32(frame.slot(offset), doc_id)
                space.write_f32(frame.slot(offset + 4), score)
            results: List[Tuple[int, float]] = []
            for slot_index in range(len(top)):
                offset = 64 + slot_index * 8
                doc_id = space.read_u32(frame.slot(offset))
                score = space.read_f32(frame.slot(offset + 4))
                results.append((doc_id, score))
        finally:
            self._stack.pop()

        self._cache_store(query_hash, results)
        return self._finalize(results)

    # ------------------------------------------------------------------
    def _scan_postings(self, first_block_rel: int, idf: float, relevance: dict) -> None:
        """Walk one term's posting-block chain, accumulating relevance.

        Block links are consumed on every hop, so a corrupted
        ``next_block_rel`` sends the scan into a guard gap
        (:class:`SegmentationFault`) or into garbage whose fields either
        fault (oversized reads) or wedge the walk
        (:class:`~repro.apps.base.QueryTimeout`) — the behaviour of a
        native index reader chasing a bad skip pointer.
        """
        space = self._space
        postings_base = self._index_base + self._header.postings_off
        block_rel = first_block_rel
        blocks_walked = 0
        while block_rel != END_OF_CHAIN:
            blocks_walked += 1
            if blocks_walked > MAX_BLOCKS_PER_TERM:
                raise QueryTimeout(
                    f"posting chain exceeded {MAX_BLOCKS_PER_TERM} blocks"
                )
            block_addr = postings_base + block_rel
            next_rel, count, _pad = unpack_block_header(
                space.read(block_addr, BLOCK_HEADER_SIZE)
            )
            if count:
                payload = space.read(
                    block_addr + BLOCK_HEADER_SIZE, count * POSTING_SIZE
                )
                for doc_id, term_frequency, _posting_pad in iter_unpack_postings(
                    payload
                ):
                    contribution = idf * (1.0 + math.log1p(term_frequency))
                    if doc_id in relevance:
                        relevance[doc_id] += contribution
                    else:
                        relevance[doc_id] = contribution
            block_rel = next_rel

    def _scan_postings_batched(
        self,
        first_block_rel: int,
        idf: float,
        doc_chunks: List[np.ndarray],
        contrib_chunks: List[np.ndarray],
    ) -> None:
        """Chain walk of :meth:`_scan_postings` with vectorized decode.

        Issues the identical block-header and payload reads (same
        addresses, sizes, and order — so clock, counters, and fault
        consumption match the scalar scan exactly) but decodes each
        payload with one NumPy record view and computes contributions by
        table lookup instead of per-posting ``struct``/``log1p`` calls.
        Accumulation into per-document sums is deferred to
        :meth:`_select_candidates`.
        """
        space = self._space
        postings_base = self._index_base + self._header.postings_off
        factors = _log1p_factor_table()
        block_rel = first_block_rel
        blocks_walked = 0
        while block_rel != END_OF_CHAIN:
            blocks_walked += 1
            if blocks_walked > MAX_BLOCKS_PER_TERM:
                raise QueryTimeout(
                    f"posting chain exceeded {MAX_BLOCKS_PER_TERM} blocks"
                )
            block_addr = postings_base + block_rel
            next_rel, count, _pad = unpack_block_header(
                space.read(block_addr, BLOCK_HEADER_SIZE)
            )
            if count:
                payload = space.read(
                    block_addr + BLOCK_HEADER_SIZE, count * POSTING_SIZE
                )
                postings = np.frombuffer(payload, dtype=_POSTING_DTYPE)
                doc_chunks.append(postings["doc"])
                contrib_chunks.append(idf * factors[postings["tf"]])
            block_rel = next_rel

    # ------------------------------------------------------------------
    # Index-level fusion (pristine-index replay with deferred accounting)
    # ------------------------------------------------------------------
    def _index_pristine(self) -> bool:
        """True while the serialized index is provably untouched.

        Clean span (no fault, watchpoint, or disturbance interaction per
        the space's guard logic) plus stored bytes equal to build time.
        The byte comparison is keyed on the region's content version, so
        it reruns only after a mutation somewhere in the region. Checked
        before every fused lookup/scan because an access in between (e.g.
        a stack read hitting a disturbance aggressor) can corrupt index
        bytes mid-query.
        """
        space = self._space
        length = self._index_len
        if not space.span_is_clean(self._index_base, length):
            return False
        version = space.version_at(self._index_base)
        if version != self._index_version:
            if space.peek(self._index_base, length) != self._index_raw:
                return False
            self._index_version = version
        return True

    def _spans_pristine(self, spans, state) -> bool:
        """True when every (offset, length) span holds its build-time
        bytes and is clean. The byte comparison is keyed on the region
        content version in ``state`` (a 1-slot list private to one memo
        entry), so it reruns only after a mutation in the region. Used to
        rescue individual replays when the index as a whole is not
        pristine — e.g. a fault landed in some *other* chain."""
        space = self._space
        base = self._index_base
        for offset, length in spans:
            if not space.span_is_clean(base + offset, length):
                return False
        version = space.version_at(base)
        if state[0] != version:
            raw = self._index_raw
            for offset, length in spans:
                if space.peek(base + offset, length) != raw[offset : offset + length]:
                    return False
            state[0] = version
        return True

    def _find_term_fused(self, term_id: int):
        """Memoized term lookup over the pristine table.

        Returns the entry tuple (or None for an absent term) after
        charging the exact reads the live binary search would issue, or
        ``_LIVE`` when the replay cannot stand in for real accesses —
        because the probed bytes are corrupted, guarded, or out of span.
        """
        memo = self._term_memo.get(term_id)
        if memo is None:
            memo = self._replay_find_term(term_id)
            self._term_memo[term_id] = memo
        if memo is _LIVE:
            return _LIVE
        entry, ops, nbytes, spans, state = memo
        if not (self._index_pristine() or self._spans_pristine(spans, state)):
            return _LIVE
        self._space.charge_reads(self._index_base, ops, nbytes)
        return entry

    def _replay_find_term(self, term_id: int):
        """Run :meth:`_find_term`'s binary search over the pristine bytes,
        counting the loads it would issue (one u32 probe per step, one
        16-byte entry read on a hit)."""
        raw = self._index_raw
        table_off = self._header.term_table_off
        lo = 0
        hi = self._header.term_count - 1
        probes = 0
        ops = 0
        nbytes = 0
        spans: List[Tuple[int, int]] = []
        while lo <= hi:
            probes += 1
            if probes > 64:
                return _LIVE  # live path raises QueryTimeout identically
            mid = (lo + hi) // 2
            offset = table_off + mid * TERM_ENTRY_SIZE
            if offset < 0 or offset + TERM_ENTRY_SIZE > len(raw):
                return _LIVE  # probe strays outside the pristine bytes
            ops += 1
            nbytes += 4
            spans.append((offset, 4))
            stored_term = int.from_bytes(raw[offset : offset + 4], "little")
            if stored_term == term_id:
                ops += 1
                nbytes += TERM_ENTRY_SIZE
                spans.append((offset, TERM_ENTRY_SIZE))
                _term, rel_off, count, idf = _TERM_ENTRY.unpack(
                    raw[offset : offset + TERM_ENTRY_SIZE]
                )
                return ((rel_off, count, idf), ops, nbytes, spans, [None])
            if stored_term < term_id:
                lo = mid + 1
            else:
                hi = mid - 1
        return (None, ops, nbytes, spans, [None])

    def _scan_fused(
        self,
        first_block_rel: int,
        idf: float,
        doc_chunks: List[np.ndarray],
        contrib_chunks: List[np.ndarray],
    ) -> bool:
        """Serve one chain scan from the pristine-index replay memo.

        Appends the memoized decode (contributions scaled by ``idf`` with
        the same elementwise multiply the live decode uses) and settles
        the chain's exact read accounting in one charge. Returns False
        when the chain cannot be replayed offline; the caller then issues
        the real scan.
        """
        memo = self._scan_memo.get(first_block_rel)
        if memo is None:
            memo = self._replay_scan(first_block_rel)
            self._scan_memo[first_block_rel] = memo
        if memo is _LIVE:
            return False
        docs, factor_values, ops, nbytes, spans, state = memo
        if not (self._index_pristine() or self._spans_pristine(spans, state)):
            return False
        if docs.size:
            doc_chunks.append(docs)
            contrib_chunks.append(idf * factor_values)
        self._space.charge_reads(self._index_base, ops, nbytes)
        return True

    def _replay_scan(self, first_block_rel: int):
        """Walk one posting chain over the pristine bytes, collecting the
        concatenated doc ids, per-posting ``1 + log1p(tf)`` factors, and
        the exact loads the live walk would issue."""
        raw = self._index_raw
        postings_off = self._header.postings_off
        limit = len(raw)
        factors = _log1p_factor_table()
        doc_parts: List[np.ndarray] = []
        factor_parts: List[np.ndarray] = []
        ops = 0
        nbytes = 0
        spans: List[Tuple[int, int]] = []
        block_rel = first_block_rel
        blocks_walked = 0
        while block_rel != END_OF_CHAIN:
            blocks_walked += 1
            if blocks_walked > MAX_BLOCKS_PER_TERM:
                return _LIVE  # live path raises QueryTimeout identically
            start = postings_off + block_rel
            if start + BLOCK_HEADER_SIZE > limit:
                return _LIVE  # chain walks outside the pristine bytes
            next_rel, count, _pad = unpack_block_header(
                raw[start : start + BLOCK_HEADER_SIZE]
            )
            ops += 1
            nbytes += BLOCK_HEADER_SIZE
            block_len = BLOCK_HEADER_SIZE
            if count:
                payload_start = start + BLOCK_HEADER_SIZE
                payload_len = count * POSTING_SIZE
                if payload_start + payload_len > limit:
                    return _LIVE
                postings = np.frombuffer(
                    raw[payload_start : payload_start + payload_len],
                    dtype=_POSTING_DTYPE,
                )
                doc_parts.append(postings["doc"])
                factor_parts.append(factors[postings["tf"]])
                ops += 1
                nbytes += payload_len
                block_len += payload_len
            spans.append((start, block_len))
            block_rel = next_rel
        docs = (
            np.concatenate(doc_parts)
            if doc_parts
            else np.empty(0, dtype="<u4")
        )
        factor_values = (
            np.concatenate(factor_parts) if factor_parts else np.empty(0)
        )
        return (docs, factor_values, ops, nbytes, spans, [None])

    @staticmethod
    def _select_candidates(
        doc_chunks: List[np.ndarray],
        contrib_chunks: List[np.ndarray],
    ) -> List[Tuple[int, float]]:
        """Per-document relevance sums -> top CANDIDATE_POOL candidates.

        Mirrors the scalar dict accumulation bit for bit: ``np.add.at``
        adds contributions unbuffered in encounter order, exactly like
        repeated ``relevance[doc] += c``, and ``np.lexsort`` over
        ``(-sum, doc)`` reproduces the Python tuple sort (ties on equal
        sums, including ±0.0 which NumPy and Python both compare equal,
        break by ascending doc id). Two corruption-only corners where
        the vectorized result could diverge bitwise — a NaN sum (Python's
        ``sorted`` order then depends on comparison sequence) and an
        exactly-zero sum (the dict keeps a first-assigned ``-0.0``;
        ``0.0 + -0.0`` is ``+0.0``) — fall back to an exact replay of
        the scalar accumulation from the recorded chunks.
        """
        if not doc_chunks:
            return []
        docs = (
            np.concatenate(doc_chunks) if len(doc_chunks) > 1 else doc_chunks[0]
        )
        contribs = (
            np.concatenate(contrib_chunks)
            if len(contrib_chunks) > 1
            else contrib_chunks[0]
        )
        max_doc = int(docs.max())
        if max_doc < (1 << 20):
            # Dense accumulation: np.bincount adds weights in input order
            # exactly like repeated ``+=`` (and like np.add.at), but runs
            # in O(n + max_doc) instead of unique's O(n log n) sort.
            docs_int = docs.astype(np.intp)
            occupancy = np.bincount(docs_int)
            dense = np.bincount(docs_int, weights=contribs)
            touched = np.flatnonzero(occupancy)
            sums = dense[touched]
        else:
            touched, inverse = np.unique(docs, return_inverse=True)
            sums = np.zeros(touched.size)
            np.add.at(sums, inverse, contribs)
        if np.isnan(sums).any() or (sums == 0.0).any():
            relevance: dict = {}
            for chunk_docs, chunk_contribs in zip(doc_chunks, contrib_chunks):
                for doc_id, contribution in zip(
                    chunk_docs.tolist(), chunk_contribs.tolist()
                ):
                    if doc_id in relevance:
                        relevance[doc_id] += contribution
                    else:
                        relevance[doc_id] = contribution
            return sorted(
                relevance.items(), key=lambda item: (-item[1], item[0])
            )[:CANDIDATE_POOL]
        order = np.lexsort((touched, np.negative(sums)))[:CANDIDATE_POOL]
        return [(int(touched[i]), float(sums[i])) for i in order]

    def _find_term(self, term_id: int):
        """Binary search of the term table through simulated memory."""
        space = self._space
        table_addr = self._index_base + self._header.term_table_off
        lo = 0
        hi = self._header.term_count - 1
        probes = 0
        while lo <= hi:
            probes += 1
            if probes > 64:
                raise QueryTimeout("term-table binary search did not converge")
            mid = (lo + hi) // 2
            entry_addr = table_addr + mid * TERM_ENTRY_SIZE
            stored_term = space.read_u32(entry_addr)
            if stored_term == term_id:
                _term, rel_off, count, idf = _TERM_ENTRY.unpack(
                    space.read(entry_addr, TERM_ENTRY_SIZE)
                )
                return rel_off, count, idf
            if stored_term < term_id:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def _cache_slot_addr(self, query_hash: int) -> int:
        return self._cache_addr + (query_hash % CACHE_SLOTS) * CACHE_SLOT_SIZE

    def _cache_lookup(self, query_hash: int):
        space = self._space
        slot_addr = self._cache_slot_addr(query_hash)
        raw = space.read(slot_addr, CACHE_SLOT_SIZE)
        stored_hash, count, _pad = _CACHE_HEADER.unpack_from(raw, 0)
        if stored_hash != query_hash or count > TOP_K:
            return None
        results = [
            _RESULT.unpack_from(raw, 16 + index * 8) for index in range(count)
        ]
        return self._finalize(results)

    def _cache_store(self, query_hash: int, results: List[Tuple[int, float]]) -> None:
        raw = bytearray(CACHE_SLOT_SIZE)
        _CACHE_HEADER.pack_into(raw, 0, query_hash, len(results), 0)
        for index, (doc_id, score) in enumerate(results):
            try:
                _RESULT.pack_into(raw, 16 + index * 8, doc_id & 0xFFFFFFFF, score)
            except (OverflowError, ValueError):
                _RESULT.pack_into(raw, 16 + index * 8, doc_id & 0xFFFFFFFF, 0.0)
        self._space.write(self._cache_slot_addr(query_hash), bytes(raw))

    def _finalize(self, results) -> SearchResponse:
        """Attach snippet digests and quantize scores."""
        space = self._space
        response = []
        for doc_id, score in results:
            digest = space.read_u32(self._snippet_table_addr + doc_id * 4)
            response.append((doc_id, _quantize(score), digest))
        return tuple(response)
