"""WebSearch query engine operating on simulated memory.

Serves top-4 document queries against the inverted index mapped into the
private region, with ranking metadata (document popularity, snippet
digests) and a query cache living in the heap, and per-query scratch
state in a stack frame. Every piece of state the engine consults flows
through the simulated address space, so injected bit errors propagate to
query responses the same way the paper's debugger-injected errors did:

* a corrupted posting ``doc_id``/``tf`` or a stale cache entry yields an
  **incorrect response**;
* a corrupted posting-list offset or count typically walks off the index
  and raises a :class:`~repro.memory.errors.SegmentationFault` or a
  :class:`~repro.apps.base.QueryTimeout` — a **failed request**;
* corruption in rarely-read bytes is **masked**.
"""

from __future__ import annotations

import math
import struct
from typing import List, Sequence, Tuple

from repro.apps.base import QueryTimeout
from repro.apps.websearch.corpus import fnv1a64
from repro.apps.websearch.index_layout import (
    BLOCK_HEADER_SIZE,
    END_OF_CHAIN,
    MAX_BLOCKS_PER_TERM,
    MAX_POSTINGS_PER_TERM,
    POSTING_SIZE,
    TERM_ENTRY_SIZE,
    IndexHeader,
    iter_unpack_postings,
    unpack_block_header,
    unpack_header,
)
from repro.memory.address_space import AddressSpace
from repro.memory.stack import StackManager

#: Weight of the popularity signal in the final ranking score.
POPULARITY_WEIGHT = 0.3
#: Results returned per query (the paper's "top four most relevant").
TOP_K = 4
#: Relevance candidates re-ranked with popularity before truncating.
CANDIDATE_POOL = 8
#: Query-cache geometry (direct-mapped).
CACHE_SLOTS = 256
CACHE_SLOT_SIZE = 48  # u64 qhash, u32 count, u32 pad, 4 × (u32 doc, f32 score)

_TERM_ENTRY = struct.Struct("<IIIf")
_CACHE_HEADER = struct.Struct("<QII")
_RESULT = struct.Struct("<If")
_F32 = struct.Struct("<f")

#: One search response: tuple of (doc_id, score, snippet_digest).
SearchResponse = Tuple[Tuple[int, float, int], ...]


def _quantize(score: float) -> float:
    """Quantize a score to f32 then round — identical on all code paths.

    Keeps cache-hit and cache-miss responses bit-identical for the same
    underlying result, so correctness comparison never false-positives.
    """
    try:
        narrowed = _F32.unpack(_F32.pack(score))[0]
    except (OverflowError, ValueError):
        narrowed = float("inf") if score > 0 else float("-inf")
    return round(narrowed, 3)


class SearchEngine:
    """Top-4 ranked retrieval over the serialized inverted index."""

    def __init__(
        self,
        space: AddressSpace,
        index_base: int,
        doc_table_addr: int,
        snippet_table_addr: int,
        cache_addr: int,
        stack: StackManager,
    ) -> None:
        self._space = space
        self._index_base = index_base
        self._doc_table_addr = doc_table_addr
        self._snippet_table_addr = snippet_table_addr
        self._cache_addr = cache_addr
        self._stack = stack
        # The header is read once at startup — like a real server parsing
        # the shard header into locals — so later corruption of header
        # bytes is never consumed (a masked, never-read location).
        self._header: IndexHeader = unpack_header(
            space.peek(index_base, 24)
        )

    @property
    def header(self) -> IndexHeader:
        """The decoded index header."""
        return self._header

    # ------------------------------------------------------------------
    def search(self, terms: Sequence[int]) -> SearchResponse:
        """Serve one query: list of term ids -> top-4 response tuple."""
        query_hash = fnv1a64(b"".join(term.to_bytes(4, "little") for term in terms))
        cached = self._cache_lookup(query_hash)
        if cached is not None:
            return cached

        frame = self._stack.push(192)
        space = self._space
        try:
            term_count = min(len(terms), 4)
            space.write_u32(frame.slot(128), term_count)
            for position, term in enumerate(terms[:term_count]):
                entry = self._find_term(term)
                base = position * 16
                if entry is None:
                    space.write_u32(frame.slot(base), 0)
                    space.write_u32(frame.slot(base + 4), 0)
                    space.write_f32(frame.slot(base + 8), 0.0)
                else:
                    rel_off, count, idf = entry
                    space.write_u32(frame.slot(base), rel_off)
                    space.write_u32(frame.slot(base + 4), count)
                    space.write_f32(frame.slot(base + 8), idf)
                space.write_u32(frame.slot(base + 12), terms[position] if position < len(terms) else 0)

            relevance: dict = {}
            stored_count = space.read_u32(frame.slot(128))
            if stored_count > 4:
                raise QueryTimeout(
                    f"query dispatch table reports {stored_count} terms"
                )
            for position in range(stored_count):
                base = position * 16
                first_block_rel = space.read_u32(frame.slot(base))
                count = space.read_u32(frame.slot(base + 4))
                idf = space.read_f32(frame.slot(base + 8))
                if count == 0:
                    continue
                if count > MAX_POSTINGS_PER_TERM:
                    raise QueryTimeout(
                        f"posting list claims {count} entries "
                        f"(cap {MAX_POSTINGS_PER_TERM})"
                    )
                self._scan_postings(first_block_rel, idf, relevance)

            candidates = sorted(
                relevance.items(), key=lambda item: (-item[1], item[0])
            )[:CANDIDATE_POOL]
            ranked: List[Tuple[float, int]] = []
            for doc_id, score in candidates:
                popularity = space.read_f32(self._doc_table_addr + doc_id * 8)
                ranked.append((score + POPULARITY_WEIGHT * popularity, doc_id))
            ranked.sort(key=lambda item: (-item[0], item[1]))
            top = ranked[:TOP_K]

            # Stage the results through the stack frame (results buffer),
            # then read them back to build the response — consumed stack
            # data, as in a real call chain returning by reference.
            for slot_index, (score, doc_id) in enumerate(top):
                offset = 64 + slot_index * 8
                space.write_u32(frame.slot(offset), doc_id)
                space.write_f32(frame.slot(offset + 4), score)
            results: List[Tuple[int, float]] = []
            for slot_index in range(len(top)):
                offset = 64 + slot_index * 8
                doc_id = space.read_u32(frame.slot(offset))
                score = space.read_f32(frame.slot(offset + 4))
                results.append((doc_id, score))
        finally:
            self._stack.pop()

        self._cache_store(query_hash, results)
        return self._finalize(results)

    # ------------------------------------------------------------------
    def _scan_postings(self, first_block_rel: int, idf: float, relevance: dict) -> None:
        """Walk one term's posting-block chain, accumulating relevance.

        Block links are consumed on every hop, so a corrupted
        ``next_block_rel`` sends the scan into a guard gap
        (:class:`SegmentationFault`) or into garbage whose fields either
        fault (oversized reads) or wedge the walk
        (:class:`~repro.apps.base.QueryTimeout`) — the behaviour of a
        native index reader chasing a bad skip pointer.
        """
        space = self._space
        postings_base = self._index_base + self._header.postings_off
        block_rel = first_block_rel
        blocks_walked = 0
        while block_rel != END_OF_CHAIN:
            blocks_walked += 1
            if blocks_walked > MAX_BLOCKS_PER_TERM:
                raise QueryTimeout(
                    f"posting chain exceeded {MAX_BLOCKS_PER_TERM} blocks"
                )
            block_addr = postings_base + block_rel
            next_rel, count, _pad = unpack_block_header(
                space.read(block_addr, BLOCK_HEADER_SIZE)
            )
            if count:
                payload = space.read(
                    block_addr + BLOCK_HEADER_SIZE, count * POSTING_SIZE
                )
                for doc_id, term_frequency, _posting_pad in iter_unpack_postings(
                    payload
                ):
                    contribution = idf * (1.0 + math.log1p(term_frequency))
                    if doc_id in relevance:
                        relevance[doc_id] += contribution
                    else:
                        relevance[doc_id] = contribution
            block_rel = next_rel

    def _find_term(self, term_id: int):
        """Binary search of the term table through simulated memory."""
        space = self._space
        table_addr = self._index_base + self._header.term_table_off
        lo = 0
        hi = self._header.term_count - 1
        probes = 0
        while lo <= hi:
            probes += 1
            if probes > 64:
                raise QueryTimeout("term-table binary search did not converge")
            mid = (lo + hi) // 2
            entry_addr = table_addr + mid * TERM_ENTRY_SIZE
            stored_term = space.read_u32(entry_addr)
            if stored_term == term_id:
                _term, rel_off, count, idf = _TERM_ENTRY.unpack(
                    space.read(entry_addr, TERM_ENTRY_SIZE)
                )
                return rel_off, count, idf
            if stored_term < term_id:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def _cache_slot_addr(self, query_hash: int) -> int:
        return self._cache_addr + (query_hash % CACHE_SLOTS) * CACHE_SLOT_SIZE

    def _cache_lookup(self, query_hash: int):
        space = self._space
        slot_addr = self._cache_slot_addr(query_hash)
        raw = space.read(slot_addr, CACHE_SLOT_SIZE)
        stored_hash, count, _pad = _CACHE_HEADER.unpack_from(raw, 0)
        if stored_hash != query_hash or count > TOP_K:
            return None
        results = [
            _RESULT.unpack_from(raw, 16 + index * 8) for index in range(count)
        ]
        return self._finalize(results)

    def _cache_store(self, query_hash: int, results: List[Tuple[int, float]]) -> None:
        raw = bytearray(CACHE_SLOT_SIZE)
        _CACHE_HEADER.pack_into(raw, 0, query_hash, len(results), 0)
        for index, (doc_id, score) in enumerate(results):
            try:
                _RESULT.pack_into(raw, 16 + index * 8, doc_id & 0xFFFFFFFF, score)
            except (OverflowError, ValueError):
                _RESULT.pack_into(raw, 16 + index * 8, doc_id & 0xFFFFFFFF, 0.0)
        self._space.write(self._cache_slot_addr(query_hash), bytes(raw))

    def _finalize(self, results) -> SearchResponse:
        """Attach snippet digests and quantize scores."""
        space = self._space
        response = []
        for doc_id, score in results:
            digest = space.read_u32(self._snippet_table_addr + doc_id * 4)
            response.append((doc_id, _quantize(score), digest))
        return tuple(response)
