"""Builds the serialized inverted index from a corpus.

The builder produces the index *file* (bytes) that is stored in the
simulated backing store and then mapped into the private region — the
analogue of the paper's index-serving node loading its shard. Posting
lists are split into linked blocks of :data:`BLOCK_CAPACITY` entries
(see :mod:`index_layout` for why the links matter to fault fidelity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apps.websearch.corpus import Corpus
from repro.apps.websearch.index_layout import (
    BLOCK_CAPACITY,
    BLOCK_HEADER_SIZE,
    END_OF_CHAIN,
    HEADER_SIZE,
    POSTING_SIZE,
    TERM_ENTRY_SIZE,
    IndexHeader,
    pack_block_header,
    pack_header,
    pack_posting,
    pack_term_entry,
)


def _blocks_for(count: int) -> int:
    """Number of posting blocks needed for ``count`` postings."""
    return max(1, -(-count // BLOCK_CAPACITY))


@dataclass
class IndexStructureMap:
    """Byte spans (relative to the index image) of each data structure.

    Used by the structure-granularity characterization extension to
    sample faults into specific structures (term table, block headers,
    posting payloads) rather than whole regions.
    """

    term_table: Tuple[int, int] = (0, 0)
    block_headers: List[Tuple[int, int]] = field(default_factory=list)
    posting_payloads: List[Tuple[int, int]] = field(default_factory=list)

    def shifted(self, base: int) -> Dict[str, List[Tuple[int, int]]]:
        """Absolute spans given the image's load address."""
        return {
            "term_table": [
                (base + self.term_table[0], base + self.term_table[1])
            ],
            "posting_headers": [
                (base + start, base + end) for start, end in self.block_headers
            ],
            "posting_payload": [
                (base + start, base + end)
                for start, end in self.posting_payloads
            ],
        }


def build_index_with_map(corpus: Corpus) -> Tuple[bytes, IndexStructureMap]:
    """Serialize ``corpus``; also return the structure map."""
    inverted: Dict[int, List[Tuple[int, int]]] = corpus.postings()
    term_ids = sorted(inverted)
    term_table_off = HEADER_SIZE
    postings_off = term_table_off + len(term_ids) * TERM_ENTRY_SIZE
    structure = IndexStructureMap(term_table=(term_table_off, postings_off))

    term_table = bytearray()
    postings = bytearray()
    for term_id in term_ids:
        posting_list = inverted[term_id]
        first_block_rel = len(postings)
        term_table += pack_term_entry(
            term_id, first_block_rel, len(posting_list), corpus.idf(term_id)
        )
        chunks = [
            posting_list[i : i + BLOCK_CAPACITY]
            for i in range(0, len(posting_list), BLOCK_CAPACITY)
        ] or [[]]
        for index, chunk in enumerate(chunks):
            block_size = BLOCK_HEADER_SIZE + len(chunk) * POSTING_SIZE
            if index + 1 < len(chunks):
                next_rel = len(postings) + block_size
            else:
                next_rel = END_OF_CHAIN
            header_start = postings_off + len(postings)
            structure.block_headers.append(
                (header_start, header_start + BLOCK_HEADER_SIZE)
            )
            if chunk:
                structure.posting_payloads.append(
                    (
                        header_start + BLOCK_HEADER_SIZE,
                        header_start + block_size,
                    )
                )
            postings += pack_block_header(next_rel, len(chunk))
            for doc_id, term_frequency in chunk:
                postings += pack_posting(doc_id, min(term_frequency, 0xFFFF))

    header = IndexHeader(
        term_count=len(term_ids),
        doc_count=corpus.doc_count,
        term_table_off=term_table_off,
        postings_off=postings_off,
        postings_bytes=len(postings),
    )
    image = bytearray(pack_header(header))
    image += term_table
    image += postings
    if len(image) != postings_off + len(postings):
        raise AssertionError("index image layout accounting is inconsistent")
    return bytes(image), structure


def build_index_bytes(corpus: Corpus) -> bytes:
    """Serialize ``corpus`` into the block-chained index format."""
    image, _structure = build_index_with_map(corpus)
    return image


def expected_index_size(corpus: Corpus) -> int:
    """Size in bytes the serialized index will occupy."""
    inverted = corpus.postings()
    posting_total = sum(len(pl) for pl in inverted.values())
    block_total = sum(_blocks_for(len(pl)) for pl in inverted.values())
    return (
        HEADER_SIZE
        + len(inverted) * TERM_ENTRY_SIZE
        + posting_total * POSTING_SIZE
        + block_total * BLOCK_HEADER_SIZE
    )
