"""Synthetic document corpus for the WebSearch workload.

Stands in for the paper's production web index (several hundred GB on
disk, 36 GB cached in memory). Documents draw terms from a Zipfian
vocabulary — mirroring real text statistics, which is what gives
inverted indexes their characteristic skewed posting-list lengths — and
carry a popularity score used in ranking, matching the paper's expected
outputs ("number of documents returned, the relevance of the documents
to the query, and the popularity score of the documents").
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


#: Memo for :func:`fnv1a64` — workloads rehash a fixed population of
#: keys/values thousands of times per campaign. Bounded so adversarial
#: inputs cannot grow it without limit.
_FNV_CACHE: dict = {}
_FNV_CACHE_LIMIT = 1 << 16


def fnv1a64(data: bytes) -> int:
    """FNV-1a 64-bit hash — deterministic across processes (unlike hash())."""
    cached = _FNV_CACHE.get(data)
    if cached is not None:
        return cached
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    if len(_FNV_CACHE) < _FNV_CACHE_LIMIT:
        _FNV_CACHE[bytes(data)] = value
    return value


class ZipfSampler:
    """Samples integers in [0, n) with probability ∝ 1/(rank+1)^s."""

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if s < 0:
            raise ValueError(f"skew must be non-negative, got {s}")
        self.n = n
        self.s = s
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = 0.0
        self._cumulative: List[float] = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cumulative, rng.random() * self._total)


@dataclass
class Document:
    """One synthetic document: term frequencies plus ranking metadata."""

    doc_id: int
    term_frequencies: Dict[int, int]
    popularity: float
    snippet_digest: int

    @property
    def length(self) -> int:
        """Total term occurrences."""
        return sum(self.term_frequencies.values())


@dataclass
class Corpus:
    """A generated corpus with its vocabulary statistics."""

    vocabulary_size: int
    documents: List[Document] = field(default_factory=list)

    @property
    def doc_count(self) -> int:
        """Number of documents."""
        return len(self.documents)

    def postings(self) -> Dict[int, List[Tuple[int, int]]]:
        """Inverted lists: term -> [(doc_id, term frequency)], doc-ordered."""
        inverted: Dict[int, List[Tuple[int, int]]] = {}
        for document in self.documents:
            for term, frequency in document.term_frequencies.items():
                inverted.setdefault(term, []).append((document.doc_id, frequency))
        for posting_list in inverted.values():
            posting_list.sort()
        return inverted

    def idf(self, term: int) -> float:
        """Inverse document frequency with add-one smoothing."""
        document_frequency = sum(
            1 for document in self.documents if term in document.term_frequencies
        )
        return math.log((1 + self.doc_count) / (1 + document_frequency)) + 1.0


def generate_corpus(
    rng: random.Random,
    vocabulary_size: int = 1500,
    doc_count: int = 1200,
    min_doc_length: int = 40,
    max_doc_length: int = 120,
    zipf_skew: float = 1.05,
) -> Corpus:
    """Generate a deterministic synthetic corpus.

    Popularity follows a heavy-tailed distribution so that the ranking
    signal (relevance + popularity) resembles web search; snippet digests
    are deterministic per document and stand in for result text.
    """
    if min_doc_length <= 0 or max_doc_length < min_doc_length:
        raise ValueError("document length bounds must satisfy 0 < min <= max")
    sampler = ZipfSampler(vocabulary_size, zipf_skew)
    corpus = Corpus(vocabulary_size=vocabulary_size)
    for doc_id in range(doc_count):
        length = rng.randint(min_doc_length, max_doc_length)
        term_frequencies: Dict[int, int] = {}
        for _ in range(length):
            term = sampler.sample(rng)
            term_frequencies[term] = term_frequencies.get(term, 0) + 1
        popularity = round(rng.paretovariate(1.8), 4)
        snippet_digest = fnv1a64(f"doc-{doc_id}".encode()) & 0xFFFFFFFF
        corpus.documents.append(
            Document(
                doc_id=doc_id,
                term_frequencies=term_frequencies,
                popularity=popularity,
                snippet_digest=snippet_digest,
            )
        )
    return corpus


def generate_query_trace(
    corpus: Corpus,
    rng: random.Random,
    query_count: int = 600,
    min_terms: int = 1,
    max_terms: int = 4,
    zipf_skew: float = 0.9,
) -> List[List[int]]:
    """Generate a Zipfian query trace (the paper used a 200 k real trace)."""
    if query_count <= 0:
        raise ValueError(f"query_count must be positive, got {query_count}")
    if not 1 <= min_terms <= max_terms:
        raise ValueError("term count bounds must satisfy 1 <= min <= max")
    sampler = ZipfSampler(corpus.vocabulary_size, zipf_skew)
    trace = []
    for _ in range(query_count):
        term_count = rng.randint(min_terms, max_terms)
        terms: List[int] = []
        while len(terms) < term_count:
            term = sampler.sample(rng)
            if term not in terms:
                terms.append(term)
        trace.append(terms)
    return trace
