"""Client driver implementing the paper's crash-detection rule.

The paper (Figure 2, step 4) deems an application crashed "if it fails
to respond to ≥ 50 % of the client's requests". :class:`ClientDriver`
replays a set of queries against a workload, compares responses to the
golden outputs, and reports failed / incorrect / correct counts plus the
crash verdict and the time at which each anomaly was first observed
(feeding the Figure 5a temporal analysis).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence

from repro.apps.base import FatalWorkloadError, Workload, WorkloadError
from repro.memory.errors import SimulatedMemoryError

#: Failures that kill the whole process rather than one request. Every
#: simulated-memory fault is fatal, matching native semantics: SIGSEGV
#: (segmentation/protection fault), a glibc heap abort (corrupted block
#: header), OOM, or stack overflow terminates the server — a request
#: handler cannot catch them. Only application-level errors
#: (``WorkloadError``, e.g. a request deadline expiring on a wedged
#: loop) are survivable per-request failures.
FATAL_ERRORS = (FatalWorkloadError, SimulatedMemoryError)


@dataclass
class ClientReport:
    """Result of one client session against a (possibly faulty) server."""

    attempted: int = 0
    correct: int = 0
    incorrect: int = 0
    failed: int = 0  # exceptions / timeouts — no response produced
    fatal: bool = False  # process-killing failure observed
    first_incorrect_time: Optional[int] = None
    first_failure_time: Optional[int] = None
    incorrect_queries: List[int] = field(default_factory=list)

    @property
    def responded(self) -> int:
        """Requests that produced any response."""
        return self.correct + self.incorrect

    def crashed(self, failure_fraction: float = 0.5) -> bool:
        """The paper's crash rule: fatal error or >=50 % failed requests."""
        if self.fatal:
            return True
        if self.attempted == 0:
            return False
        return self.failed / self.attempted >= failure_fraction

    @property
    def incorrect_fraction(self) -> float:
        """Incorrect responses as a fraction of attempted requests."""
        if self.attempted == 0:
            return 0.0
        return self.incorrect / self.attempted


class ClientDriver:
    """Replays queries and scores responses against golden outputs."""

    def __init__(
        self,
        workload: Workload,
        golden: Sequence[Hashable],
        failure_fraction: float = 0.5,
    ) -> None:
        if len(golden) != workload.query_count:
            raise ValueError(
                f"golden responses ({len(golden)}) do not cover the "
                f"workload trace ({workload.query_count} queries)"
            )
        if not 0.0 < failure_fraction <= 1.0:
            raise ValueError(
                f"failure_fraction must be in (0, 1], got {failure_fraction}"
            )
        self._workload = workload
        self._golden = list(golden)
        self._failure_fraction = failure_fraction

    def run(
        self,
        query_indices: Sequence[int],
        stop_on_fatal: bool = True,
    ) -> ClientReport:
        """Issue the given queries in order; returns the session report."""
        report = ClientReport()
        space = self._workload.space
        for query_index in query_indices:
            report.attempted += 1
            try:
                response = self._workload.execute(query_index)
            except FATAL_ERRORS:
                report.fatal = True
                report.failed += 1
                if report.first_failure_time is None:
                    report.first_failure_time = space.time
                if stop_on_fatal:
                    break
                continue
            except WorkloadError:
                report.failed += 1
                if report.first_failure_time is None:
                    report.first_failure_time = space.time
                continue
            if response == self._golden[query_index]:
                report.correct += 1
            else:
                report.incorrect += 1
                report.incorrect_queries.append(query_index)
                if report.first_incorrect_time is None:
                    report.first_incorrect_time = space.time
        return report

    def run_random(
        self, count: int, rng: random.Random, stop_on_fatal: bool = True
    ) -> ClientReport:
        """Issue ``count`` queries sampled uniformly from the trace."""
        indices = [
            rng.randrange(self._workload.query_count) for _ in range(count)
        ]
        return self.run(indices, stop_on_fatal=stop_on_fatal)

    @property
    def failure_fraction(self) -> float:
        """Crash threshold used by :meth:`ClientReport.crashed`."""
        return self._failure_fraction
