"""Workload interface shared by the three data-intensive applications.

A workload owns a simulated :class:`~repro.memory.AddressSpace`, builds
its data structures inside it, and serves *queries* whose responses are
hashable values. The characterization campaign (paper Figure 2) records
fault-free golden responses once, then replays queries after injecting
errors and classifies the outcomes.

Failure semantics mirror a real native service:

* any :class:`~repro.memory.errors.SimulatedMemoryError` (segmentation
  or protection fault, heap-corruption abort, OOM, stack overflow) or
  :class:`FatalWorkloadError` kills the whole process — SIGSEGV cannot
  be caught per request — so the session counts as a crash;
* an application-level :class:`WorkloadError` (e.g. a
  :class:`QueryTimeout` from a request deadline firing on a corrupted
  loop bound) fails only that request; the client crash rule (≥50 %
  failed requests, paper §IV-A step 4) decides whether accumulated
  failures amount to a crash.
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Optional, Tuple

from repro.memory.address_space import AddressSpace, MemorySnapshot
from repro.memory.regions import Region
from repro.utils.timescale import TimeScale


class WorkloadError(Exception):
    """Base class for application-level failures during a query."""


class QueryTimeout(WorkloadError):
    """A query exceeded its operation budget (e.g. corrupted loop bound).

    The client treats a timed-out request the same as a failed one; the
    paper excludes benign performance timeouts, which do not occur in
    the deterministic simulation — any timeout here is error-induced.
    """


class FatalWorkloadError(WorkloadError):
    """A failure that takes down the whole process, not just one query."""


class Workload(abc.ABC):
    """A data-intensive application running on simulated memory."""

    #: Human-readable application name (e.g. ``"WebSearch"``).
    name: str = "abstract"

    def __init__(self) -> None:
        self._space: Optional[AddressSpace] = None
        self._snapshot: Optional[MemorySnapshot] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self) -> None:
        """Allocate the address space and populate all data structures.

        Implementations must set ``self._space`` and leave the
        application ready to serve queries.
        """

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._space is not None

    @property
    def space(self) -> AddressSpace:
        """The application's address space.

        Raises:
            RuntimeError: if :meth:`build` has not been called.
        """
        if self._space is None:
            raise RuntimeError(f"{self.name}: build() must be called first")
        return self._space

    def checkpoint(self) -> None:
        """Record the pristine post-build memory image for fast resets."""
        self._snapshot = self.space.snapshot()
        self.on_checkpoint()

    def on_checkpoint(self) -> None:
        """Hook: capture Python-side state (e.g. allocator bookkeeping)
        that must be restored together with the memory snapshot."""

    def reset(self) -> None:
        """Restore pristine memory (application restart, Figure 2 step 1).

        Raises:
            RuntimeError: if :meth:`checkpoint` was never called.
        """
        if self._snapshot is None:
            raise RuntimeError(f"{self.name}: checkpoint() must be called first")
        self.space.restore(self._snapshot)
        self.on_reset()

    def on_reset(self) -> None:
        """Hook for subclasses to reset Python-side state after restore."""

    @property
    def checkpoint_image(self) -> Optional[bytes]:
        """Raw memory bytes of the pristine checkpoint (None before it).

        The batched serve data plane seeds its rolling golden image from
        this — the byte-exact state live execution returns to at every
        epoch reset.
        """
        return self._snapshot.mem if self._snapshot is not None else None

    def progress_state(self) -> Optional[Hashable]:
        """Python-side state that advances with the query cursor.

        Counterpart of :meth:`on_checkpoint`/:meth:`on_reset` for
        *mid-trace* positions: whatever bookkeeping those hooks capture
        and restore at the checkpoint must be observable here at any
        query index, by value, so the batched serve data plane can prove
        "this workload is exactly where the golden replay was" before
        fusing a pristine run — memory comparison alone cannot see
        Python-side bookkeeping (a heap free changes the allocator
        without a single store). Workloads with no such state return
        ``None`` (the default).
        """
        return None

    def restore_progress(self, state: Optional[Hashable]) -> None:
        """Restore Python-side state captured by :meth:`progress_state`.

        Called by the batched data plane after serving a fused run, with
        the state recorded at the run's end index. The default is a
        no-op, matching the default :meth:`progress_state` of ``None``.
        """

    # ------------------------------------------------------------------
    # Query serving
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def query_count(self) -> int:
        """Number of distinct queries in the workload trace."""

    @abc.abstractmethod
    def execute(self, query_index: int) -> Hashable:
        """Serve query ``query_index`` and return its response.

        May raise :class:`~repro.memory.errors.SimulatedMemoryError`,
        :class:`QueryTimeout` (failed request), or
        :class:`FatalWorkloadError` (process death).
        """

    @property
    @abc.abstractmethod
    def time_scale(self) -> TimeScale:
        """Conversion from this workload's logical clock to minutes."""

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def golden_responses(self) -> List[Hashable]:
        """Fault-free responses for every query (run before injection)."""
        return [self.execute(index) for index in range(self.query_count)]

    def region_sizes(self) -> dict:
        """Bytes per region name — the workload's Table 3 row."""
        return {region.name: region.size for region in self.space.regions}

    def sample_ranges(self, region: Region) -> List[Tuple[int, int]]:
        """(base, end) spans holding live application data in ``region``.

        The injection campaign samples fault addresses from these spans —
        the analogue of the paper's ``getMappedAddr`` returning only
        addresses where the program has data. The default is the whole
        region; workloads override this for regions with known live
        subsets (allocated heap blocks, the active stack window).
        """
        return [(region.base, region.end)]

    @staticmethod
    def active_stack_window(region: Region, depth_bytes: int) -> List[Tuple[int, int]]:
        """Helper: the top ``depth_bytes`` of a downward-growing stack."""
        base = max(region.base, region.end - depth_bytes)
        return [(base, region.end)]
