"""The three data-intensive workloads characterized in the paper."""

from repro.apps.base import (
    FatalWorkloadError,
    QueryTimeout,
    Workload,
    WorkloadError,
)
from repro.apps.clients import ClientDriver, ClientReport
from repro.apps.graphmining import GraphMining
from repro.apps.kvstore import KVStoreWorkload
from repro.apps.websearch import WebSearch

__all__ = [
    "FatalWorkloadError",
    "QueryTimeout",
    "Workload",
    "WorkloadError",
    "ClientDriver",
    "ClientReport",
    "GraphMining",
    "KVStoreWorkload",
    "WebSearch",
]
