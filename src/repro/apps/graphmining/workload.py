"""The GraphLab-like graph-mining workload (paper §V-A, third workload).

Each "query" is one full TunkRank job over the follower graph; the
response is the top-100 most influential users with quantized scores —
the paper's expected output ("the scores of the 100 most influential
users"). A failed sweep (segfault / wedged CSR) fails that job; the
client crash rule then decides whether the application counts as
crashed, mirroring a job scheduler re-submitting failed jobs.

Regions per Table 3's GraphLab row: heap only (4 GB in the paper —
graph + vertex values) plus a small stack.
"""

from __future__ import annotations

import struct
from typing import Hashable, List, Optional, Tuple

from repro.apps.base import Workload
from repro.apps.graphmining.framework import SyncEngine
from repro.apps.graphmining.graph import CsrGraph, generate_follower_graph
from repro.apps.graphmining.tunkrank import TunkRank
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.regions import standard_layout
from repro.memory.stack import StackManager
from repro.utils.timescale import TimeScale
from repro.utils.rng import SeedSequenceFactory

#: Jobs per simulated minute (TunkRank batches are minutes-long in
#: production; scaled with the rest of the simulation).
JOBS_PER_MINUTE = 2.0
TOP_INFLUENCERS = 100

_F32 = struct.Struct("<f")


def _quantize(score: float) -> float:
    """f32-narrow then round, identically on every code path."""
    try:
        narrowed = _F32.unpack(_F32.pack(score))[0]
    except (OverflowError, ValueError):
        narrowed = float("inf") if score > 0 else float("-inf")
    return round(narrowed, 4)


class GraphMining(Workload):
    """TunkRank over a synthetic follower graph on simulated memory."""

    name = "GraphLab"

    def __init__(
        self,
        seed: int = 3456,
        vertex_count: int = 600,
        edges_per_vertex: int = 12,
        iterations: int = 6,
        jobs: int = 3,
        heap_size: int = 131072,
        stack_size: int = 16384,
    ) -> None:
        super().__init__()
        self._seeds = SeedSequenceFactory(seed).child("graphmining")
        self._vertex_count = vertex_count
        self._edges_per_vertex = edges_per_vertex
        self._iterations = iterations
        self._jobs = jobs
        self._heap_size = heap_size
        self._stack_size = stack_size
        self.csr: Optional[CsrGraph] = None
        self.engine: Optional[SyncEngine] = None
        self.program = TunkRank()
        self._units_per_job: float = 1000.0

    # ------------------------------------------------------------------
    def build(self) -> None:
        """Generate the graph and serialize it into the heap."""
        graph = generate_follower_graph(
            self._seeds.stream("graph"),
            vertex_count=self._vertex_count,
            edges_per_vertex=self._edges_per_vertex,
        )
        layout = standard_layout(
            heap_size=self._heap_size, stack_size=self._stack_size
        )
        space = AddressSpace(layout)
        self._space = space
        allocator = HeapAllocator(space, space.region_named("heap"))
        self._allocator = allocator
        stack = StackManager(space, space.region_named("stack"))
        self.csr = CsrGraph(space, allocator, graph)
        self.engine = SyncEngine(space, allocator, self.csr, stack)
        self._calibrate_clock()

    def _calibrate_clock(self) -> None:
        start = self.space.time
        self._run_job()
        self._units_per_job = max(1.0, float(self.space.time - start))

    # ------------------------------------------------------------------
    def _run_job(self) -> Tuple[Tuple[int, float], ...]:
        values = self.engine.run(self.program, iterations=self._iterations)
        ranking: List[Tuple[float, int]] = [
            (value, vertex) for vertex, value in enumerate(values)
        ]
        # NaNs sort unpredictably; replace with -inf so ordering is total.
        ranking = [
            (value if value == value else float("-inf"), vertex)
            for value, vertex in ranking
        ]
        ranking.sort(key=lambda item: (-item[0], item[1]))
        top = ranking[: min(TOP_INFLUENCERS, len(ranking))]
        return tuple((vertex, _quantize(value)) for value, vertex in top)

    @property
    def query_count(self) -> int:
        """Number of TunkRank jobs in the trace."""
        return self._jobs

    def execute(self, query_index: int) -> Hashable:
        """Run one TunkRank job; the response is the top-100 ranking."""
        if self.engine is None:
            raise RuntimeError("GraphLab: build() must be called first")
        if not 0 <= query_index < self._jobs:
            raise IndexError(f"job index {query_index} out of range")
        return self._run_job()

    @property
    def time_scale(self) -> TimeScale:
        """Logical-clock units per simulated minute at the modeled load."""
        return TimeScale(units_per_minute=self._units_per_job * JOBS_PER_MINUTE)

    def sample_ranges(self, region):
        """Live-data spans: allocated heap blocks, active stack top."""
        if region.name == "heap":
            return self._allocator.live_spans()
        if region.name == "stack":
            return self.active_stack_window(region, 128)
        return [(region.base, region.end)]
