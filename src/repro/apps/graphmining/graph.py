"""Synthetic follower graph and its CSR representation in simulated memory.

Stands in for the paper's 1.3 GB / 11 M-node Twitter follower graph. The
generator produces a directed power-law graph (preferential attachment
on in-degree, like real follower networks); :class:`CsrGraph` serializes
it into the simulated heap as compressed-sparse-row arrays:

* ``offsets``  — u32 × (N+1): follower-list boundaries per vertex,
* ``edges``    — u32 × E: follower vertex ids,
* ``out_degree`` — u32 × N: following counts (TunkRank normalizer).

All three arrays are read-only after load (like GraphLab's immutable
graph store), so errors in them persist until consumed.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator


@dataclass
class FollowerGraph:
    """Adjacency-list follower graph: ``followers[u]`` follow user u."""

    vertex_count: int
    followers: List[List[int]] = field(default_factory=list)
    out_degree: List[int] = field(default_factory=list)

    @property
    def edge_count(self) -> int:
        """Total directed follow edges."""
        return sum(len(follower_list) for follower_list in self.followers)


def generate_follower_graph(
    rng: random.Random,
    vertex_count: int = 600,
    edges_per_vertex: int = 12,
) -> FollowerGraph:
    """Preferential-attachment follower graph (heavy-tailed in-degree).

    Every vertex follows ``edges_per_vertex`` others, preferring already-
    popular targets — so in-degree (follower count) is power-law while
    out-degree stays bounded, as in real social graphs. Every vertex has
    out-degree >= 1, which TunkRank's normalization requires.
    """
    if vertex_count < 2:
        raise ValueError(f"vertex_count must be >= 2, got {vertex_count}")
    if edges_per_vertex < 1:
        raise ValueError(f"edges_per_vertex must be >= 1, got {edges_per_vertex}")
    followers: List[List[int]] = [[] for _ in range(vertex_count)]
    out_degree = [0] * vertex_count
    # Popularity urn: vertices appear once plus once per follower gained.
    urn = list(range(vertex_count))
    for follower in range(vertex_count):
        count = min(edges_per_vertex, vertex_count - 1)
        chosen: set = set()
        attempts = 0
        while len(chosen) < count and attempts < count * 20:
            attempts += 1
            target = urn[rng.randrange(len(urn))]
            if target != follower and target not in chosen:
                chosen.add(target)
        for target in sorted(chosen):
            followers[target].append(follower)
            out_degree[follower] += 1
            urn.append(target)
    # Guarantee out-degree >= 1 even in degenerate corners.
    for vertex in range(vertex_count):
        if out_degree[vertex] == 0:
            target = (vertex + 1) % vertex_count
            followers[target].append(vertex)
            out_degree[vertex] = 1
    for follower_list in followers:
        follower_list.sort()
    return FollowerGraph(
        vertex_count=vertex_count, followers=followers, out_degree=out_degree
    )


@dataclass(frozen=True)
class SweepPlan:
    """Precomputed gather of a whole pristine sweep.

    ``counts[v]`` is vertex v's follower count and ``gathered`` the
    concatenated follower ids of every non-empty vertex — exactly what a
    vertex-at-a-time sweep would decode when the CSR arrays hold their
    build-time bytes. ``block_reads`` counts the non-empty vertices (one
    follower-block load each) for deferred accounting.
    """

    counts: List[int]
    gathered: np.ndarray
    block_reads: int


class CsrGraph:
    """CSR arrays serialized into the simulated heap."""

    def __init__(
        self,
        space: AddressSpace,
        allocator: HeapAllocator,
        graph: FollowerGraph,
    ) -> None:
        self._space = space
        self.vertex_count = graph.vertex_count
        self.edge_count = graph.edge_count
        self.offsets_addr = allocator.malloc((graph.vertex_count + 1) * 4)
        self.edges_addr = allocator.malloc(max(1, graph.edge_count) * 4)
        self.out_degree_addr = allocator.malloc(graph.vertex_count * 4)

        offsets = [0]
        edge_values: List[int] = []
        for follower_list in graph.followers:
            edge_values.extend(follower_list)
            offsets.append(len(edge_values))
        space.write(
            self.offsets_addr,
            struct.pack(f"<{len(offsets)}I", *offsets),
        )
        edges_raw = b""
        if edge_values:
            edges_raw = struct.pack(f"<{len(edge_values)}I", *edge_values)
            space.write(self.edges_addr, edges_raw)
        space.write(
            self.out_degree_addr,
            struct.pack(f"<{graph.vertex_count}I", *graph.out_degree),
        )
        # Pristine follower blocks, keyed by (start, count). The sweep
        # fast path compares a freshly read block against the pristine
        # bytes: on a match the pre-decoded id array is reusable and all
        # ids are known in-range; any corruption (bit flip, stuck cell,
        # disturbance) misses and falls back to the exact scalar gather.
        self._clean_blocks: Dict[Tuple[int, int], Tuple[bytes, np.ndarray]] = {}
        for vertex in range(graph.vertex_count):
            start, end = offsets[vertex], offsets[vertex + 1]
            count = end - start
            if count:
                block = edges_raw[start * 4 : end * 4]
                ids = np.frombuffer(block, dtype="<u4")
                if int(ids.max()) < graph.vertex_count:
                    self._clean_blocks[(start, count)] = (block, ids)
        # Whole-sweep fusion state: the build-time bytes of both arrays,
        # the precomputed gather a pristine sweep replays, and the last
        # content versions at which the bytes were re-verified.
        self._offsets_raw = struct.pack(f"<{len(offsets)}I", *offsets)
        self._edges_raw = edges_raw
        all_ids = np.frombuffer(edges_raw, dtype="<u4")
        plan: Optional[SweepPlan] = None
        if edge_values == [] or int(all_ids.max()) < graph.vertex_count:
            counts = [
                offsets[v + 1] - offsets[v] for v in range(graph.vertex_count)
            ]
            plan = SweepPlan(
                counts=counts,
                gathered=all_ids,
                block_reads=sum(1 for count in counts if count),
            )
        self._plan = plan
        self._verified_versions: Optional[Tuple[int, int]] = None

    def pristine_plan(self) -> Optional[SweepPlan]:
        """The fused whole-sweep gather iff both CSR arrays are pristine.

        Pristine means: the spans are clean (no fault, watchpoint, or
        disturbance interaction — checked via the space's guard logic)
        and their stored bytes equal the build-time bytes. The byte
        comparison is keyed on the regions' content versions, so it only
        reruns after a mutation somewhere in those regions. Returns None
        whenever any of this fails; callers then take the exact per-vertex
        path.
        """
        plan = self._plan
        if plan is None:
            return None
        space = self._space
        offsets_len = len(self._offsets_raw)
        edges_len = len(self._edges_raw)
        if not space.span_is_clean(self.offsets_addr, offsets_len):
            return None
        if edges_len and not space.span_is_clean(self.edges_addr, edges_len):
            return None
        versions = (
            space.version_at(self.offsets_addr),
            space.version_at(self.edges_addr),
        )
        if versions != self._verified_versions:
            if space.peek(self.offsets_addr, offsets_len) != self._offsets_raw:
                return None
            if edges_len and (
                space.peek(self.edges_addr, edges_len) != self._edges_raw
            ):
                return None
            self._verified_versions = versions
        return plan

    def charge_sweep(self, plan: SweepPlan) -> None:
        """Settle the deferred accounting of one fused pristine sweep:
        one offset-pair read per vertex plus one block read per non-empty
        follower list, exactly as the per-vertex sweep would issue."""
        space = self._space
        n = self.vertex_count
        space.charge_reads(self.offsets_addr, 2 * n, 8 * n)
        if plan.block_reads:
            space.charge_reads(
                self.edges_addr, plan.block_reads, 4 * self.edge_count
            )

    def follower_slice(self, vertex: int):
        """Read this vertex's follower-list bounds (two u32 loads)."""
        return self._space.read_u32_pair(self.offsets_addr + vertex * 4)

    def clean_followers(self, start: int, count: int, block: bytes) -> Optional[np.ndarray]:
        """Pre-decoded follower ids iff ``block`` is bit-for-bit pristine.

        Returns None when the slice is unknown or the block bytes differ
        from the bytes written at build time (i.e. observably corrupted),
        in which case the caller must take the exact scalar path.
        """
        cached = self._clean_blocks.get((start, count))
        if cached is not None and cached[0] == block:
            return cached[1]
        return None

    def read_followers_block(self, start: int, count: int) -> bytes:
        """Block-read ``count`` follower ids beginning at edge ``start``."""
        return self._space.read(self.edges_addr + start * 4, count * 4)

    def read_out_degrees(self) -> List[int]:
        """Stream the whole out-degree array (one block load)."""
        raw = self._space.read(self.out_degree_addr, self.vertex_count * 4)
        return list(struct.unpack(f"<{self.vertex_count}I", raw))
