"""Synthetic follower graph and its CSR representation in simulated memory.

Stands in for the paper's 1.3 GB / 11 M-node Twitter follower graph. The
generator produces a directed power-law graph (preferential attachment
on in-degree, like real follower networks); :class:`CsrGraph` serializes
it into the simulated heap as compressed-sparse-row arrays:

* ``offsets``  — u32 × (N+1): follower-list boundaries per vertex,
* ``edges``    — u32 × E: follower vertex ids,
* ``out_degree`` — u32 × N: following counts (TunkRank normalizer).

All three arrays are read-only after load (like GraphLab's immutable
graph store), so errors in them persist until consumed.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import List

from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator


@dataclass
class FollowerGraph:
    """Adjacency-list follower graph: ``followers[u]`` follow user u."""

    vertex_count: int
    followers: List[List[int]] = field(default_factory=list)
    out_degree: List[int] = field(default_factory=list)

    @property
    def edge_count(self) -> int:
        """Total directed follow edges."""
        return sum(len(follower_list) for follower_list in self.followers)


def generate_follower_graph(
    rng: random.Random,
    vertex_count: int = 600,
    edges_per_vertex: int = 12,
) -> FollowerGraph:
    """Preferential-attachment follower graph (heavy-tailed in-degree).

    Every vertex follows ``edges_per_vertex`` others, preferring already-
    popular targets — so in-degree (follower count) is power-law while
    out-degree stays bounded, as in real social graphs. Every vertex has
    out-degree >= 1, which TunkRank's normalization requires.
    """
    if vertex_count < 2:
        raise ValueError(f"vertex_count must be >= 2, got {vertex_count}")
    if edges_per_vertex < 1:
        raise ValueError(f"edges_per_vertex must be >= 1, got {edges_per_vertex}")
    followers: List[List[int]] = [[] for _ in range(vertex_count)]
    out_degree = [0] * vertex_count
    # Popularity urn: vertices appear once plus once per follower gained.
    urn = list(range(vertex_count))
    for follower in range(vertex_count):
        count = min(edges_per_vertex, vertex_count - 1)
        chosen: set = set()
        attempts = 0
        while len(chosen) < count and attempts < count * 20:
            attempts += 1
            target = urn[rng.randrange(len(urn))]
            if target != follower and target not in chosen:
                chosen.add(target)
        for target in sorted(chosen):
            followers[target].append(follower)
            out_degree[follower] += 1
            urn.append(target)
    # Guarantee out-degree >= 1 even in degenerate corners.
    for vertex in range(vertex_count):
        if out_degree[vertex] == 0:
            target = (vertex + 1) % vertex_count
            followers[target].append(vertex)
            out_degree[vertex] = 1
    for follower_list in followers:
        follower_list.sort()
    return FollowerGraph(
        vertex_count=vertex_count, followers=followers, out_degree=out_degree
    )


class CsrGraph:
    """CSR arrays serialized into the simulated heap."""

    def __init__(
        self,
        space: AddressSpace,
        allocator: HeapAllocator,
        graph: FollowerGraph,
    ) -> None:
        self._space = space
        self.vertex_count = graph.vertex_count
        self.edge_count = graph.edge_count
        self.offsets_addr = allocator.malloc((graph.vertex_count + 1) * 4)
        self.edges_addr = allocator.malloc(max(1, graph.edge_count) * 4)
        self.out_degree_addr = allocator.malloc(graph.vertex_count * 4)

        offsets = [0]
        edge_values: List[int] = []
        for follower_list in graph.followers:
            edge_values.extend(follower_list)
            offsets.append(len(edge_values))
        space.write(
            self.offsets_addr,
            struct.pack(f"<{len(offsets)}I", *offsets),
        )
        if edge_values:
            space.write(
                self.edges_addr,
                struct.pack(f"<{len(edge_values)}I", *edge_values),
            )
        space.write(
            self.out_degree_addr,
            struct.pack(f"<{graph.vertex_count}I", *graph.out_degree),
        )

    def follower_slice(self, vertex: int):
        """Read this vertex's follower-list bounds (two u32 loads)."""
        start = self._space.read_u32(self.offsets_addr + vertex * 4)
        end = self._space.read_u32(self.offsets_addr + (vertex + 1) * 4)
        return start, end

    def read_followers_block(self, start: int, count: int) -> bytes:
        """Block-read ``count`` follower ids beginning at edge ``start``."""
        return self._space.read(self.edges_addr + start * 4, count * 4)

    def read_out_degrees(self) -> List[int]:
        """Stream the whole out-degree array (one block load)."""
        raw = self._space.read(self.out_degree_addr, self.vertex_count * 4)
        return list(struct.unpack(f"<{self.vertex_count}I", raw))
