"""GraphLab-like graph-mining framework and TunkRank workload."""

from repro.apps.graphmining.framework import SyncEngine, VertexProgram
from repro.apps.graphmining.graph import (
    CsrGraph,
    FollowerGraph,
    generate_follower_graph,
)
from repro.apps.graphmining.tunkrank import TunkRank
from repro.apps.graphmining.workload import GraphMining

__all__ = [
    "SyncEngine",
    "VertexProgram",
    "CsrGraph",
    "FollowerGraph",
    "generate_follower_graph",
    "TunkRank",
    "GraphMining",
]
