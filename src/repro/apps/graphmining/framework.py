"""Minimal GraphLab-style synchronous vertex-program engine.

Implements the subset of the GraphLab abstraction the TunkRank workload
needs: per-vertex values double-buffered in simulated memory, a
synchronous gather-apply iteration over the CSR graph, and a fixed
iteration budget (deterministic across runs). Vertex values are
re-written every iteration — the overwrite traffic that makes GraphLab's
mutable state self-healing against soft errors in the paper's taxonomy.
"""

from __future__ import annotations

import abc
import struct
from typing import List

import numpy as np

from repro.apps.base import QueryTimeout
from repro.apps.graphmining.graph import CsrGraph
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.stack import StackManager


class VertexProgram(abc.ABC):
    """One synchronous vertex computation."""

    @abc.abstractmethod
    def initial_value(self, vertex: int) -> float:
        """Initial vertex value."""

    @abc.abstractmethod
    def compute(
        self,
        vertex: int,
        follower_values,
        follower_out_degrees,
    ) -> float:
        """New value of ``vertex`` from its followers' values/degrees."""

    # Programs may additionally provide
    #
    #     compute_batch(values, degrees, follower_ids, counts) -> list[float]
    #
    # over float64 arrays of all current values/degrees, the concatenated
    # in-range follower ids of the clean vertices, and the per-vertex
    # segment lengths. It must return, per segment, exactly the float
    # ``compute`` would — the engine only batches vertices whose follower
    # blocks are bit-for-bit pristine, and falls back to ``compute``
    # otherwise (and entirely, when ``compute_batch`` is absent).


class SyncEngine:
    """Runs a vertex program for a fixed number of synchronous sweeps."""

    def __init__(
        self,
        space: AddressSpace,
        allocator: HeapAllocator,
        graph: CsrGraph,
        stack: StackManager,
    ) -> None:
        self._space = space
        self._graph = graph
        self._stack = stack
        n = graph.vertex_count
        self._value_addrs = (allocator.malloc(n * 4), allocator.malloc(n * 4))
        self._pack_all = struct.Struct(f"<{n}f")

    @property
    def value_buffer_addrs(self):
        """Addresses of the two double-buffered value arrays."""
        return self._value_addrs

    def run(self, program: VertexProgram, iterations: int = 6) -> List[float]:
        """Execute ``iterations`` sweeps; returns the final values.

        Raises:
            QueryTimeout: when corrupted CSR metadata yields an
                impossible follower slice (wedged sweep).
        """
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        space = self._space
        graph = self._graph
        n = graph.vertex_count
        space.write(
            self._value_addrs[0],
            self._pack_all.pack(*(program.initial_value(v) for v in range(n))),
        )
        out_degrees = graph.read_out_degrees()
        batch_compute = getattr(program, "compute_batch", None)
        batched = batch_compute is not None and space.fast_path_enabled
        degrees_f64 = np.array(out_degrees, dtype=np.float64) if batched else None
        frame = self._stack.push(64)
        try:
            for iteration in range(iterations):
                # Iteration state lives in the frame (consumed each sweep).
                space.write_u32(frame.slot(0), iteration)
                space.write_u32(frame.slot(4), iteration & 1)
                selector = space.read_u32(frame.slot(4)) & 1
                current = self._value_addrs[selector]
                target = self._value_addrs[1 - selector]
                raw = space.read(current, n * 4)
                if batched:
                    plan = graph.pristine_plan()
                    if plan is not None:
                        # Whole-sweep fusion: both CSR arrays hold their
                        # build-time bytes, so every follower slice and
                        # block decode is the precomputed one (and no
                        # stray out-of-range load can occur). Replay the
                        # gather wholesale and settle the clock/counter
                        # debt in one charge per array.
                        values_f64 = np.frombuffer(raw, dtype="<f4").astype(
                            np.float64
                        )
                        new_values = batch_compute(
                            values_f64, degrees_f64, plan.gathered, plan.counts
                        )
                        graph.charge_sweep(plan)
                    else:
                        new_values = self._sweep_batched(
                            program, batch_compute, raw, out_degrees,
                            degrees_f64, current,
                        )
                else:
                    values = list(self._pack_all.unpack(raw))
                    new_values = self._sweep_scalar(
                        program, values, out_degrees, current
                    )
                space.write(target, self._pack_all.pack(*self._clamp(new_values)))
        finally:
            self._stack.pop()
        final = self._value_addrs[iterations & 1]
        return list(self._pack_all.unpack(space.read(final, n * 4)))

    def _sweep_scalar(
        self,
        program: VertexProgram,
        values: List[float],
        out_degrees: List[int],
        current: int,
    ) -> List[float]:
        """One gather-apply sweep, vertex at a time (the oracle path)."""
        space = self._space
        graph = self._graph
        n = graph.vertex_count
        new_values: List[float] = []
        for vertex in range(n):
            start, end = graph.follower_slice(vertex)
            if end < start or end - start > graph.edge_count:
                raise QueryTimeout(
                    f"vertex {vertex} follower slice [{start}, {end}) "
                    "is out of bounds"
                )
            count = end - start
            if count:
                block = graph.read_followers_block(start, count)
                followers = struct.unpack(f"<{count}I", block)
            else:
                followers = ()
            follower_values = []
            follower_degrees = []
            for follower in followers:
                if follower < n:
                    follower_values.append(values[follower])
                    follower_degrees.append(out_degrees[follower])
                else:
                    # A corrupted edge id indexes past the arrays:
                    # a native engine would read whatever lies at
                    # that address — do the same through the
                    # simulated memory (may segfault).
                    follower_values.append(
                        space.read_f32(current + follower * 4)
                    )
                    follower_degrees.append(
                        space.read_u32(
                            graph.out_degree_addr + follower * 4
                        )
                    )
            new_values.append(
                program.compute(vertex, follower_values, follower_degrees)
            )
        return new_values

    def _sweep_batched(
        self,
        program: VertexProgram,
        batch_compute,
        raw: bytes,
        out_degrees: List[int],
        degrees_f64: np.ndarray,
        current: int,
    ) -> List[float]:
        """One sweep batching all vertices with pristine follower blocks.

        Issues the exact same simulated-memory accesses in the exact same
        order as :meth:`_sweep_scalar` — offset pair, follower block, and
        (for corrupted out-of-range ids only) the per-follower stray
        loads — so the logical clock, counters, and any watchpoint or
        disturbance hooks observe an identical trace. Only the Python-side
        gather/apply arithmetic is deferred and vectorized, and solely for
        vertices whose follower block matches the pristine bytes; every
        other vertex goes through ``program.compute`` unchanged.
        """
        space = self._space
        graph = self._graph
        n = graph.vertex_count
        values_f64 = np.frombuffer(raw, dtype="<f4").astype(np.float64)
        values_list = None  # decoded lazily, only if a dirty vertex appears
        clean_chunks: List[np.ndarray] = []
        # Per vertex: an int follower count (clean → batched) or the
        # (follower_values, follower_degrees) gather (dirty → compute()).
        plan: List = []
        edge_count = graph.edge_count
        for vertex in range(n):
            start, end = graph.follower_slice(vertex)
            if end < start or end - start > edge_count:
                raise QueryTimeout(
                    f"vertex {vertex} follower slice [{start}, {end}) "
                    "is out of bounds"
                )
            count = end - start
            if not count:
                plan.append(0)
                continue
            block = graph.read_followers_block(start, count)
            followers_np = graph.clean_followers(start, count, block)
            if followers_np is not None:
                clean_chunks.append(followers_np)
                plan.append(count)
                continue
            if values_list is None:
                values_list = values_f64.tolist()
            follower_values = []
            follower_degrees = []
            for follower in struct.unpack(f"<{count}I", block):
                if follower < n:
                    follower_values.append(values_list[follower])
                    follower_degrees.append(out_degrees[follower])
                else:
                    follower_values.append(
                        space.read_f32(current + follower * 4)
                    )
                    follower_degrees.append(
                        space.read_u32(graph.out_degree_addr + follower * 4)
                    )
            plan.append((follower_values, follower_degrees))
        counts = [entry for entry in plan if isinstance(entry, int)]
        totals = iter(())
        if counts:
            gathered = (
                np.concatenate(clean_chunks)
                if clean_chunks
                else np.empty(0, dtype=np.uint32)
            )
            totals = iter(
                batch_compute(values_f64, degrees_f64, gathered, counts)
            )
        new_values: List[float] = []
        for vertex, entry in enumerate(plan):
            if isinstance(entry, int):
                new_values.append(next(totals))
            else:
                new_values.append(
                    program.compute(vertex, entry[0], entry[1])
                )
        return new_values

    @staticmethod
    def _clamp(values: List[float]) -> List[float]:
        """Keep values packable as f32 (overflow saturates like hardware)."""
        limit = 3.0e38
        clamped = []
        for value in values:
            if value != value:  # NaN propagates
                clamped.append(value)
            elif value > limit:
                clamped.append(float("inf"))
            elif value < -limit:
                clamped.append(float("-inf"))
            else:
                clamped.append(value)
        return clamped
