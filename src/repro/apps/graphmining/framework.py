"""Minimal GraphLab-style synchronous vertex-program engine.

Implements the subset of the GraphLab abstraction the TunkRank workload
needs: per-vertex values double-buffered in simulated memory, a
synchronous gather-apply iteration over the CSR graph, and a fixed
iteration budget (deterministic across runs). Vertex values are
re-written every iteration — the overwrite traffic that makes GraphLab's
mutable state self-healing against soft errors in the paper's taxonomy.
"""

from __future__ import annotations

import abc
import struct
from typing import List

from repro.apps.base import QueryTimeout
from repro.apps.graphmining.graph import CsrGraph
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.stack import StackManager


class VertexProgram(abc.ABC):
    """One synchronous vertex computation."""

    @abc.abstractmethod
    def initial_value(self, vertex: int) -> float:
        """Initial vertex value."""

    @abc.abstractmethod
    def compute(
        self,
        vertex: int,
        follower_values,
        follower_out_degrees,
    ) -> float:
        """New value of ``vertex`` from its followers' values/degrees."""


class SyncEngine:
    """Runs a vertex program for a fixed number of synchronous sweeps."""

    def __init__(
        self,
        space: AddressSpace,
        allocator: HeapAllocator,
        graph: CsrGraph,
        stack: StackManager,
    ) -> None:
        self._space = space
        self._graph = graph
        self._stack = stack
        n = graph.vertex_count
        self._value_addrs = (allocator.malloc(n * 4), allocator.malloc(n * 4))
        self._pack_all = struct.Struct(f"<{n}f")

    @property
    def value_buffer_addrs(self):
        """Addresses of the two double-buffered value arrays."""
        return self._value_addrs

    def run(self, program: VertexProgram, iterations: int = 6) -> List[float]:
        """Execute ``iterations`` sweeps; returns the final values.

        Raises:
            QueryTimeout: when corrupted CSR metadata yields an
                impossible follower slice (wedged sweep).
        """
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        space = self._space
        graph = self._graph
        n = graph.vertex_count
        space.write(
            self._value_addrs[0],
            self._pack_all.pack(*(program.initial_value(v) for v in range(n))),
        )
        out_degrees = graph.read_out_degrees()
        frame = self._stack.push(64)
        try:
            for iteration in range(iterations):
                # Iteration state lives in the frame (consumed each sweep).
                space.write_u32(frame.slot(0), iteration)
                space.write_u32(frame.slot(4), iteration & 1)
                selector = space.read_u32(frame.slot(4)) & 1
                current = self._value_addrs[selector]
                target = self._value_addrs[1 - selector]
                raw = space.read(current, n * 4)
                values = list(self._pack_all.unpack(raw))
                new_values: List[float] = []
                for vertex in range(n):
                    start, end = graph.follower_slice(vertex)
                    if end < start or end - start > graph.edge_count:
                        raise QueryTimeout(
                            f"vertex {vertex} follower slice [{start}, {end}) "
                            "is out of bounds"
                        )
                    count = end - start
                    if count:
                        block = graph.read_followers_block(start, count)
                        followers = struct.unpack(f"<{count}I", block)
                    else:
                        followers = ()
                    follower_values = []
                    follower_degrees = []
                    for follower in followers:
                        if follower < n:
                            follower_values.append(values[follower])
                            follower_degrees.append(out_degrees[follower])
                        else:
                            # A corrupted edge id indexes past the arrays:
                            # a native engine would read whatever lies at
                            # that address — do the same through the
                            # simulated memory (may segfault).
                            follower_values.append(
                                space.read_f32(current + follower * 4)
                            )
                            follower_degrees.append(
                                space.read_u32(
                                    graph.out_degree_addr + follower * 4
                                )
                            )
                    new_values.append(
                        program.compute(vertex, follower_values, follower_degrees)
                    )
                space.write(target, self._pack_all.pack(*self._clamp(new_values)))
        finally:
            self._stack.pop()
        final = self._value_addrs[iterations & 1]
        return list(self._pack_all.unpack(space.read(final, n * 4)))

    @staticmethod
    def _clamp(values: List[float]) -> List[float]:
        """Keep values packable as f32 (overflow saturates like hardware)."""
        limit = 3.0e38
        clamped = []
        for value in values:
            if value != value:  # NaN propagates
                clamped.append(value)
            elif value > limit:
                clamped.append(float("inf"))
            elif value < -limit:
                clamped.append(float("-inf"))
            else:
                clamped.append(value)
        return clamped
