"""TunkRank influence scoring (Tunkelang 2009 — paper reference [61]).

The Twitter-analog of PageRank the paper ran on GraphLab: a user's
influence is the expected number of people who read a tweet they post,

    influence(u) = Σ_{f ∈ followers(u)} (1 + p · influence(f)) / |following(f)|

where ``p`` is the retweet probability. Iterated synchronously to a
fixed sweep budget.
"""

from __future__ import annotations

from itertools import islice

import numpy as np

from repro.apps.graphmining.framework import VertexProgram

#: Probability that a follower retweets, propagating influence.
DEFAULT_RETWEET_PROBABILITY = 0.5


class TunkRank(VertexProgram):
    """TunkRank vertex program."""

    def __init__(self, retweet_probability: float = DEFAULT_RETWEET_PROBABILITY):
        if not 0.0 <= retweet_probability <= 1.0:
            raise ValueError(
                f"retweet_probability must be in [0, 1], got {retweet_probability}"
            )
        self.retweet_probability = retweet_probability

    def initial_value(self, vertex: int) -> float:
        """Uniform starting influence."""
        return 1.0

    def compute(self, vertex: int, follower_values, follower_out_degrees) -> float:
        """One gather-apply step of the influence recurrence."""
        p = self.retweet_probability
        total = 0.0
        for value, out_degree in zip(follower_values, follower_out_degrees):
            contribution = 1.0 + p * value
            if out_degree:
                total += contribution / out_degree
            else:
                # A zero divisor only appears via corruption; IEEE float
                # division by zero yields infinity, as native code would.
                total += float("inf") if contribution > 0 else float("-inf")
        return total

    def compute_batch(self, values, degrees, follower_ids, counts):
        """Vectorized gather-apply over concatenated clean segments.

        Bit-identical to calling :meth:`compute` per segment: elementwise
        float64 multiply/add/divide match scalar IEEE arithmetic exactly,
        the zero-degree fixup replicates the scalar branch (including its
        NaN-contribution → -inf behaviour), and each segment is summed
        with the same left-to-right Python float accumulation.
        """
        p = self.retweet_probability
        if len(follower_ids):
            contributions = 1.0 + p * values[follower_ids]
            gathered_degrees = degrees[follower_ids]
            with np.errstate(divide="ignore", invalid="ignore"):
                quotients = contributions / gathered_degrees
            zero_degree = gathered_degrees == 0.0
            if zero_degree.any():
                positive = contributions > 0.0
                quotients[zero_degree & positive] = np.inf
                quotients[zero_degree & ~positive] = -np.inf
            flat = quotients.tolist()
        else:
            flat = []
        chunks = iter(flat)
        return [float(sum(islice(chunks, count))) for count in counts]
