"""The Memcached-like key–value workload (paper §V-A, second workload).

The paper ran Memcached over a 30 GB Twitter dataset with a synthetic
90 % read / 10 % write client. This workload reproduces that shape at
simulation scale: a preloaded key population, Zipfian key popularity,
and a deterministic GET/SET trace whose responses are reproducible when
replayed as an ordered prefix from the pristine checkpoint (which is how
the characterization campaign replays every trial).

Region structure matches Table 3's Memcached row: everything lives in
the heap (35 GB in the paper, no private region) plus a tiny stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable, List, Optional

from repro.apps.base import Workload
from repro.apps.kvstore.store import KVStore
from repro.apps.websearch.corpus import ZipfSampler, fnv1a64
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.regions import standard_layout
from repro.memory.stack import StackManager
from repro.utils.timescale import TimeScale
from repro.utils.rng import SeedSequenceFactory

#: Simulated request rate anchoring minute-denominated thresholds.
OPS_PER_MINUTE = 120.0
GET_FRACTION = 0.9
#: Fraction of the write traffic that deletes instead of setting;
#: deletes exercise the allocator's free path, whose in-memory header
#: validation is where heap-metadata corruption becomes a crash.
DELETE_FRACTION_OF_WRITES = 0.2


@dataclass(frozen=True)
class Operation:
    """One trace entry: GET, SET, or DELETE of a key.

    SETs carry the version they write (0 = preload value); a SET after a
    DELETE reinserts the key at its next version.
    """

    kind: str  # "get" | "set" | "delete"
    key_id: int
    version: int


@lru_cache(maxsize=8192)
def value_bytes(key_id: int, version: int) -> bytes:
    """Deterministic value for (key, version) — no RNG state involved."""
    seed = fnv1a64(f"value:{key_id}:{version}".encode())
    length = 64 + (key_id % 97)
    out = bytearray()
    state = seed
    while len(out) < length:
        state = (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        out += state.to_bytes(8, "little")
    return bytes(out[:length])


def key_bytes(key_id: int) -> bytes:
    """Key encoding, Memcached-style."""
    return f"user:{key_id:08d}".encode()


class KVStoreWorkload(Workload):
    """In-memory key–value store under a 90/10 Zipfian client."""

    name = "Memcached"

    def __init__(
        self,
        seed: int = 2345,
        key_count: int = 2500,
        op_count: int = 600,
        bucket_count: int = 2048,
        heap_size: int = 1048576,
        stack_size: int = 16384,
        zipf_skew: float = 0.95,
    ) -> None:
        super().__init__()
        self._seeds = SeedSequenceFactory(seed).child("kvstore")
        self._key_count = key_count
        self._op_count = op_count
        self._bucket_count = bucket_count
        self._heap_size = heap_size
        self._stack_size = stack_size
        self._zipf_skew = zipf_skew
        self.store: Optional[KVStore] = None
        self.trace: List[Operation] = []
        self._units_per_op: float = 20.0

    # ------------------------------------------------------------------
    def build(self) -> None:
        """Create the space, preload all keys, and generate the op trace."""
        layout = standard_layout(
            heap_size=self._heap_size, stack_size=self._stack_size
        )
        space = AddressSpace(layout)
        self._space = space
        allocator = HeapAllocator(space, space.region_named("heap"))
        self._allocator = allocator
        stack = StackManager(space, space.region_named("stack"))
        self.store = KVStore(
            space, allocator, stack, bucket_count=self._bucket_count
        )
        for key_id in range(self._key_count):
            self.store.set(key_bytes(key_id), value_bytes(key_id, 0))
        self._generate_trace()
        self._calibrate_clock()

    def _generate_trace(self) -> None:
        rng = self._seeds.stream("trace")
        sampler = ZipfSampler(self._key_count, self._zipf_skew)
        versions = [0] * self._key_count
        trace: List[Operation] = []
        for _ in range(self._op_count):
            key_id = sampler.sample(rng)
            if rng.random() < GET_FRACTION:
                trace.append(Operation("get", key_id, versions[key_id]))
            elif rng.random() < DELETE_FRACTION_OF_WRITES:
                trace.append(Operation("delete", key_id, versions[key_id]))
            else:
                versions[key_id] += 1
                trace.append(Operation("set", key_id, versions[key_id]))
        self.trace = trace

    def _calibrate_clock(self) -> None:
        sample = min(10, len(self.trace))
        if sample == 0:
            return
        start = self.space.time
        for index in range(sample):
            self._perform(self.trace[index])
        self._units_per_op = max(1.0, (self.space.time - start) / sample)
        # Undo calibration writes so the checkpoint state matches trace
        # expectations (version counters assume an untouched preload).
        for index in range(sample):
            operation = self.trace[index]
            if operation.kind in ("set", "delete"):
                self.store.set(
                    key_bytes(operation.key_id),
                    value_bytes(operation.key_id, 0),
                )

    # ------------------------------------------------------------------
    def on_checkpoint(self) -> None:
        """Capture allocator bookkeeping: DELETEs free and SETs re-malloc
        after the checkpoint, so Python-side heap state must travel with
        the memory snapshot."""
        self._alloc_state = self._allocator.state()
        self._item_count = self.store.item_count

    def on_reset(self) -> None:
        """Restore allocator bookkeeping captured at checkpoint."""
        self._allocator.restore_state(self._alloc_state)
        self.store.item_count = self._item_count

    def progress_state(self):
        """Allocator bookkeeping plus item count, by value.

        DELETEs free and SETs re-malloc mid-trace, so two cursors with
        identical memory bytes can still differ in Python-side heap
        state — a ``free`` issues no store. The batched serve data plane
        compares this against the golden replay before fusing a run.
        """
        state = self._allocator.state()
        return (
            tuple(state["free"]),
            tuple(sorted(state["live"].items())),
            state["allocated_bytes"],
            state["peak_bytes"],
            self.store.item_count,
        )

    def restore_progress(self, state) -> None:
        """Adopt the allocator bookkeeping recorded at a fused run's end."""
        free, live, allocated_bytes, peak_bytes, item_count = state
        self._allocator.restore_state(
            {
                "free": list(free),
                "live": dict(live),
                "allocated_bytes": allocated_bytes,
                "peak_bytes": peak_bytes,
            }
        )
        self.store.item_count = item_count

    @property
    def query_count(self) -> int:
        """Number of operations in the trace."""
        return len(self.trace)

    def execute(self, query_index: int) -> Hashable:
        """Perform one trace operation; response is order-reproducible."""
        if self.store is None:
            raise RuntimeError("Memcached: build() must be called first")
        return self._perform(self.trace[query_index])

    def _perform(self, operation: Operation) -> Hashable:
        key = key_bytes(operation.key_id)
        if operation.kind == "get":
            value = self.store.get(key)
            if value is None:
                return ("miss", operation.key_id)
            return ("value", operation.key_id, fnv1a64(value))
        if operation.kind == "delete":
            existed = self.store.delete(key)
            return ("deleted", operation.key_id, existed)
        value = value_bytes(operation.key_id, operation.version)
        self.store.set(key, value)
        return ("stored", operation.key_id, fnv1a64(value))

    @property
    def time_scale(self) -> TimeScale:
        """Logical-clock units per simulated minute at the modeled load."""
        return TimeScale(units_per_minute=self._units_per_op * OPS_PER_MINUTE)

    def sample_ranges(self, region):
        """Live-data spans: allocated heap blocks, active stack top."""
        if region.name == "heap":
            return self._allocator.live_spans()
        if region.name == "stack":
            return self.active_stack_window(region, 128)
        return [(region.base, region.end)]
