"""In-memory key–value store (Memcached-like) on simulated memory.

Data structures live entirely in the simulated heap, mirroring
Memcached's layout at the fidelity the characterization needs:

* a **bucket array** of u32 entry addresses (0 = empty) — corruption of
  a bucket pointer sends a lookup into unrelated memory (usually a
  failed request via segfault/timeout, occasionally a silent miss);
* **chained entries** ``[next u32 | keylen u16 | vallen u16 | key |
  value]`` allocated from the simulated heap allocator, whose in-memory
  block headers make metadata corruption crash-prone exactly as in a
  native allocator;
* value overwrites happen **in place** when sizes match — the overwrite
  masking that gives written-to data its safety (paper Figure 1,
  outcome 1).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.apps.base import QueryTimeout
from repro.apps.websearch.corpus import fnv1a64
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.stack import StackManager

ENTRY_HEADER_SIZE = 8
_ENTRY_HEADER = struct.Struct("<IHH")
#: Longest chain walked before declaring the lookup wedged.
MAX_CHAIN_LENGTH = 128
#: Largest key/value length honoured when parsing a (possibly corrupt)
#: entry header; real Memcached caps item sizes similarly.
MAX_KEY_LENGTH = 250
MAX_VALUE_LENGTH = 8192


class KVStore:
    """Chained hash table with in-place value updates."""

    def __init__(
        self,
        space: AddressSpace,
        allocator: HeapAllocator,
        stack: StackManager,
        bucket_count: int = 4096,
    ) -> None:
        if bucket_count <= 0:
            raise ValueError(f"bucket_count must be positive, got {bucket_count}")
        self._space = space
        self._allocator = allocator
        self._stack = stack
        self.bucket_count = bucket_count
        self._buckets_addr = allocator.calloc(bucket_count * 4)
        self.item_count = 0

    # ------------------------------------------------------------------
    def _bucket_addr(self, key: bytes) -> int:
        return self._buckets_addr + (fnv1a64(key) % self.bucket_count) * 4

    def _read_entry_header(self, entry_addr: int):
        raw = self._space.read(entry_addr, ENTRY_HEADER_SIZE)
        return _ENTRY_HEADER.unpack(raw)

    def _find(self, key: bytes, frame) -> Optional[int]:
        """Walk the chain; returns the matching entry address or None."""
        space = self._space
        # The chain cursor is a stack local, consumed on every hop.
        space.write_u32(frame.slot(8), space.read_u32(self._bucket_addr(key)))
        hops = 0
        while True:
            entry_addr = space.read_u32(frame.slot(8))
            if entry_addr == 0:
                return None
            hops += 1
            if hops > MAX_CHAIN_LENGTH:
                raise QueryTimeout(
                    f"hash chain exceeded {MAX_CHAIN_LENGTH} entries"
                )
            next_addr, keylen, _vallen = self._read_entry_header(entry_addr)
            if keylen == len(key) and keylen <= MAX_KEY_LENGTH:
                stored_key = space.read(entry_addr + ENTRY_HEADER_SIZE, keylen)
                if stored_key == key:
                    return entry_addr
            space.write_u32(frame.slot(8), next_addr)

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        """Look up ``key``; returns the value or None on a miss."""
        frame = self._stack.push(64)
        try:
            self._space.write_u16(frame.slot(0), len(key))
            entry_addr = self._find(key, frame)
            if entry_addr is None:
                return None
            _next, keylen, vallen = self._read_entry_header(entry_addr)
            if vallen > MAX_VALUE_LENGTH:
                raise QueryTimeout(f"entry claims {vallen}-byte value")
            return self._space.read(entry_addr + ENTRY_HEADER_SIZE + keylen, vallen)
        finally:
            self._stack.pop()

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key``.

        Same-size updates rewrite the value in place (masking overwrite);
        size changes reallocate the entry, exercising the allocator and
        its corruption checks.

        Raises:
            ValueError: for keys/values beyond the protocol caps.
        """
        if len(key) > MAX_KEY_LENGTH:
            raise ValueError(f"key too long: {len(key)} > {MAX_KEY_LENGTH}")
        if len(value) > MAX_VALUE_LENGTH:
            raise ValueError(f"value too long: {len(value)} > {MAX_VALUE_LENGTH}")
        frame = self._stack.push(64)
        try:
            space = self._space
            space.write_u16(frame.slot(0), len(key))
            entry_addr = self._find(key, frame)
            if entry_addr is not None:
                next_addr, keylen, vallen = self._read_entry_header(entry_addr)
                if vallen == len(value):
                    space.write(entry_addr + ENTRY_HEADER_SIZE + keylen, value)
                    return
                self._unlink(key, entry_addr, next_addr)
                self._allocator.free(entry_addr)
                self.item_count -= 1
            self._insert(key, value)
        finally:
            self._stack.pop()

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        frame = self._stack.push(64)
        try:
            entry_addr = self._find(key, frame)
            if entry_addr is None:
                return False
            next_addr, _keylen, _vallen = self._read_entry_header(entry_addr)
            self._unlink(key, entry_addr, next_addr)
            self._allocator.free(entry_addr)
            self.item_count -= 1
            return True
        finally:
            self._stack.pop()

    # ------------------------------------------------------------------
    def _insert(self, key: bytes, value: bytes) -> None:
        space = self._space
        entry_size = ENTRY_HEADER_SIZE + len(key) + len(value)
        entry_addr = self._allocator.malloc(entry_size)
        bucket_addr = self._bucket_addr(key)
        head = space.read_u32(bucket_addr)
        space.write(entry_addr, _ENTRY_HEADER.pack(head, len(key), len(value)))
        space.write(entry_addr + ENTRY_HEADER_SIZE, key)
        space.write(entry_addr + ENTRY_HEADER_SIZE + len(key), value)
        space.write_u32(bucket_addr, entry_addr)
        self.item_count += 1

    def _unlink(self, key: bytes, entry_addr: int, next_addr: int) -> None:
        """Remove ``entry_addr`` from its chain (head or interior)."""
        space = self._space
        bucket_addr = self._bucket_addr(key)
        cursor = space.read_u32(bucket_addr)
        if cursor == entry_addr:
            space.write_u32(bucket_addr, next_addr)
            return
        hops = 0
        while cursor:
            hops += 1
            if hops > MAX_CHAIN_LENGTH:
                raise QueryTimeout("unlink walked a wedged chain")
            cursor_next, _keylen, _vallen = self._read_entry_header(cursor)
            if cursor_next == entry_addr:
                space.write_u32(cursor, next_addr)
                return
            cursor = cursor_next
        raise QueryTimeout("entry vanished from its chain during unlink")
