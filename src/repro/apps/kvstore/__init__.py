"""Memcached-like in-memory key–value store workload."""

from repro.apps.kvstore.store import KVStore
from repro.apps.kvstore.workload import (
    KVStoreWorkload,
    Operation,
    key_bytes,
    value_bytes,
)

__all__ = [
    "KVStore",
    "KVStoreWorkload",
    "Operation",
    "key_bytes",
    "value_bytes",
]
