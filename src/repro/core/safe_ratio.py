"""Safe-ratio analysis (paper §III-B).

For an address A over an execution window:

* **unsafe duration** — the sum, over every *read* of A, of the time
  since the previous reference to A (an error arriving in that interval
  would be consumed);
* **safe duration** — the sum, over every *write* to A, of the time
  since the previous reference to A (an error arriving in that interval
  would be masked by the overwrite);
* **safe ratio** = safe / (safe + unsafe).

A ratio near 1 means the address is write-dominated (errors likely
masked); near 0 means read-dominated (errors likely consumed). The
paper generalizes to regions by averaging the ratios of sampled
addresses — :func:`region_safe_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.memory.tracing import AccessEvent
from repro.utils.stats import SampleSummary, summarize_samples


@dataclass(frozen=True)
class SafeRatioSample:
    """Safe-ratio measurement for one sampled address."""

    addr: int
    safe_duration: int
    unsafe_duration: int

    @property
    def total_duration(self) -> int:
        """Denominator of the ratio."""
        return self.safe_duration + self.unsafe_duration

    @property
    def safe_ratio(self) -> Optional[float]:
        """The ratio, or None when the address was never referenced."""
        total = self.total_duration
        if total == 0:
            return None
        return self.safe_duration / total


def durations_from_events(
    events: Sequence[AccessEvent], start_time: int
) -> SafeRatioSample:
    """Compute safe/unsafe durations for one address's event stream.

    Args:
        events: Time-ordered access events for a single address.
        start_time: Logical time at which monitoring began; the interval
            before the first access is attributed per that access's kind.

    Raises:
        ValueError: if events are not time-ordered or span addresses.
    """
    if not events:
        return SafeRatioSample(addr=-1, safe_duration=0, unsafe_duration=0)
    addr = events[0].addr
    safe = 0
    unsafe = 0
    previous_time = start_time
    for event in events:
        if event.addr != addr:
            raise ValueError(
                f"event stream mixes addresses 0x{addr:x} and 0x{event.addr:x}"
            )
        if event.time < previous_time:
            raise ValueError("events must be in non-decreasing time order")
        interval = event.time - previous_time
        if event.is_store:
            safe += interval
        else:
            unsafe += interval
        previous_time = event.time
    return SafeRatioSample(addr=addr, safe_duration=safe, unsafe_duration=unsafe)


def safe_ratio_samples(
    traces: Dict[int, List[AccessEvent]], start_time: int
) -> List[SafeRatioSample]:
    """Per-address samples for a set of traced addresses.

    Addresses with no events yield samples whose ratio is None; callers
    typically filter those (the paper reports only referenced addresses).
    """
    samples = []
    for addr, events in traces.items():
        sample = durations_from_events(events, start_time)
        if sample.addr == -1:
            sample = SafeRatioSample(addr=addr, safe_duration=0, unsafe_duration=0)
        samples.append(sample)
    return samples


def region_safe_ratio(samples: Iterable[SafeRatioSample]) -> Optional[SampleSummary]:
    """Aggregate address samples into a region-level ratio distribution.

    Returns None when no sampled address was ever referenced.
    """
    ratios = [
        sample.safe_ratio for sample in samples if sample.safe_ratio is not None
    ]
    if not ratios:
        return None
    return summarize_samples(ratios)


def ratio_histogram(
    samples: Iterable[SafeRatioSample], bins: int = 10
) -> List[int]:
    """Histogram of safe ratios in [0, 1] — the Figure 5(b) density shape.

    Raises:
        ValueError: if ``bins`` is not positive.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    counts = [0] * bins
    for sample in samples:
        ratio = sample.safe_ratio
        if ratio is None:
            continue
        index = min(int(ratio * bins), bins - 1)
        counts[index] += 1
    return counts
