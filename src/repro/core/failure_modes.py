"""Correlated-failure-mode characterization (paper §VII future work).

The paper characterizes single- and few-bit errors and plans to "extend
our characterization framework to cover a more diverse set of memory
failure modes (e.g., failures correlated across DRAM banks, rows, and
columns)". This module does that: it drives the Figure 2 campaign loop
with *fault footprints* drawn from the DRAM failure-mode models
(:mod:`repro.dram.fault_models`) instead of independent single bits —
a whole faulty row/column/bank/chip lands in the application's memory
at once, folded onto the live address ranges.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.apps.base import Workload
from repro.apps.clients import ClientDriver
from repro.core.taxonomy import classify_outcome
from repro.core.vulnerability import VulnerabilityProfile
from repro.dram.fault_models import DramFaultModel, FailureMode
from repro.dram.geometry import DramGeometry
from repro.injection.injector import ErrorInjector
from repro.utils.rng import SeedSequenceFactory

#: Pseudo-region label for whole-application footprint cells.
ALL_REGIONS = "all"

#: Modes characterized by default, in increasing footprint size.
DEFAULT_MODES = (
    FailureMode.SINGLE_BIT,
    FailureMode.SINGLE_WORD,
    FailureMode.ROW,
    FailureMode.COLUMN,
    FailureMode.BANK,
    FailureMode.CHIP,
)


def characterize_failure_modes(
    workload: Workload,
    trials_per_mode: int = 40,
    queries_per_trial: int = 120,
    modes: Sequence[FailureMode] = DEFAULT_MODES,
    seed: int = 404,
    geometry: Optional[DramGeometry] = None,
    failure_fraction: float = 0.5,
) -> VulnerabilityProfile:
    """Run footprint-injection campaigns, one cell per failure mode.

    The returned profile keys cells as ``(ALL_REGIONS, mode.value)``;
    footprints span regions, so there is no per-region split.

    Raises:
        ValueError: for non-positive budgets.
    """
    if trials_per_mode <= 0 or queries_per_trial <= 0:
        raise ValueError("trial and query budgets must be positive")
    if geometry is None:
        # A compact geometry keeps folded footprints dense enough to
        # matter at simulation scale while preserving their structure.
        geometry = DramGeometry(channels=2, rows_per_bank=2048)

    seeds = SeedSequenceFactory(seed).child(f"footprints:{workload.name}")
    if workload.is_built:
        workload.reset()
    else:
        workload.build()
        workload.checkpoint()
    golden = workload.golden_responses()
    workload.reset()
    driver = ClientDriver(workload, golden, failure_fraction=failure_fraction)
    space = workload.space
    query_budget = min(queries_per_trial, workload.query_count)

    profile = VulnerabilityProfile(app=workload.name)
    profile.region_sizes = {
        region.name: sum(
            end - base for base, end in workload.sample_ranges(region)
        )
        for region in space.regions
    }

    for mode in modes:
        model = DramFaultModel(geometry=geometry, mode_weights={mode: 1.0})
        rng = seeds.stream(mode.value)
        cell = profile.cell(ALL_REGIONS, mode.value)
        for _ in range(trials_per_mode):
            workload.reset()
            injector = ErrorInjector(space, rng)
            record = injector.inject_footprint(model)
            injected_at = space.time
            report = driver.run(range(query_budget))
            consumed = False
            overwritten = False
            for addr in set(record.addresses):
                reads, was_overwritten = space.fault_consumption(addr)
                consumed = consumed or reads > 0
                overwritten = overwritten or was_overwritten
            outcome = classify_outcome(
                report, consumed, overwritten, failure_fraction
            )
            effect_times = [
                t
                for t in (report.first_incorrect_time, report.first_failure_time)
                if t is not None
            ]
            delay = None
            if effect_times:
                delay = workload.time_scale.minutes(
                    max(0, min(effect_times) - injected_at)
                )
            cell.record(
                outcome=outcome,
                responded=report.responded,
                incorrect=report.incorrect,
                failed=report.failed,
                effect_delay_minutes=delay,
            )
    return profile


def mode_summary(profile: VulnerabilityProfile) -> Dict[str, Dict[str, float]]:
    """Per-mode crash/incorrect/masked fractions from a footprint profile."""
    summary: Dict[str, Dict[str, float]] = {}
    for (region, label), cell in profile.cells.items():
        if region != ALL_REGIONS or cell.trials == 0:
            continue
        summary[label] = {
            "crash": cell.crashes / cell.trials,
            "incorrect": cell.incorrect_trials / cell.trials,
            "masked": cell.masked_trials / cell.trials,
            "incorrect_per_billion": cell.incorrect_per_billion_queries,
        }
    return summary
