"""Access-pattern-dependent (disturbance) error characterization.

The paper's footnote 2 points to intermittent, access-pattern-dependent
errors (retention weaknesses and disturbance errors — Khan et al. 2014,
Kim et al. 2014) as "increasingly common as DRAM technology scales".
This extension characterizes them with the same Figure 2 loop: instead
of flipping a bit up front, a trial couples a *victim* cell to an
*aggressor* cell in frequently-read data; the victim flips only when
(and as often as) the application's own access pattern hammers the
aggressor — so the outcome distribution depends on read intensity, not
just data layout.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.base import Workload
from repro.apps.clients import ClientDriver
from repro.core.taxonomy import classify_outcome
from repro.core.vulnerability import VulnerabilityProfile
from repro.injection.sampler import AddressSampler
from repro.utils.rng import SeedSequenceFactory

#: Profile label for disturbance cells.
DISTURBANCE_LABEL = "disturbance"


def characterize_disturbance(
    workload: Workload,
    trials_per_region: int = 40,
    queries_per_trial: int = 120,
    flip_probability: float = 0.02,
    victim_offset: int = 64,
    regions: Optional[Sequence[str]] = None,
    seed: int = 606,
    failure_fraction: float = 0.5,
) -> VulnerabilityProfile:
    """Run a disturbance campaign; one cell per region.

    Per trial, an aggressor byte is sampled from the region's live data
    and its victim is placed ``victim_offset`` bytes away inside the
    same region (the adjacent-row analogue at simulation scale); each
    aggressor load flips one victim bit with ``flip_probability``.

    Raises:
        ValueError: for non-positive budgets or probabilities.
    """
    if trials_per_region <= 0 or queries_per_trial <= 0:
        raise ValueError("trial and query budgets must be positive")
    if not 0.0 < flip_probability <= 1.0:
        raise ValueError(f"flip_probability must be in (0, 1], got {flip_probability}")

    seeds = SeedSequenceFactory(seed).child(f"disturbance:{workload.name}")
    if workload.is_built:
        workload.reset()
    else:
        workload.build()
        workload.checkpoint()
    golden = workload.golden_responses()
    workload.reset()
    driver = ClientDriver(workload, golden, failure_fraction=failure_fraction)
    space = workload.space
    if regions is None:
        regions = [region.name for region in space.regions]
    query_budget = min(queries_per_trial, workload.query_count)

    profile = VulnerabilityProfile(app=workload.name)
    profile.region_sizes = {
        region.name: sum(end - base for base, end in workload.sample_ranges(region))
        for region in space.regions
    }

    sampler_rng = seeds.stream("sampler")
    for region_name in regions:
        region = space.region_named(region_name)
        cell = profile.cell(region_name, DISTURBANCE_LABEL)
        flip_rng_master = seeds.child(f"flips:{region_name}")
        for trial in range(trials_per_region):
            workload.reset()
            sampler = AddressSampler(space, sampler_rng)
            spans = workload.sample_ranges(region)
            aggressor = sampler.sample_from_ranges(spans)
            # Victim: offset within the region, wrapped to stay mapped.
            victim = aggressor + victim_offset
            if victim >= region.end:
                victim = aggressor - victim_offset
            if victim < region.base:
                victim = region.base + (aggressor - region.base) // 2
            bit = sampler_rng.randrange(8)
            space.install_disturbance(
                aggressor,
                victim,
                bit,
                flip_probability,
                flip_rng_master.stream(str(trial)),
            )
            injected_at = space.time
            report = driver.run(range(query_budget))
            reads = 0
            overwritten = False
            if victim in space._tracked_faults:
                reads, overwritten = space.fault_consumption(victim)
            flips = len(space.fault_log)
            if flips == 0:
                # The aggressor was never hammered hard enough to flip
                # anything: by construction a masked (never-materialized)
                # outcome.
                outcome = classify_outcome(report, False, False, failure_fraction)
            else:
                outcome = classify_outcome(
                    report, reads > 0, overwritten, failure_fraction
                )
            effect_times = [
                t
                for t in (report.first_incorrect_time, report.first_failure_time)
                if t is not None
            ]
            delay = None
            if effect_times:
                delay = workload.time_scale.minutes(
                    max(0, min(effect_times) - injected_at)
                )
            cell.record(
                outcome=outcome,
                responded=report.responded,
                incorrect=report.incorrect,
                failed=report.failed,
                effect_delay_minutes=delay,
            )
    return profile


def hammer_rate(space_fault_log_len: int, queries: int) -> float:
    """Victim flips per query — how aggressively the pattern hammered."""
    if queries <= 0:
        raise ValueError("queries must be positive")
    return space_fault_log_len / queries
