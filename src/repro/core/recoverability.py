"""Data-recoverability analysis (paper §III-C, Table 5).

Two recovery strategies:

* **implicit** — a clean copy of the data already exists in persistent
  storage (read-only file mappings like the WebSearch index, or state
  derivable from on-disk inputs like its document-metadata tables);
* **explicit** — the data changes slowly enough (written less than once
  every five minutes on average) that the system can affordably keep a
  backup copy refreshed (the Par+R flush).

The analysis measures, per region, the fraction of live data that each
strategy covers. The same data may be covered by both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.base import Workload
from repro.memory.regions import PAGE_SIZE, Region
from repro.monitoring.analysis import page_write_intervals
from repro.utils.timescale import TimeScale

#: The paper's explicit-recoverability threshold.
DEFAULT_THRESHOLD_MINUTES = 5.0


@dataclass(frozen=True)
class RegionRecoverability:
    """Table 5 row: recoverable fractions of one region's live data."""

    region: str
    live_bytes: int
    implicit_fraction: float
    explicit_fraction: float

    @property
    def best_fraction(self) -> float:
        """Fraction recoverable by at least one strategy, pessimistically
        assuming maximal overlap (the paper's ≥82.1 % argument)."""
        return max(self.implicit_fraction, self.explicit_fraction)


def implicitly_recoverable_ranges(
    workload: Workload, region: Region
) -> List[Tuple[int, int]]:
    """Live spans with a clean persistent copy.

    Default policy: the whole region when it is file-backed and frozen
    (a read-only mapping can always be re-read); workloads may override
    ``implicit_ranges`` to add derivable structures (e.g. tables built
    from on-disk inputs).
    """
    custom = getattr(workload, "implicit_ranges", None)
    if custom is not None:
        return custom(region)
    if region.file_backed and region.frozen:
        return [(region.base, region.end)]
    return []


def _overlap(span_a: Tuple[int, int], span_b: Tuple[int, int]) -> int:
    return max(0, min(span_a[1], span_b[1]) - max(span_a[0], span_b[0]))


def analyze_recoverability(
    workload: Workload,
    queries: int,
    threshold_minutes: float = DEFAULT_THRESHOLD_MINUTES,
) -> Dict[str, RegionRecoverability]:
    """Measure implicit/explicit recoverable fractions per region.

    Resets the workload, replays ``queries`` trace entries with
    page-write tracking enabled, and classifies each live page.
    """
    if queries <= 0:
        raise ValueError(f"queries must be positive, got {queries}")
    workload.reset()
    space = workload.space
    space.enable_page_write_tracking()
    try:
        budget = min(queries, workload.query_count)
        for index in range(budget):
            workload.execute(index)
    finally:
        space.disable_page_write_tracking()
    scale: TimeScale = workload.time_scale
    intervals = {
        interval.page: interval
        for interval in page_write_intervals(space.page_write_stats())
    }

    reports: Dict[str, RegionRecoverability] = {}
    for region in space.regions:
        live_spans = workload.sample_ranges(region)
        live_bytes = sum(end - base for base, end in live_spans)
        if live_bytes == 0:
            reports[region.name] = RegionRecoverability(
                region=region.name,
                live_bytes=0,
                implicit_fraction=0.0,
                explicit_fraction=0.0,
            )
            continue
        implicit_spans = implicitly_recoverable_ranges(workload, region)
        implicit_bytes = sum(
            _overlap(live, implicit)
            for live in live_spans
            for implicit in implicit_spans
        )
        # Explicit: walk live pages; a page qualifies if it was written at
        # most once, or its mean write interval meets the threshold.
        explicit_bytes = 0
        for base, end in live_spans:
            for page_base in range(base - base % PAGE_SIZE, end, PAGE_SIZE):
                page = page_base // PAGE_SIZE
                live_in_page = _overlap((base, end), (page_base, page_base + PAGE_SIZE))
                interval = intervals.get(page)
                if interval is None or interval.write_count <= 1:
                    explicit_bytes += live_in_page
                    continue
                mean_minutes = interval.mean_interval_minutes(scale)
                if mean_minutes is not None and mean_minutes >= threshold_minutes:
                    explicit_bytes += live_in_page
        reports[region.name] = RegionRecoverability(
            region=region.name,
            live_bytes=live_bytes,
            implicit_fraction=min(1.0, implicit_bytes / live_bytes),
            explicit_fraction=min(1.0, explicit_bytes / live_bytes),
        )
    return reports


def overall_recoverability(
    reports: Dict[str, RegionRecoverability]
) -> RegionRecoverability:
    """Size-weighted overall row (the paper's "Overall" Table 5 line)."""
    total = sum(report.live_bytes for report in reports.values())
    if total == 0:
        return RegionRecoverability("overall", 0, 0.0, 0.0)
    implicit = sum(
        report.implicit_fraction * report.live_bytes for report in reports.values()
    )
    explicit = sum(
        report.explicit_fraction * report.live_bytes for report in reports.values()
    )
    return RegionRecoverability(
        region="overall",
        live_bytes=total,
        implicit_fraction=implicit / total,
        explicit_fraction=explicit / total,
    )
