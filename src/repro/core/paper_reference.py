"""The paper's reported numbers, for side-by-side comparison.

Benchmarks print these next to the reproduction's measured values so
EXPERIMENTS.md can record which qualitative claims hold. Nothing in the
library's models *reads* these values — they are display-only.
"""

from __future__ import annotations

#: Table 1 — detection/correction techniques. "added_capacity" is the
#: fraction of extra bits; "capability" uses the paper's X/Y-Z notation.
TABLE1 = {
    "Parity": {
        "capability": "2^(n-1)/64 bits (none)",
        "added_capacity": 0.0156,
        "added_logic": "low",
    },
    "SEC-DED": {
        "capability": "2/64 bits (1/64 bits)",
        "added_capacity": 0.125,
        "added_logic": "low",
    },
    "DEC-TED": {
        "capability": "3/64 bits (2/64 bits)",
        "added_capacity": 0.234,
        "added_logic": "low",
    },
    "Chipkill": {
        "capability": "2/8 chips (1/8 chips)",
        "added_capacity": 0.125,
        "added_logic": "high",
    },
    "RAIM": {
        "capability": "1/5 modules (1/5 modules)",
        "added_capacity": 0.406,
        "added_logic": "high",
    },
    "Mirroring": {
        "capability": "2/8 chips (1/2 modules)",
        "added_capacity": 1.25,
        "added_logic": "low",
    },
}

#: Table 3 — application memory-region sizes (bytes).
TABLE3 = {
    "WebSearch": {"private": 36 * 2**30, "heap": 9 * 2**30, "stack": 60 * 2**20},
    "Memcached": {"private": 0, "heap": 35 * 2**30, "stack": 132 * 2**10},
    "GraphLab": {"private": 0, "heap": 4 * 2**30, "stack": 132 * 2**10},
}

#: Table 5 — recoverable memory in WebSearch (fractions of region data).
TABLE5 = {
    "private": {"implicit": 0.88, "explicit": 0.634},
    "heap": {"implicit": 0.59, "explicit": 0.284},
    "stack": {"implicit": 0.01, "explicit": 0.167},
    "overall": {"implicit": 0.821, "explicit": 0.563},
}

#: Table 6 (left) — design parameters.
TABLE6_PARAMETERS = {
    "dram_fraction_of_server_cost": 0.30,
    "noecc_memory_cost_savings": 0.111,
    "parity_memory_cost_savings": 0.097,
    "less_tested_savings": (0.06, 0.18, 0.30),
    "crash_recovery_minutes": 10.0,
    "par_r_flush_minutes": 5.0,
    "errors_per_server_month": 2000,
    "target_availability": 0.999,
}

#: Table 6 (right) — the five design points for WebSearch.
#: memory/server savings are fractions; ranges are (low, high).
TABLE6_DESIGNS = {
    "Typical Server": {
        "mapping": {"private": "ECC", "heap": "ECC", "stack": "ECC"},
        "memory_savings": 0.0,
        "memory_savings_range": None,
        "server_savings": 0.0,
        "crashes_per_month": 0,
        "availability": 1.0000,
        "incorrect_per_million": 0,
    },
    "Consumer PC": {
        "mapping": {"private": "NoECC", "heap": "NoECC", "stack": "NoECC"},
        "memory_savings": 0.111,
        "memory_savings_range": None,
        "server_savings": 0.033,
        "crashes_per_month": 19,
        "availability": 0.9955,
        "incorrect_per_million": 33,
    },
    "Detect&Recover": {
        "mapping": {"private": "Par+R", "heap": "NoECC", "stack": "NoECC"},
        "memory_savings": 0.097,
        "memory_savings_range": None,
        "server_savings": 0.029,
        "crashes_per_month": 3,
        "availability": 0.9993,
        "incorrect_per_million": 9,
    },
    "Less-Tested (L)": {
        "mapping": {"private": "NoECC/L", "heap": "NoECC/L", "stack": "NoECC/L"},
        "memory_savings": 0.271,
        "memory_savings_range": (0.164, 0.378),
        "server_savings": 0.081,
        "crashes_per_month": 96,
        "availability": 0.9778,
        "incorrect_per_million": 163,
    },
    "Detect&Recover/L": {
        "mapping": {"private": "ECC/L", "heap": "Par+R/L", "stack": "NoECC/L"},
        "memory_savings": 0.155,
        "memory_savings_range": (0.031, 0.279),
        "server_savings": 0.047,
        "crashes_per_month": 4,
        "availability": 0.9990,
        "incorrect_per_million": 12,
    },
}

#: Figure 8 — qualitative anchor points: at 2000 errors/month,
#: WebSearch and Memcached reach 99.00% availability unprotected, and
#: there is an order-of-magnitude spread in tolerable error rates.
FIG8_AVAILABILITY_TARGETS = (0.9999, 0.999, 0.99)
FIG8_UNPROTECTED_OK_AT_2000 = ("WebSearch", "Memcached")

#: Headline abstract claims.
HEADLINE = {
    "server_cost_savings": 0.047,
    "availability": 0.999,
    "traditional_protection_memory_premium": 0.125,
    "unprotected_availability_somewhere": 0.99,
}

#: Qualitative findings (paper §V-B) checked by the experiment suite.
FINDINGS = (
    "F1: error tolerance varies across applications (orders of magnitude)",
    "F2: error tolerance varies between regions within an application",
    "F3: crashes are quick, incorrectness is periodic over time",
    "F4: some regions are safer (stack masks by overwrite; private/heap "
    "mask by logic)",
    "F5: more severe errors mainly decrease correctness, not crash rate",
    "F6: data recoverability varies across memory regions",
)
