"""HRM designs: region→policy mappings and their evaluation (Table 6).

Defines the five design points the paper compares, plus the evaluator
that turns (measured vulnerability profile × design × cost/error models)
into the Table 6 metrics: memory/server cost savings, crashes per
server-month, single-server availability, and incorrect responses per
million queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.availability import (
    AvailabilityParams,
    ErrorRateModel,
    availability_from_crashes,
    design_outcome_rates,
)
from repro.core.cost_model import CostModel
from repro.core.design_space import (
    HardwareTechnique,
    RegionPolicy,
    SoftwareResponse,
)
from repro.core.vulnerability import VulnerabilityProfile


@dataclass(frozen=True)
class HRMDesign:
    """A named heterogeneous-reliability memory design."""

    name: str
    policies: Mapping[str, RegionPolicy]

    def describe(self) -> Dict[str, str]:
        """Region -> short policy label (the Table 6 mapping columns)."""
        return {region: policy.describe() for region, policy in self.policies.items()}

    @property
    def uses_less_tested(self) -> bool:
        """Whether any region sits on less-tested DRAM."""
        return any(policy.less_tested for policy in self.policies.values())


@dataclass
class DesignMetrics:
    """The Table 6 (right) row for one design."""

    design: HRMDesign
    memory_cost_savings: float
    memory_cost_savings_range: Optional[Tuple[float, float]]
    server_cost_savings: float
    server_cost_savings_range: Optional[Tuple[float, float]]
    crashes_per_month: float
    availability: float
    incorrect_per_million_queries: float
    region_rates: Dict[str, object] = field(default_factory=dict)

    def meets_target(self, availability_target: float) -> bool:
        """Whether the design satisfies an availability requirement."""
        return self.availability >= availability_target


def _policies(regions, **kwargs) -> Dict[str, RegionPolicy]:
    return {region: RegionPolicy(**kwargs) for region in regions}


def typical_server(regions) -> HRMDesign:
    """All memory SEC-DED protected (the baseline)."""
    return HRMDesign(
        "Typical Server", _policies(regions, technique=HardwareTechnique.SEC_DED)
    )


def consumer_pc(regions) -> HRMDesign:
    """No detection or correction anywhere."""
    return HRMDesign(
        "Consumer PC", _policies(regions, technique=HardwareTechnique.NONE)
    )


def detect_and_recover(
    regions,
    recoverable_fractions: Optional[Mapping[str, float]] = None,
) -> HRMDesign:
    """Par+R on the private region, nothing elsewhere (paper design 3)."""
    policies: Dict[str, RegionPolicy] = {}
    fractions = dict(recoverable_fractions or {})
    for region in regions:
        if region == "private":
            policies[region] = RegionPolicy(
                technique=HardwareTechnique.PARITY,
                response=SoftwareResponse.RECOVER,
                recoverable_fraction=fractions.get(region, 1.0),
            )
        else:
            policies[region] = RegionPolicy(technique=HardwareTechnique.NONE)
    return HRMDesign("Detect&Recover", policies)


def less_tested(regions) -> HRMDesign:
    """Less-tested DRAM everywhere, no detection/correction (design 4)."""
    return HRMDesign(
        "Less-Tested (L)",
        _policies(regions, technique=HardwareTechnique.NONE, less_tested=True),
    )


def detect_and_recover_less_tested(
    regions,
    recoverable_fractions: Optional[Mapping[str, float]] = None,
) -> HRMDesign:
    """ECC private + Par+R heap + NoECC stack, all on less-tested DRAM.

    The paper's Detect&Recover/L: stronger techniques compensate for the
    less-tested devices' higher error rate where the data is vulnerable.
    """
    policies: Dict[str, RegionPolicy] = {}
    fractions = dict(recoverable_fractions or {})
    for region in regions:
        if region == "private":
            policies[region] = RegionPolicy(
                technique=HardwareTechnique.SEC_DED, less_tested=True
            )
        elif region == "heap":
            policies[region] = RegionPolicy(
                technique=HardwareTechnique.PARITY,
                response=SoftwareResponse.RECOVER,
                less_tested=True,
                recoverable_fraction=fractions.get(region, 1.0),
            )
        else:
            policies[region] = RegionPolicy(
                technique=HardwareTechnique.NONE, less_tested=True
            )
    return HRMDesign("Detect&Recover/L", policies)


def paper_design_points(
    regions,
    recoverable_fractions: Optional[Mapping[str, float]] = None,
) -> Tuple[HRMDesign, ...]:
    """The five Table 6 designs, in paper order."""
    return (
        typical_server(regions),
        consumer_pc(regions),
        detect_and_recover(regions, recoverable_fractions),
        less_tested(regions),
        detect_and_recover_less_tested(regions, recoverable_fractions),
    )


class DesignEvaluator:
    """Evaluates HRM designs against a measured vulnerability profile."""

    def __init__(
        self,
        profile: VulnerabilityProfile,
        cost_model: Optional[CostModel] = None,
        error_model: Optional[ErrorRateModel] = None,
        availability_params: Optional[AvailabilityParams] = None,
        error_label: str = "single-bit soft",
        region_sizes: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.profile = profile
        self.cost_model = cost_model or CostModel()
        self.error_model = error_model or ErrorRateModel()
        self.availability_params = availability_params or AvailabilityParams()
        self.error_label = error_label
        self.region_sizes = (
            dict(region_sizes) if region_sizes is not None else profile.region_sizes
        )

    def evaluate(self, design: HRMDesign) -> DesignMetrics:
        """Compute the full Table 6 row for ``design``."""
        sizes = {
            region: self.region_sizes.get(region, 0) for region in design.policies
        }
        memory_savings = self.cost_model.memory_cost_savings(design.policies, sizes)
        savings_range = None
        server_range = None
        if design.uses_less_tested:
            low, _nominal, high = self.cost_model.savings_range(
                design.policies, sizes
            )
            savings_range = (low, high)
            server_range = (
                self.cost_model.server_cost_savings(low),
                self.cost_model.server_cost_savings(high),
            )
        rates = design_outcome_rates(
            self.profile,
            design.policies,
            error_model=self.error_model,
            error_label=self.error_label,
            region_sizes=sizes,
        )
        crashes = sum(rate.crashes_per_month for rate in rates.values())
        incorrect_per_month = sum(
            rate.incorrect_responses_per_month for rate in rates.values()
        )
        incorrect_per_million = (
            incorrect_per_month / self.availability_params.queries_per_month * 1e6
        )
        return DesignMetrics(
            design=design,
            memory_cost_savings=memory_savings,
            memory_cost_savings_range=savings_range,
            server_cost_savings=self.cost_model.server_cost_savings(memory_savings),
            server_cost_savings_range=server_range,
            crashes_per_month=crashes,
            availability=availability_from_crashes(
                crashes, self.availability_params
            ),
            incorrect_per_million_queries=incorrect_per_million,
            region_rates=rates,
        )

    def evaluate_all(self, designs) -> Dict[str, DesignMetrics]:
        """Evaluate a collection of designs, keyed by name."""
        return {design.name: self.evaluate(design) for design in designs}
