"""Characterization campaign — the paper's Figure 2 loop.

For every (memory region × error type) cell the campaign repeatedly:

1. restarts the application with pristine data (snapshot restore),
2. injects the desired number and type of errors at a sampled live
   address (Algorithm 1a),
3. replays the client workload,
4. watches for the crash condition (≥50 % failed requests or a fatal
   error),
5. compares responses with the recorded fault-free outputs,

then classifies each trial with the Figure 1 taxonomy and aggregates the
results into a :class:`~repro.core.vulnerability.VulnerabilityProfile`.

Seeding and determinism
-----------------------
Every trial draws from its own ``random.Random`` stream derived (via
:class:`~repro.utils.rng.SeedSequenceFactory`) from the campaign root
seed and the trial's identity — application name, cell name, error
label, and trial index. Trials are therefore mutually independent and
order-independent, which is what lets ``run(workers=N)`` fan the grid
out over a process pool (:mod:`repro.exec.parallel`) and still return a
profile bit-identical to the serial run.

Campaigns are deterministic given their seed; ``load_or_run_profile``
caches profiles as JSON (keyed by a config fingerprint, so stale caches
measured under different knobs are re-measured automatically).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.apps.base import Workload
from repro.apps.clients import ClientDriver
from repro.core.design_space import HardwareTechnique
from repro.core.taxonomy import ErrorOutcome, classify_outcome
from repro.core.vulnerability import VulnerabilityProfile
from repro.exec.cells import CampaignCell
from repro.injection.injector import (
    SINGLE_BIT_HARD,
    SINGLE_BIT_SOFT,
    ErrorInjector,
    ErrorSpec,
)
from repro.obs.events import (
    SPAN_CAMPAIGN,
    SPAN_CELL,
    SPAN_CONSUME,
    SPAN_TRIAL,
    SPAN_VERIFY,
)
from repro.obs.progress import ProgressClock, emit_progress
from repro.obs.trace import NULL_OBSERVER, Observer
from repro.utils.rng import SeedSequenceFactory

logger = logging.getLogger("repro.campaign")

#: Error types characterized by default (Figures 3 and 4).
DEFAULT_SPECS = (SINGLE_BIT_SOFT, SINGLE_BIT_HARD)

#: Version of the profile cache format / trial seeding scheme. Bumping
#: it invalidates every cached profile (see ``campaign_fingerprint``).
CACHE_FORMAT_VERSION = 3

#: Fingerprint schema version: bumped whenever the *shape* of the
#: fingerprint payload changes (new fields, renamed keys), so caches
#: written before a redesign can never alias caches written after it.
FINGERPRINT_SCHEMA_VERSION = 3

#: Trial-execution backends accepted by the campaign: the scalar
#: reference loop, the vectorized path that pre-plans whole trial
#: shards through :mod:`repro.kernels`, and the pruned path that
#: additionally resolves footprint-decidable trials analytically from
#: one golden trace (:mod:`repro.exec.pruning`) — all bit-identical.
BACKENDS = ("scalar", "vectorized", "pruned")


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of a characterization campaign."""

    trials_per_cell: int = 60
    queries_per_trial: int = 150
    seed: int = 99
    failure_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.trials_per_cell <= 0:
            raise ValueError("trials_per_cell must be positive")
        if self.queries_per_trial <= 0:
            raise ValueError("queries_per_trial must be positive")
        if not 0.0 < self.failure_fraction <= 1.0:
            raise ValueError("failure_fraction must be in (0, 1]")


@dataclass
class TrialRecord:
    """Raw result of a single injection trial."""

    region: str
    error_label: str
    anchor_addr: int
    outcome: ErrorOutcome
    responded: int
    incorrect: int
    failed: int
    effect_delay_minutes: Optional[float]


def _normalize_workers(workers: Optional[int]) -> int:
    """Validate a worker count; None means serial."""
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _parse_technique(codec: Union[str, HardwareTechnique]) -> HardwareTechnique:
    """Resolve a codec given as enum, enum value, or enum name."""
    if isinstance(codec, HardwareTechnique):
        return codec
    try:
        return HardwareTechnique(codec)
    except ValueError:
        pass
    key = str(codec).strip().upper().replace("-", "_").replace(" ", "_")
    try:
        return HardwareTechnique[key]
    except KeyError:
        pass
    # Separator-free spellings ("secded", "DECTED") still resolve.
    squashed = key.replace("_", "")
    for technique in HardwareTechnique:
        if technique.name.replace("_", "") == squashed:
            return technique
    expected = ", ".join(technique.value for technique in HardwareTechnique)
    raise ValueError(
        f"unknown memory codec {codec!r}; expected one of: {expected}"
    ) from None


def _normalize_region_codecs(
    region_codecs: Optional[Mapping[str, Union[str, HardwareTechnique]]],
) -> Optional[Dict[str, str]]:
    """Canonicalize a {region: codec} mapping to enum-value strings."""
    if not region_codecs:
        return None
    return {
        str(name): _parse_technique(codec).value
        for name, codec in region_codecs.items()
    }


class CharacterizationCampaign:
    """Runs the Figure 2 loop for one workload.

    All knobs are keyword-only (part of the stable :mod:`repro.api`
    surface): only the workload is positional.

    Args:
        workload: The application under characterization.
        config: Campaign knobs (defaults to :class:`CampaignConfig`).
        observer: Telemetry hub (tracing spans + metrics). The default
            disabled observer makes instrumentation free; see
            :mod:`repro.obs`.
        backend: ``"scalar"`` runs the reference trial-by-trial loop;
            ``"vectorized"`` pre-plans whole trial shards through
            :class:`~repro.kernels.planner.BatchInjectionPlanner` and
            batches instrument updates, returning a bit-identical
            profile faster; ``"pruned"`` composes with the vectorized
            path and additionally resolves footprint-decidable trials
            analytically from one golden trace
            (:mod:`repro.exec.pruning`) without executing the workload.
        region_codecs: Optional {region name: hardware codec} mapping
            (:class:`~repro.core.design_space.HardwareTechnique` or its
            value/name string). Regions whose codec corrects single-bit
            errors have single-bit trials injected as *virtual* faults —
            consumption is tracked but memory never corrupted — across
            every backend, so profiles stay backend-identical.
    """

    def __init__(
        self,
        workload: Workload,
        *,
        config: Optional[CampaignConfig] = None,
        observer: Observer = NULL_OBSERVER,
        backend: str = "scalar",
        region_codecs: Optional[Mapping[str, Union[str, HardwareTechnique]]] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.workload = workload
        self.config = config if config is not None else CampaignConfig()
        self.observer = observer
        self.backend = backend
        self.region_codecs = _normalize_region_codecs(region_codecs)
        self._corrected_regions: frozenset = frozenset()
        self._driver: Optional[ClientDriver] = None
        self._rng: Optional[random.Random] = None
        self._seed_factory: Optional[SeedSequenceFactory] = None
        self._golden_trace = None
        self._corrected_mask = None
        self.trials: List[TrialRecord] = []
        from repro.exec.pruning import PruningStats

        self.pruning_stats = PruningStats()

    def prepare(self) -> None:
        """Build the workload, checkpoint it, and record golden outputs.

        An already-built workload (e.g. a shared test fixture) is reused:
        it is reset to its checkpoint instead of rebuilt.
        """
        if self.workload.is_built:
            self.workload.reset()
        else:
            self.workload.build()
            self.workload.checkpoint()
        golden = self.workload.golden_responses()
        self.workload.reset()
        self._driver = ClientDriver(
            self.workload, golden, failure_fraction=self.config.failure_fraction
        )
        self._seed_factory = SeedSequenceFactory(self.config.seed)
        self._rng = self._seed_factory.stream(f"campaign:{self.workload.name}")
        if self.region_codecs:
            known = {region.name for region in self.workload.space.regions}
            unknown = sorted(set(self.region_codecs) - known)
            if unknown:
                raise ValueError(
                    f"region_codecs names unknown regions: {unknown}"
                )
        self._corrected_regions = frozenset(
            name
            for name, value in (self.region_codecs or {}).items()
            if HardwareTechnique(value).corrects_single_bit
        )

    # ------------------------------------------------------------------
    # Trial seeding
    # ------------------------------------------------------------------
    def trial_rng(
        self, cell_name: str, error_label: str, trial_index: int
    ) -> random.Random:
        """Independent seed stream for one trial of one cell.

        The stream identity is (root seed, app, cell, error type, trial
        index) — never execution order — which is the foundation of the
        serial ≡ parallel determinism guarantee.
        """
        if self._seed_factory is None:
            raise RuntimeError("prepare() must be called before trial_rng()")
        label = (
            f"trial:{self.workload.name}:{cell_name}:{error_label}:{trial_index}"
        )
        return self._seed_factory.stream(label)

    # ------------------------------------------------------------------
    def _execute_trial(
        self,
        cell_name: str,
        spans: Optional[List[Tuple[int, int]]],
        spec: ErrorSpec,
        rng: Optional[random.Random],
        positions: Optional[List[Tuple[int, int]]] = None,
    ) -> TrialRecord:
        """Inject→drive→classify against pre-reset state.

        With ``positions`` (the vectorized backend) the pre-planned
        flips are installed without consuming any RNG; otherwise the
        anchor is sampled from ``spans`` and flips drawn from ``rng``,
        the scalar reference sequence.
        """
        if self._driver is None:
            raise RuntimeError("prepare() must be called before running trials")
        workload = self.workload
        space = workload.space
        if positions is not None:
            injector = ErrorInjector(
                space,
                random.Random(0),
                observer=self.observer,
                corrected_regions=self._corrected_regions,
            )
            record = injector.inject_planned(spec, positions)
        else:
            injector = ErrorInjector(
                space,
                rng,
                observer=self.observer,
                corrected_regions=self._corrected_regions,
            )
            record = injector.inject(spec, ranges=spans)
        injected_at = space.time

        query_budget = min(self.config.queries_per_trial, workload.query_count)
        with self.observer.span(SPAN_CONSUME) as consume_span:
            report = self._driver.run(range(query_budget))
            consume_span.set(
                queries=query_budget,
                responded=report.responded,
                incorrect=report.incorrect,
                failed=report.failed,
            )

        with self.observer.span(SPAN_VERIFY) as verify_span:
            consumed = False
            overwritten = False
            for addr in set(record.addresses):
                reads, was_overwritten = space.fault_consumption(addr)
                consumed = consumed or reads > 0
                overwritten = overwritten or was_overwritten
            outcome = classify_outcome(
                report, consumed, overwritten, self.config.failure_fraction
            )
            verify_span.set(
                consumed=consumed, overwritten=overwritten, outcome=outcome.value
            )

        effect_times = [
            t
            for t in (report.first_incorrect_time, report.first_failure_time)
            if t is not None
        ]
        delay_minutes: Optional[float] = None
        if effect_times:
            delay_minutes = workload.time_scale.minutes(
                max(0, min(effect_times) - injected_at)
            )
        return TrialRecord(
            region=cell_name,
            error_label=spec.label,
            anchor_addr=record.anchor_addr,
            outcome=outcome,
            responded=report.responded,
            incorrect=report.incorrect,
            failed=report.failed,
            effect_delay_minutes=delay_minutes,
        )

    def run_trial(
        self,
        region_name: str,
        spec: ErrorSpec,
        rng: Optional[random.Random] = None,
    ) -> TrialRecord:
        """One restart→inject→drive→classify cycle.

        Without an explicit ``rng`` the campaign's legacy sequential
        stream is used (handy for ad-hoc single trials); ``run`` passes
        per-trial derived streams instead.
        """
        if self._driver is None or self._rng is None:
            raise RuntimeError("prepare() must be called before run_trial()")
        workload = self.workload
        workload.reset()
        region = workload.space.region_named(region_name)
        trial = self._execute_trial(
            region_name,
            workload.sample_ranges(region),
            spec,
            rng if rng is not None else self._rng,
        )
        self.trials.append(trial)
        return trial

    def measure_trial(self, cell: CampaignCell, trial_index: int) -> TrialRecord:
        """Measure one trial of one campaign cell with its derived seed.

        The unit of work shared by the serial loop and pool workers:
        region cells re-sample live spans after every reset; custom
        cells use their fixed spans. The whole restart→inject→drive→
        classify cycle is wrapped in a ``trial`` tracing span whose path
        is derived from the grid identity, never execution order.
        """
        rng = self.trial_rng(cell.name, cell.spec.label, trial_index)
        cell_key = f"{cell.name}|{cell.spec.label}"
        with self.observer.span(
            SPAN_TRIAL,
            key=str(trial_index),
            attrs={"cell": cell_key, "trial_index": trial_index},
        ) as span:
            if cell.spans is None:
                trial = self.run_trial(cell.name, cell.spec, rng=rng)
            else:
                self.workload.reset()
                trial = self._execute_trial(
                    cell.name, list(cell.spans), cell.spec, rng
                )
            span.set(
                outcome=trial.outcome.value,
                masked=trial.outcome.is_masked,
                anchor_addr=trial.anchor_addr,
                responded=trial.responded,
                incorrect=trial.incorrect,
                failed=trial.failed,
                effect_delay_minutes=trial.effect_delay_minutes,
            )
        return trial

    def plan_cell_trials(self, cell: CampaignCell, trial_indices: Sequence[int]):
        """Pre-draw a whole shard's injections (vectorized backend).

        Replays each trial's derived seed stream through the scalar draw
        sequence ahead of execution, so the returned
        :class:`~repro.kernels.planner.InjectionPlan` holds exactly the
        anchors and flips the scalar loop would have drawn trial by
        trial. Region cells sample their live spans once from the
        pristine checkpoint — valid for every trial because each trial
        resets to that same checkpoint.
        """
        from repro.kernels.planner import BatchInjectionPlanner

        workload = self.workload
        if cell.spans is None:
            workload.reset()
            region = workload.space.region_named(cell.name)
            spans = workload.sample_ranges(region)
        else:
            spans = list(cell.spans)
        planner = BatchInjectionPlanner(workload.space)
        return planner.plan(
            cell.spec,
            spans,
            lambda index: self.trial_rng(cell.name, cell.spec.label, index),
            trial_indices,
        )

    # ------------------------------------------------------------------
    # Trial pruning (backend="pruned")
    # ------------------------------------------------------------------
    def golden_trace(self):
        """Record (once) and return the campaign's golden access trace.

        One trace serves every cell: the query budget is a config
        constant and the fault-free replay is injection-independent.
        """
        if self._golden_trace is None:
            from repro.exec.pruning import record_golden_trace

            if self._driver is None:
                self.prepare()
            query_budget = min(
                self.config.queries_per_trial, self.workload.query_count
            )
            self._golden_trace = record_golden_trace(
                self.workload, self._driver, query_budget
            )
        return self._golden_trace

    def corrected_mask(self):
        """Per-byte corrected-region mask (None when nothing is protected)."""
        if not self._corrected_regions:
            return None
        if self._corrected_mask is None:
            from repro.exec.pruning import corrected_byte_mask

            self._corrected_mask = corrected_byte_mask(
                self.workload.space, self._corrected_regions
            )
        return self._corrected_mask

    def classify_plan_trials(self, plan):
        """Pre-classify one planned batch against the golden trace.

        Returns a :class:`~repro.exec.pruning.PlanClassification`, or
        ``None`` when the spec's fault kind has no analytic model (the
        whole cell falls back to execution).
        """
        from repro.exec.pruning import classify_plan

        return classify_plan(plan, self.golden_trace(), self.corrected_mask())

    def classify_cell_trials(self, cell: CampaignCell, trial_indices: Sequence[int]):
        """Plan + pre-classify one cell's trials in a single call.

        The parent-process entry point used by the parallel runner:
        planning and classification both happen before any shard is
        dispatched, so only undecidable trials are shipped to workers.
        """
        plan = self.plan_cell_trials(cell, trial_indices)
        return plan, self.classify_plan_trials(plan)

    def synthesize_pruned_trial(
        self, cell: CampaignCell, plan, local: int, outcome: ErrorOutcome
    ) -> TrialRecord:
        """Materialize one analytically decided trial without execution.

        Emits a ``trial`` span (tagged ``pruned=True``) with the exact
        attributes an executed golden-identical trial would carry, and
        settles the golden replay's clock/counter deltas on the address
        space so campaign accounting matches an executed run.
        """
        trace = self.golden_trace()
        trial_index = int(plan.trial_indices[local])
        anchor_addr = int(plan.anchor_addrs[local])
        query_budget = min(self.config.queries_per_trial, self.workload.query_count)
        cell_key = f"{cell.name}|{cell.spec.label}"
        with self.observer.span(
            SPAN_TRIAL,
            key=str(trial_index),
            attrs={"cell": cell_key, "trial_index": trial_index, "pruned": True},
        ) as span:
            self.workload.space.settle_recorded_trial(
                trace.end_time, trace.per_region
            )
            span.set(
                outcome=outcome.value,
                masked=outcome.is_masked,
                anchor_addr=anchor_addr,
                responded=query_budget,
                incorrect=0,
                failed=0,
                effect_delay_minutes=None,
            )
        trial = TrialRecord(
            region=cell.name,
            error_label=cell.spec.label,
            anchor_addr=anchor_addr,
            outcome=outcome,
            responded=query_budget,
            incorrect=0,
            failed=0,
            effect_delay_minutes=None,
        )
        if cell.spans is None:
            self.trials.append(trial)
        return trial

    def measure_planned_trial(
        self,
        cell: CampaignCell,
        trial_index: int,
        positions: List[Tuple[int, int]],
    ) -> TrialRecord:
        """Measure one pre-planned trial (vectorized unit of work).

        The planned counterpart of :meth:`measure_trial`: the injection
        positions come from an :class:`InjectionPlan` instead of being
        drawn inside the trial, but the span shape, profile
        contribution, and ``self.trials`` bookkeeping are identical.
        """
        cell_key = f"{cell.name}|{cell.spec.label}"
        with self.observer.span(
            SPAN_TRIAL,
            key=str(trial_index),
            attrs={"cell": cell_key, "trial_index": trial_index},
        ) as span:
            self.workload.reset()
            trial = self._execute_trial(
                cell.name, None, cell.spec, None, positions=positions
            )
            span.set(
                outcome=trial.outcome.value,
                masked=trial.outcome.is_masked,
                anchor_addr=trial.anchor_addr,
                responded=trial.responded,
                incorrect=trial.incorrect,
                failed=trial.failed,
                effect_delay_minutes=trial.effect_delay_minutes,
            )
        if cell.spans is None:
            self.trials.append(trial)
        return trial

    def note_parallel_trials(
        self, cells: Sequence[CampaignCell], results: Sequence
    ) -> None:
        """Mirror worker-side region trials into ``self.trials``.

        Keeps parity with the serial path, where ``run_trial`` appends
        every region-cell trial (custom cells never did).
        """
        for result in results:
            cell = cells[result.cell_index]
            if cell.spans is not None:
                continue
            self.trials.append(
                TrialRecord(
                    region=cell.name,
                    error_label=cell.spec.label,
                    anchor_addr=result.anchor_addr,
                    outcome=ErrorOutcome(result.outcome),
                    responded=result.responded,
                    incorrect=result.incorrect,
                    failed=result.failed,
                    effect_delay_minutes=result.effect_delay_minutes,
                )
            )

    def _run_planned_cell(
        self, cell_def: CampaignCell, plan, classification=None
    ) -> List[TrialRecord]:
        """Execute one cell's pre-planned trials with batched telemetry.

        When tracing is enabled the trials emit into an in-memory buffer
        rooted at the open cell span's path, and the buffer is replayed
        into the real observer in one call — sinks see identical events
        while the metrics instruments take one batched update per cell
        instead of one per trial.

        With a ``classification`` (the pruned backend), decidable trials
        are synthesized analytically in place; only the rest execute.
        Trials stay in canonical index order either way, so the profile
        fold is byte-identical to the unpruned run.
        """
        observer = self.observer
        buffer = None
        if observer.enabled:
            from repro.obs.sinks import EventBuffer

            buffer = EventBuffer()
            self.observer = Observer(
                sinks=[buffer], root_path=observer.current_path()
            )
        try:
            trials = []
            for local, trial_index in enumerate(plan.trial_indices):
                outcome = (
                    classification.outcomes[local]
                    if classification is not None
                    else None
                )
                if outcome is not None:
                    trials.append(
                        self.synthesize_pruned_trial(
                            cell_def, plan, local, outcome
                        )
                    )
                else:
                    trials.append(
                        self.measure_planned_trial(
                            cell_def, int(trial_index), plan.flips_for(local)
                        )
                    )
        finally:
            self.observer = observer
        if buffer is not None:
            observer.replay(buffer.events)
        return trials

    # ------------------------------------------------------------------
    def _run_cells(
        self,
        cells: Sequence[CampaignCell],
        budget: int,
        region_sizes: Dict[str, int],
        workers: int,
        workload_factory: Optional[Callable[[], Workload]],
        progress: Optional[Callable],
    ) -> VulnerabilityProfile:
        """Execute a cell grid serially or on a worker pool.

        Both paths run inside one ``campaign`` tracing span; the serial
        loop additionally opens a ``cell`` span per grid cell (the
        parallel runner opens its cell spans at merge time so relayed
        worker events land in canonical order).
        """
        observer = self.observer
        trials_total = len(cells) * budget
        logger.info(
            "campaign %s: %d cells x %d trials on %d worker(s)",
            self.workload.name, len(cells), budget, workers,
        )
        with observer.span(
            SPAN_CAMPAIGN,
            attrs={
                "app": self.workload.name,
                "cells": len(cells),
                "trials_per_cell": budget,
                "workers": workers,
            },
        ) as campaign_span:
            if workers > 1:
                from repro.exec.parallel import ParallelCampaignRunner

                runner = ParallelCampaignRunner(
                    workers=workers,
                    workload_factory=workload_factory,
                    progress=progress,
                )
                profile = runner.run(self, cells, budget, region_sizes)
                campaign_span.set(trials=trials_total)
                logger.info(
                    "campaign %s: %d trials complete",
                    self.workload.name, trials_total,
                )
                return profile

            profile = VulnerabilityProfile(app=self.workload.name)
            profile.region_sizes = dict(region_sizes)
            clock = ProgressClock()
            trials_done = 0
            vectorized = self.backend in ("vectorized", "pruned")
            pruning = self.backend == "pruned"
            for cell_def in cells:
                cell = profile.cell(cell_def.name, cell_def.spec.label)
                cell_key = f"{cell_def.name}|{cell_def.spec.label}"
                memory_before = self.workload.space.fast_path_stats()
                cell_start = time.perf_counter()
                plan = (
                    self.plan_cell_trials(cell_def, range(budget))
                    if vectorized
                    else None
                )
                classification = (
                    self.classify_plan_trials(plan) if pruning else None
                )
                with observer.span(
                    SPAN_CELL,
                    key=cell_key,
                    attrs={
                        "region": cell_def.name,
                        "error_label": cell_def.spec.label,
                        "trials": budget,
                    },
                ):
                    if plan is not None:
                        cell_trials = self._run_planned_cell(
                            cell_def, plan, classification
                        )
                    else:
                        cell_trials = [
                            self.measure_trial(cell_def, trial_index)
                            for trial_index in range(budget)
                        ]
                    for trial in cell_trials:
                        cell.record(
                            outcome=trial.outcome,
                            responded=trial.responded,
                            incorrect=trial.incorrect,
                            failed=trial.failed,
                            effect_delay_minutes=trial.effect_delay_minutes,
                        )
                instruments = observer.instruments
                if pruning:
                    cell_pruned = (
                        classification.pruned_count
                        if classification is not None
                        else 0
                    )
                    cell_fallback = budget if classification is None else 0
                    self.pruning_stats.add(
                        pruned=cell_pruned,
                        executed=budget - cell_pruned,
                        fallback=cell_fallback,
                    )
                    if instruments is not None:
                        instruments.record_pruning(
                            {
                                "pruned": cell_pruned,
                                "executed": budget - cell_pruned,
                                "fallback": cell_fallback,
                            }
                        )
                if instruments is not None:
                    memory_after = self.workload.space.fast_path_stats()
                    instruments.record_memory(
                        {
                            key: memory_after[key] - memory_before.get(key, 0)
                            for key in memory_after
                        }
                    )
                trials_done += budget
                logger.debug(
                    "cell %s done (%d/%d trials)",
                    cell_key, trials_done, trials_total,
                )
                emit_progress(
                    progress,
                    clock,
                    trials_done=trials_done,
                    trials_total=trials_total,
                    worker_pid=os.getpid(),
                    shard_trials=budget,
                    shard_seconds=time.perf_counter() - cell_start,
                    cell_name=cell_def.name,
                    error_label=cell_def.spec.label,
                    observer=observer,
                )
            campaign_span.set(trials=trials_total)
        logger.info("campaign %s: %d trials complete", self.workload.name, trials_total)
        return profile

    def run(
        self,
        regions: Optional[Sequence[str]] = None,
        specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
        trials_per_cell: Optional[int] = None,
        workers: Optional[int] = None,
        workload_factory: Optional[Callable[[], Workload]] = None,
        progress: Optional[Callable] = None,
    ) -> VulnerabilityProfile:
        """Run the full campaign and return the vulnerability profile.

        Args:
            regions: Region names to characterize (default: all).
            specs: Error types to inject.
            trials_per_cell: Per-cell trial budget override.
            workers: Process count for parallel execution; ``None`` or 1
                runs serially. The returned profile is bit-identical for
                any worker count.
            workload_factory: Picklable zero-argument factory used to
                rebuild the workload in spawned workers (not needed on
                fork platforms, where workers inherit the prepared
                campaign).
            progress: Optional hook called with
                :class:`~repro.obs.progress.ProgressEvent` after each
                completed shard (e.g. a
                :class:`~repro.obs.progress.CampaignMetrics`).
        """
        worker_count = _normalize_workers(workers)
        if self._driver is None:
            self.prepare()
        workload = self.workload
        if regions is None:
            regions = [region.name for region in workload.space.regions]
        budget = trials_per_cell or self.config.trials_per_cell
        cells = [
            CampaignCell(name=region_name, spec=spec)
            for region_name in regions
            for spec in specs
        ]
        return self._run_cells(
            cells,
            budget,
            self.live_region_sizes(),
            worker_count,
            workload_factory,
            progress,
        )

    def run_custom_cells(
        self,
        cells: Dict[str, List],
        specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
        trials_per_cell: Optional[int] = None,
        workers: Optional[int] = None,
        workload_factory: Optional[Callable[[], Workload]] = None,
        progress: Optional[Callable] = None,
    ) -> VulnerabilityProfile:
        """Characterize arbitrary named address-span sets.

        The finest-granularity mode of the framework (Table 4's memory
        page / cache line rows): ``cells`` maps a structure name to its
        (base, end) spans — e.g. from
        :meth:`repro.apps.websearch.WebSearch.data_structure_ranges` —
        and each gets its own profile cell, sampled and classified
        exactly like a region. Accepts the same ``workers`` /
        ``workload_factory`` / ``progress`` arguments as :meth:`run`.
        """
        worker_count = _normalize_workers(workers)
        if self._driver is None or self._rng is None:
            self.prepare()
        budget = trials_per_cell or self.config.trials_per_cell
        region_sizes = {
            name: sum(end - base for base, end in spans)
            for name, spans in cells.items()
        }
        cell_defs = [
            CampaignCell(
                name=name,
                spec=spec,
                spans=tuple((base, end) for base, end in spans),
            )
            for name, spans in cells.items()
            for spec in specs
        ]
        return self._run_cells(
            cell_defs,
            budget,
            region_sizes,
            worker_count,
            workload_factory,
            progress,
        )

    def live_region_sizes(self) -> Dict[str, int]:
        """Bytes of live application data per region (sampling weights)."""
        sizes: Dict[str, int] = {}
        for region in self.workload.space.regions:
            spans = self.workload.sample_ranges(region)
            sizes[region.name] = sum(end - base for base, end in spans)
        return sizes


def campaign_fingerprint(
    config: CampaignConfig,
    specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
    regions: Optional[Sequence[str]] = None,
    backend: str = "scalar",
    region_codecs: Optional[Mapping[str, Union[str, HardwareTechnique]]] = None,
) -> str:
    """Stable digest of every knob that shapes a measured profile.

    Embedded in profile caches so that a cache written under different
    knobs (trial budget, query budget, seed, error specs, region
    selection, or an older seeding scheme) is detected as stale and
    re-measured instead of silently reused.

    The payload carries two versioning fields: ``format`` (the cache /
    seeding scheme version) and ``schema`` (the fingerprint payload
    shape itself), plus the trial-execution ``backend`` — so caches
    written by scalar and vectorized runs, or by releases before and
    after a payload redesign, can never collide even though the profile
    bytes are expected to match.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    codecs = _normalize_region_codecs(region_codecs)
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "schema": FINGERPRINT_SCHEMA_VERSION,
        "backend": backend,
        "trials_per_cell": config.trials_per_cell,
        "queries_per_trial": config.queries_per_trial,
        "seed": config.seed,
        "failure_fraction": config.failure_fraction,
        "specs": [{"kind": spec.kind.value, "bits": spec.bits} for spec in specs],
        "regions": list(regions) if regions is not None else None,
        "region_codecs": sorted(codecs.items()) if codecs else None,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_or_run_profile(
    workload_factory: Callable[[], Workload],
    config: CampaignConfig,
    cache_path: Optional[Path] = None,
    specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
    regions: Optional[Sequence[str]] = None,
    workers: Optional[Union[int, str]] = None,
    progress: Optional[Callable] = None,
    backend: str = "scalar",
    region_codecs: Optional[Mapping[str, Union[str, HardwareTechnique]]] = None,
) -> VulnerabilityProfile:
    """Return a (possibly cached) vulnerability profile.

    The cached JSON embeds a :func:`campaign_fingerprint`; a cache whose
    fingerprint does not match the requested knobs — including legacy
    caches written before fingerprinting existed — is re-measured and
    rewritten. Corrupt cache files are likewise ignored. ``workers``
    parallelizes (``"auto"`` / ``0`` resolve to the usable CPU count via
    :func:`repro.exec.workers.resolve_workers`) and
    ``backend="vectorized"``/``"pruned"`` accelerate the
    (re-)measurement without affecting the result.
    """
    from repro.exec.workers import resolve_workers

    workers = resolve_workers(workers)
    fingerprint = campaign_fingerprint(
        config, specs, regions, backend=backend, region_codecs=region_codecs
    )
    if cache_path is not None and cache_path.exists():
        try:
            data = json.loads(cache_path.read_text())
            if data.get("fingerprint") == fingerprint:
                return VulnerabilityProfile.from_dict(data["profile"])
        except (ValueError, KeyError, AttributeError):
            pass  # fall through to a fresh run
    campaign = CharacterizationCampaign(
        workload_factory(), config=config, backend=backend,
        region_codecs=region_codecs,
    )
    campaign.prepare()
    profile = campaign.run(
        regions=regions,
        specs=specs,
        workers=workers,
        workload_factory=workload_factory,
        progress=progress,
    )
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text(
            json.dumps({"fingerprint": fingerprint, "profile": profile.to_dict()})
        )
    return profile
