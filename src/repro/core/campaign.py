"""Characterization campaign — the paper's Figure 2 loop.

For every (memory region × error type) cell the campaign repeatedly:

1. restarts the application with pristine data (snapshot restore),
2. injects the desired number and type of errors at a sampled live
   address (Algorithm 1a),
3. replays the client workload,
4. watches for the crash condition (≥50 % failed requests or a fatal
   error),
5. compares responses with the recorded fault-free outputs,

then classifies each trial with the Figure 1 taxonomy and aggregates the
results into a :class:`~repro.core.vulnerability.VulnerabilityProfile`.

Campaigns are deterministic given their seed; ``load_or_run_profile``
caches profiles as JSON so the many benchmarks that share a
characterization do not re-measure it.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps.base import Workload
from repro.apps.clients import ClientDriver
from repro.core.taxonomy import ErrorOutcome, classify_outcome
from repro.core.vulnerability import VulnerabilityProfile
from repro.injection.injector import (
    SINGLE_BIT_HARD,
    SINGLE_BIT_SOFT,
    ErrorInjector,
    ErrorSpec,
)
from repro.utils.rng import SeedSequenceFactory

#: Error types characterized by default (Figures 3 and 4).
DEFAULT_SPECS = (SINGLE_BIT_SOFT, SINGLE_BIT_HARD)


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of a characterization campaign."""

    trials_per_cell: int = 60
    queries_per_trial: int = 150
    seed: int = 99
    failure_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.trials_per_cell <= 0:
            raise ValueError("trials_per_cell must be positive")
        if self.queries_per_trial <= 0:
            raise ValueError("queries_per_trial must be positive")
        if not 0.0 < self.failure_fraction <= 1.0:
            raise ValueError("failure_fraction must be in (0, 1]")


@dataclass
class TrialRecord:
    """Raw result of a single injection trial."""

    region: str
    error_label: str
    anchor_addr: int
    outcome: ErrorOutcome
    responded: int
    incorrect: int
    failed: int
    effect_delay_minutes: Optional[float]


@dataclass
class CharacterizationCampaign:
    """Runs the Figure 2 loop for one workload."""

    workload: Workload
    config: CampaignConfig = field(default_factory=CampaignConfig)

    _driver: Optional[ClientDriver] = None
    _rng: Optional[random.Random] = None
    trials: List[TrialRecord] = field(default_factory=list)

    def prepare(self) -> None:
        """Build the workload, checkpoint it, and record golden outputs.

        An already-built workload (e.g. a shared test fixture) is reused:
        it is reset to its checkpoint instead of rebuilt.
        """
        if self.workload.is_built:
            self.workload.reset()
        else:
            self.workload.build()
            self.workload.checkpoint()
        golden = self.workload.golden_responses()
        self.workload.reset()
        self._driver = ClientDriver(
            self.workload, golden, failure_fraction=self.config.failure_fraction
        )
        self._rng = SeedSequenceFactory(self.config.seed).stream(
            f"campaign:{self.workload.name}"
        )

    # ------------------------------------------------------------------
    def run_trial(self, region_name: str, spec: ErrorSpec) -> TrialRecord:
        """One restart→inject→drive→classify cycle."""
        if self._driver is None or self._rng is None:
            raise RuntimeError("prepare() must be called before run_trial()")
        workload = self.workload
        workload.reset()
        space = workload.space
        region = space.region_named(region_name)
        injector = ErrorInjector(space, self._rng)
        record = injector.inject(spec, ranges=workload.sample_ranges(region))
        injected_at = space.time

        query_budget = min(self.config.queries_per_trial, workload.query_count)
        report = self._driver.run(range(query_budget))

        consumed = False
        overwritten = False
        for addr in set(record.addresses):
            reads, was_overwritten = space.fault_consumption(addr)
            consumed = consumed or reads > 0
            overwritten = overwritten or was_overwritten
        outcome = classify_outcome(
            report, consumed, overwritten, self.config.failure_fraction
        )

        effect_times = [
            t
            for t in (report.first_incorrect_time, report.first_failure_time)
            if t is not None
        ]
        delay_minutes: Optional[float] = None
        if effect_times:
            delay_minutes = workload.time_scale.minutes(
                max(0, min(effect_times) - injected_at)
            )
        trial = TrialRecord(
            region=region_name,
            error_label=spec.label,
            anchor_addr=record.anchor_addr,
            outcome=outcome,
            responded=report.responded,
            incorrect=report.incorrect,
            failed=report.failed,
            effect_delay_minutes=delay_minutes,
        )
        self.trials.append(trial)
        return trial

    def run(
        self,
        regions: Optional[Sequence[str]] = None,
        specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
        trials_per_cell: Optional[int] = None,
    ) -> VulnerabilityProfile:
        """Run the full campaign and return the vulnerability profile."""
        if self._driver is None:
            self.prepare()
        workload = self.workload
        if regions is None:
            regions = [region.name for region in workload.space.regions]
        budget = trials_per_cell or self.config.trials_per_cell
        profile = VulnerabilityProfile(app=workload.name)
        profile.region_sizes = self.live_region_sizes()
        for region_name in regions:
            for spec in specs:
                cell = profile.cell(region_name, spec.label)
                for _ in range(budget):
                    trial = self.run_trial(region_name, spec)
                    cell.record(
                        outcome=trial.outcome,
                        responded=trial.responded,
                        incorrect=trial.incorrect,
                        failed=trial.failed,
                        effect_delay_minutes=trial.effect_delay_minutes,
                    )
        return profile

    def run_custom_cells(
        self,
        cells: Dict[str, List],
        specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
        trials_per_cell: Optional[int] = None,
    ) -> VulnerabilityProfile:
        """Characterize arbitrary named address-span sets.

        The finest-granularity mode of the framework (Table 4's memory
        page / cache line rows): ``cells`` maps a structure name to its
        (base, end) spans — e.g. from
        :meth:`repro.apps.websearch.WebSearch.data_structure_ranges` —
        and each gets its own profile cell, sampled and classified
        exactly like a region.
        """
        if self._driver is None or self._rng is None:
            self.prepare()
        workload = self.workload
        budget = trials_per_cell or self.config.trials_per_cell
        profile = VulnerabilityProfile(app=workload.name)
        profile.region_sizes = {
            name: sum(end - base for base, end in spans)
            for name, spans in cells.items()
        }
        query_budget = min(self.config.queries_per_trial, workload.query_count)
        for name, spans in cells.items():
            for spec in specs:
                cell = profile.cell(name, spec.label)
                for _ in range(budget):
                    workload.reset()
                    space = workload.space
                    injector = ErrorInjector(space, self._rng)
                    record = injector.inject(spec, ranges=spans)
                    injected_at = space.time
                    report = self._driver.run(range(query_budget))
                    consumed = False
                    overwritten = False
                    for addr in set(record.addresses):
                        reads, was_overwritten = space.fault_consumption(addr)
                        consumed = consumed or reads > 0
                        overwritten = overwritten or was_overwritten
                    outcome = classify_outcome(
                        report, consumed, overwritten, self.config.failure_fraction
                    )
                    effect_times = [
                        t
                        for t in (
                            report.first_incorrect_time,
                            report.first_failure_time,
                        )
                        if t is not None
                    ]
                    delay = None
                    if effect_times:
                        delay = workload.time_scale.minutes(
                            max(0, min(effect_times) - injected_at)
                        )
                    cell.record(
                        outcome=outcome,
                        responded=report.responded,
                        incorrect=report.incorrect,
                        failed=report.failed,
                        effect_delay_minutes=delay,
                    )
        return profile

    def live_region_sizes(self) -> Dict[str, int]:
        """Bytes of live application data per region (sampling weights)."""
        sizes: Dict[str, int] = {}
        for region in self.workload.space.regions:
            spans = self.workload.sample_ranges(region)
            sizes[region.name] = sum(end - base for base, end in spans)
        return sizes


def load_or_run_profile(
    workload_factory: Callable[[], Workload],
    config: CampaignConfig,
    cache_path: Optional[Path] = None,
    specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
    regions: Optional[Sequence[str]] = None,
) -> VulnerabilityProfile:
    """Return a (possibly cached) vulnerability profile.

    The cache key is the caller-chosen path; stale caches are the
    caller's concern (delete the file to re-measure). Corrupt cache
    files are ignored and re-measured.
    """
    if cache_path is not None and cache_path.exists():
        try:
            data = json.loads(cache_path.read_text())
            return VulnerabilityProfile.from_dict(data)
        except (ValueError, KeyError):
            pass  # fall through to a fresh run
    campaign = CharacterizationCampaign(workload_factory(), config)
    campaign.prepare()
    profile = campaign.run(regions=regions, specs=specs)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text(json.dumps(profile.to_dict()))
    return profile
