"""Error-rate and single-server-availability models (paper §VI-A/B).

The paper's analytic chain, reproduced with measured inputs:

* errors arrive at ``errors_per_server_month`` (2000, from Schroeder et
  al. [13]), multiplied for less-tested DRAM, and land in regions in
  proportion to their size;
* a region's policy decides each error's fate: corrected in hardware,
  detected-and-recovered in software, or consumed by the application
  with the *measured* per-region crash probability and incorrect-rate;
* each crash costs ``crash_recovery_minutes`` (10) of downtime;
  ``availability = 1 − crashes · recovery / month``;
* incorrect responses per million queries combine each region's
  measured mean incorrect-responses-per-resident-error with the error
  arrival rate and the query volume.

All parameters default to the paper's Table 6 values and every
application-specific probability comes from the characterization
campaign, not from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.design_space import RegionPolicy, SoftwareResponse
from repro.core.vulnerability import VulnerabilityProfile
from repro.utils.validation import check_fraction, check_positive

MINUTES_PER_MONTH = 30 * 24 * 60  # 43,200


@dataclass(frozen=True)
class ErrorRateModel:
    """Memory-error arrival rates."""

    errors_per_server_month: float = 2000.0
    less_tested_multiplier: float = 5.0

    def __post_init__(self) -> None:
        check_positive("errors_per_server_month", self.errors_per_server_month)
        if self.less_tested_multiplier < 1.0:
            raise ValueError(
                "less_tested_multiplier must be >= 1 (less testing cannot "
                f"reduce error rates), got {self.less_tested_multiplier}"
            )

    def region_rate(self, size_share: float, less_tested: bool) -> float:
        """Errors per month arriving in a region with ``size_share``."""
        check_fraction("size_share", size_share)
        rate = self.errors_per_server_month * size_share
        if less_tested:
            rate *= self.less_tested_multiplier
        return rate


@dataclass(frozen=True)
class AvailabilityParams:
    """Downtime accounting."""

    crash_recovery_minutes: float = 10.0
    queries_per_month: float = 30.0 * MINUTES_PER_MONTH  # 30 qpm load

    def __post_init__(self) -> None:
        check_positive("crash_recovery_minutes", self.crash_recovery_minutes)
        check_positive("queries_per_month", self.queries_per_month)


def availability_from_crashes(
    crashes_per_month: float, params: AvailabilityParams = AvailabilityParams()
) -> float:
    """Single-server availability given a crash rate."""
    if crashes_per_month < 0:
        raise ValueError(f"crashes_per_month must be >= 0, got {crashes_per_month}")
    downtime = crashes_per_month * params.crash_recovery_minutes
    return max(0.0, 1.0 - downtime / MINUTES_PER_MONTH)


def crashes_from_availability(
    availability: float, params: AvailabilityParams = AvailabilityParams()
) -> float:
    """Maximum crash rate compatible with an availability target."""
    check_fraction("availability", availability)
    return (1.0 - availability) * MINUTES_PER_MONTH / params.crash_recovery_minutes


@dataclass
class RegionOutcomeRates:
    """Per-month consequences of errors arriving in one region."""

    region: str
    errors_per_month: float
    consumed_errors_per_month: float
    crashes_per_month: float
    incorrect_responses_per_month: float
    recoveries_per_month: float


def region_outcome_rates(
    profile: VulnerabilityProfile,
    region: str,
    policy: RegionPolicy,
    size_share: float,
    error_model: ErrorRateModel,
    error_label: str = "single-bit soft",
) -> RegionOutcomeRates:
    """Apply a policy to a region's measured vulnerability.

    Policy semantics (this analysis treats all errors as single-bit, as
    the paper's Table 6 does):

    * a correcting technique absorbs every error;
    * a detecting technique with the RECOVER response absorbs the
      recoverable fraction; the remainder is consumed;
    * a detecting technique with RESTART turns every *consumed-and-
      harmful* error into a controlled crash (no incorrect responses);
    * otherwise errors are consumed with the measured consequences.
    """
    errors = error_model.region_rate(size_share, policy.less_tested)
    stats = profile.cells.get((region, error_label))
    crash_probability = profile.region_crash_probability(region, error_label)
    incorrect_per_error = 0.0
    if stats is not None and stats.trials:
        incorrect_per_error = (
            stats.incorrect_responses + stats.failed_requests
        ) / stats.trials

    if policy.technique.corrects_single_bit:
        return RegionOutcomeRates(region, errors, 0.0, 0.0, 0.0, 0.0)

    consumed = errors
    recoveries = 0.0
    if (
        policy.technique.detects_single_bit
        and policy.response is SoftwareResponse.RECOVER
    ):
        recoveries = errors * policy.recoverable_fraction
        consumed = errors - recoveries

    if (
        policy.technique.detects_single_bit
        and policy.response is SoftwareResponse.RESTART
    ):
        # Controlled restarts replace incorrectness with downtime: any
        # consumed error that would have harmed the app restarts it.
        crashes = consumed * crash_probability
        return RegionOutcomeRates(region, errors, consumed, crashes, 0.0, recoveries)

    crashes = consumed * crash_probability
    incorrect = consumed * incorrect_per_error
    return RegionOutcomeRates(region, errors, consumed, crashes, incorrect, recoveries)


def design_outcome_rates(
    profile: VulnerabilityProfile,
    policies: Mapping[str, RegionPolicy],
    error_model: ErrorRateModel = ErrorRateModel(),
    error_label: str = "single-bit soft",
    region_sizes: Optional[Mapping[str, int]] = None,
) -> dict:
    """Aggregate per-region outcome rates for a whole design."""
    sizes = dict(region_sizes) if region_sizes is not None else profile.region_sizes
    total = sum(sizes.get(region, 0) for region in policies)
    if total <= 0:
        raise ValueError("design covers no sized regions")
    rates = {}
    for region, policy in policies.items():
        share = sizes.get(region, 0) / total
        rates[region] = region_outcome_rates(
            profile, region, policy, share, error_model, error_label
        )
    return rates
