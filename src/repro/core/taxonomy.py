"""Memory-error outcome taxonomy (paper §III-A, Figure 1).

A memory error is either **masked by an overwrite** (1) or **consumed**
by the application; a consumed error is **masked by logic** (2.1),
causes an **incorrect response** (2.2), or **crashes** the application
or system (2.3). The taxonomy is mutually exclusive and exhaustive.

One refinement over the paper's figure: errors that were *never
accessed* during the observation window are tracked separately from
errors masked by an overwrite. Both are outcome (1)-equivalent (the
error was never consumed), but distinguishing them lets the safe-ratio
analysis cross-validate the masking mechanism.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # avoid a core <-> apps import cycle at runtime
    from repro.apps.clients import ClientReport


class ErrorOutcome(enum.Enum):
    """Fate of one injected memory error."""

    MASKED_OVERWRITE = "masked_overwrite"  # overwritten before any read
    MASKED_NEVER_ACCESSED = "masked_never_accessed"  # never referenced
    MASKED_LOGIC = "masked_logic"  # consumed, yet output correct
    INCORRECT = "incorrect"  # consumed, wrong/failed responses
    CRASH = "crash"  # application/system crash

    @property
    def is_masked(self) -> bool:
        """Outcome (1) or (2.1): the application tolerated the error."""
        return self in (
            ErrorOutcome.MASKED_OVERWRITE,
            ErrorOutcome.MASKED_NEVER_ACCESSED,
            ErrorOutcome.MASKED_LOGIC,
        )

    @property
    def is_vulnerable(self) -> bool:
        """Outcome (2.2) or (2.3): the error harmed the application."""
        return not self.is_masked

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_outcome(
    report: ClientReport,
    consumed: bool,
    overwritten: bool,
    failure_fraction: float = 0.5,
) -> ErrorOutcome:
    """Map a client session + fault-consumption facts to an outcome.

    Args:
        report: The client's view of the session after injection.
        consumed: Whether any faulty byte was read before being
            overwritten (from
            :meth:`~repro.memory.AddressSpace.fault_consumption`).
        overwritten: Whether the faulty byte(s) were overwritten.
        failure_fraction: Crash threshold for the ≥50 % rule.
    """
    if report.crashed(failure_fraction):
        return ErrorOutcome.CRASH
    if report.incorrect or report.failed:
        # Failed requests short of the crash threshold are visible to the
        # client as wrong behaviour: outcome 2.2.
        return ErrorOutcome.INCORRECT
    if consumed:
        return ErrorOutcome.MASKED_LOGIC
    if overwritten:
        return ErrorOutcome.MASKED_OVERWRITE
    return ErrorOutcome.MASKED_NEVER_ACCESSED


def validate_taxonomy(outcomes: Iterable[ErrorOutcome]) -> dict:
    """Count outcomes and assert the taxonomy partitions them.

    Returns a {outcome: count} dict covering every member (0 default) —
    convenient for reporting and for the exhaustiveness property test.
    """
    counts = {outcome: 0 for outcome in ErrorOutcome}
    for outcome in outcomes:
        if outcome not in counts:
            raise ValueError(f"unknown outcome {outcome!r}")
        counts[outcome] += 1
    return counts
