"""Lighter-weight (injection-free) vulnerability estimation.

The paper's §VII calls for "lighter-weight characterization
methodologies to make characterizing application memory error tolerance
cheaper". This module implements one: instead of thousands of
inject-restart-replay trials, it *monitors* a single fault-free session
and predicts, per region, the two access-pattern-determined outcomes of
the Figure 1 taxonomy:

* an error is **masked by overwrite** iff the first access to its
  address after the error arrives is a store;
* an error is **never accessed** iff its address is not referenced
  during the exposure window.

Both are functions of the access stream alone, so a watchpoint sample
over one session predicts them without any injection. What monitoring
*cannot* see is application-logic masking versus harm among consumed
errors — so the estimator brackets vulnerability: the consumed fraction
is an upper bound on the visible-failure probability.

Cost comparison: a full campaign cell is `trials × queries` query
executions; the estimator is one session of `queries` executions
regardless of the statistical resolution wanted on masking — roughly a
`trials×` speedup (measured by ``bench_ext_lightweight``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.base import Workload
from repro.core.vulnerability import VulnerabilityProfile
from repro.memory.tracing import AccessEvent
from repro.monitoring.monitor import AccessMonitor


@dataclass(frozen=True)
class MaskingEstimate:
    """Predicted outcome fractions for one region."""

    region: str
    sampled_addresses: int
    never_accessed_fraction: float
    masked_overwrite_fraction: float
    consumed_fraction: float

    @property
    def predicted_masked_fraction(self) -> float:
        """Access-pattern-determined masking (excludes logic masking)."""
        return self.never_accessed_fraction + self.masked_overwrite_fraction

    @property
    def vulnerability_upper_bound(self) -> float:
        """Upper bound on P(visible failure | error): consumed errors."""
        return self.consumed_fraction


def _classify_first_access(events: List[AccessEvent]) -> str:
    """'never' | 'overwrite' | 'consumed' from an address's event stream."""
    if not events:
        return "never"
    return "overwrite" if events[0].is_store else "consumed"


def estimate_masking(
    workload: Workload,
    queries: int = 150,
    samples_per_region: int = 96,
    rng: Optional[random.Random] = None,
    regions: Optional[Sequence[str]] = None,
) -> Dict[str, MaskingEstimate]:
    """Predict per-region masking from one monitored session.

    Resets the workload, watches sampled live addresses while replaying
    the first ``queries`` trace entries (the same exposure window the
    campaign uses), and classifies each address by its first access.

    Raises:
        ValueError: for non-positive budgets.
    """
    if queries <= 0:
        raise ValueError(f"queries must be positive, got {queries}")
    if samples_per_region <= 0:
        raise ValueError(
            f"samples_per_region must be positive, got {samples_per_region}"
        )
    if rng is None:
        rng = random.Random(0)
    workload.reset()
    space = workload.space
    region_names = list(regions) if regions else [r.name for r in space.regions]

    addresses: List[int] = []
    region_of: Dict[int, str] = {}
    for name in region_names:
        region = space.region_named(name)
        spans = [
            (base, end)
            for base, end in workload.sample_ranges(region)
            if end > base
        ]
        if not spans:
            continue
        weights = [end - base for base, end in spans]
        for _ in range(samples_per_region):
            base, end = rng.choices(spans, weights=weights, k=1)[0]
            addr = base + rng.randrange(end - base)
            if addr not in region_of:
                addresses.append(addr)
                region_of[addr] = name

    monitor = AccessMonitor(space, rng)
    budget = min(queries, workload.query_count)

    def driver() -> None:
        for index in range(budget):
            workload.execute(index)

    result = monitor.monitor(driver, addresses=addresses)

    estimates: Dict[str, MaskingEstimate] = {}
    for name in region_names:
        region_addresses = [a for a in addresses if region_of[a] == name]
        if not region_addresses:
            continue
        counts = {"never": 0, "overwrite": 0, "consumed": 0}
        for addr in region_addresses:
            counts[_classify_first_access(result.traces.get(addr, []))] += 1
        total = len(region_addresses)
        estimates[name] = MaskingEstimate(
            region=name,
            sampled_addresses=total,
            never_accessed_fraction=counts["never"] / total,
            masked_overwrite_fraction=counts["overwrite"] / total,
            consumed_fraction=counts["consumed"] / total,
        )
    return estimates


@dataclass(frozen=True)
class ValidationRow:
    """Lightweight prediction vs campaign ground truth for one cell."""

    region: str
    predicted_never: float
    measured_never: float
    predicted_overwrite: float
    measured_overwrite: float
    consumed_upper_bound: float
    measured_visible: float

    @property
    def never_error(self) -> float:
        """Absolute error of the never-accessed prediction."""
        return abs(self.predicted_never - self.measured_never)

    @property
    def overwrite_error(self) -> float:
        """Absolute error of the masked-by-overwrite prediction."""
        return abs(self.predicted_overwrite - self.measured_overwrite)

    @property
    def bound_holds(self) -> bool:
        """Whether the vulnerability upper bound brackets ground truth.

        Sampling noise on both sides is absorbed with a small margin.
        """
        return self.measured_visible <= self.consumed_upper_bound + 0.05


def validate_against_profile(
    estimates: Dict[str, MaskingEstimate],
    profile: VulnerabilityProfile,
    error_label: str = "single-bit soft",
) -> List[ValidationRow]:
    """Compare estimates with a campaign profile, cell by cell.

    The comparison is only meaningful for *soft* errors (a hard error
    survives overwrites, so its fate is not determined by the first
    access alone).
    """
    rows: List[ValidationRow] = []
    for region, estimate in estimates.items():
        cell = profile.cells.get((region, error_label))
        if cell is None or cell.trials == 0:
            continue
        never = cell.outcome_counts.get("masked_never_accessed", 0) / cell.trials
        overwrite = cell.outcome_counts.get("masked_overwrite", 0) / cell.trials
        visible = (cell.crashes + cell.incorrect_trials) / cell.trials
        rows.append(
            ValidationRow(
                region=region,
                predicted_never=estimate.never_accessed_fraction,
                measured_never=never,
                predicted_overwrite=estimate.masked_overwrite_fraction,
                measured_overwrite=overwrite,
                consumed_upper_bound=estimate.consumed_fraction,
                measured_visible=visible,
            )
        )
    return rows
