"""The paper's core contribution: characterization methodology + HRM.

Submodules:

* :mod:`taxonomy` — Figure 1 outcome classification;
* :mod:`safe_ratio` — §III-B safe/unsafe duration analysis;
* :mod:`recoverability` — §III-C implicit/explicit recovery (Table 5);
* :mod:`campaign` — Figure 2 injection-campaign orchestration;
* :mod:`vulnerability` — per-(region, error-type) statistics;
* :mod:`design_space` — Table 4 dimensions;
* :mod:`cost_model` — Table 1/6 cost accounting;
* :mod:`availability` — error-rate → crash → availability chain;
* :mod:`mapping` — Table 6 design points and their evaluation;
* :mod:`optimizer` — design search + Figure 8 tolerable-error analysis;
* :mod:`paper_reference` — the paper's reported values (display only).
"""

from repro.core.availability import (
    MINUTES_PER_MONTH,
    AvailabilityParams,
    ErrorRateModel,
    availability_from_crashes,
    crashes_from_availability,
    design_outcome_rates,
    region_outcome_rates,
)
from repro.core.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
    TrialRecord,
    load_or_run_profile,
)
from repro.core.cost_model import CostModel, CostModelParams
from repro.core.failure_modes import (
    characterize_failure_modes,
    mode_summary,
)
from repro.core.lightweight import (
    MaskingEstimate,
    estimate_masking,
    validate_against_profile,
)
from repro.core.design_space import (
    Granularity,
    HardwareTechnique,
    RegionPolicy,
    SoftwareResponse,
)
from repro.core.mapping import (
    DesignEvaluator,
    DesignMetrics,
    HRMDesign,
    consumer_pc,
    detect_and_recover,
    detect_and_recover_less_tested,
    less_tested,
    paper_design_points,
    typical_server,
)
from repro.core.optimizer import (
    MappingOptimizer,
    OptimizationResult,
    tolerable_errors_per_month,
)
from repro.core.recoverability import (
    RegionRecoverability,
    analyze_recoverability,
    overall_recoverability,
)
from repro.core.safe_ratio import (
    SafeRatioSample,
    durations_from_events,
    ratio_histogram,
    region_safe_ratio,
    safe_ratio_samples,
)
from repro.core.taxonomy import ErrorOutcome, classify_outcome, validate_taxonomy
from repro.core.vulnerability import CellStats, VulnerabilityProfile

__all__ = [
    "MINUTES_PER_MONTH",
    "AvailabilityParams",
    "ErrorRateModel",
    "availability_from_crashes",
    "crashes_from_availability",
    "design_outcome_rates",
    "region_outcome_rates",
    "CampaignConfig",
    "CharacterizationCampaign",
    "TrialRecord",
    "load_or_run_profile",
    "CostModel",
    "CostModelParams",
    "characterize_failure_modes",
    "mode_summary",
    "MaskingEstimate",
    "estimate_masking",
    "validate_against_profile",
    "Granularity",
    "HardwareTechnique",
    "RegionPolicy",
    "SoftwareResponse",
    "DesignEvaluator",
    "DesignMetrics",
    "HRMDesign",
    "consumer_pc",
    "detect_and_recover",
    "detect_and_recover_less_tested",
    "less_tested",
    "paper_design_points",
    "typical_server",
    "MappingOptimizer",
    "OptimizationResult",
    "tolerable_errors_per_month",
    "RegionRecoverability",
    "analyze_recoverability",
    "overall_recoverability",
    "SafeRatioSample",
    "durations_from_events",
    "ratio_histogram",
    "region_safe_ratio",
    "safe_ratio_samples",
    "ErrorOutcome",
    "classify_outcome",
    "validate_taxonomy",
    "CellStats",
    "VulnerabilityProfile",
]
