"""Design-space search and tolerable-error-rate analysis.

Two capabilities on top of the evaluator:

* :func:`tolerable_errors_per_month` — Figure 8's quantity: the maximum
  monthly error rate an *unprotected* application can absorb while still
  meeting a single-server-availability target;
* :class:`MappingOptimizer` — enumerates per-region policy assignments
  and returns the cheapest design meeting an availability target (and
  optionally an incorrectness budget), realizing the paper's "choose the
  design that best suits our needs" step (Figure 7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.availability import AvailabilityParams, crashes_from_availability
from repro.core.design_space import (
    HardwareTechnique,
    RegionPolicy,
    SoftwareResponse,
)
from repro.core.mapping import DesignEvaluator, DesignMetrics, HRMDesign
from repro.core.vulnerability import VulnerabilityProfile
from repro.utils.validation import check_fraction

#: Search execution strategies accepted by :class:`MappingOptimizer`.
#: ``auto`` resolves to ``vectorized`` when NumPy is importable and
#: ``scalar`` otherwise — safe because the two backends are
#: bit-identical (the batch engine replicates the scalar evaluator's
#: floating-point operation order; see :mod:`repro.explore`).
SEARCH_BACKENDS = ("auto", "scalar", "vectorized")


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


#: Policy candidates enumerated per region by the optimizer: the
#: techniques of Table 6 plus their less-tested variants.
DEFAULT_CANDIDATES: Tuple[RegionPolicy, ...] = (
    RegionPolicy(technique=HardwareTechnique.NONE),
    RegionPolicy(technique=HardwareTechnique.NONE, less_tested=True),
    RegionPolicy(
        technique=HardwareTechnique.PARITY, response=SoftwareResponse.RECOVER
    ),
    RegionPolicy(
        technique=HardwareTechnique.PARITY,
        response=SoftwareResponse.RECOVER,
        less_tested=True,
    ),
    RegionPolicy(technique=HardwareTechnique.SEC_DED),
    RegionPolicy(technique=HardwareTechnique.SEC_DED, less_tested=True),
    RegionPolicy(technique=HardwareTechnique.CHIPKILL),
    RegionPolicy(technique=HardwareTechnique.DEC_TED),
)


def tolerable_errors_per_month(
    profile: VulnerabilityProfile,
    availability_target: float,
    error_label: str = "single-bit soft",
    params: AvailabilityParams = AvailabilityParams(),
) -> float:
    """Figure 8: max unprotected error rate meeting an availability target.

    With no detection/correction, ``crashes = E · P(crash | error)``;
    the target bounds crashes, so ``E_max = crash_budget / P(crash)``.
    Applications whose measured crash probability is zero report
    ``float('inf')`` (no observed bound).
    """
    check_fraction("availability_target", availability_target)
    crash_budget = crashes_from_availability(availability_target, params)
    crash_probability = profile.crash_probability_per_error(error_label)
    if crash_probability <= 0.0:
        return float("inf")
    return crash_budget / crash_probability


@dataclass
class OptimizationResult:
    """Outcome of a design-space search."""

    best: Optional[DesignMetrics]
    feasible: List[DesignMetrics]
    evaluated: int

    @property
    def found(self) -> bool:
        """Whether any design met the constraints."""
        return self.best is not None


class MappingOptimizer:
    """Exact per-region policy search (candidates^regions designs).

    The search is exhaustive and exact — the same exploration the paper
    describes doing by hand in §VI-B, generalized. Two execution
    backends produce byte-identical results: ``scalar`` evaluates one
    design at a time through :class:`DesignEvaluator`, while
    ``vectorized`` precomputes a per-(region, candidate) contribution
    matrix and evaluates whole id ranges with NumPy (see
    :mod:`repro.explore`), which is what keeps rich candidate sets and
    6+ regions interactive. For top-k-only searches over huge spaces,
    use :func:`repro.explore.explore` (branch-and-bound backend).
    """

    def __init__(
        self,
        evaluator: DesignEvaluator,
        candidates: Sequence[RegionPolicy] = DEFAULT_CANDIDATES,
        recoverable_fractions: Optional[Dict[str, float]] = None,
        backend: str = "auto",
    ) -> None:
        if not candidates:
            raise ValueError("candidate policy list must be non-empty")
        if backend not in SEARCH_BACKENDS:
            raise ValueError(
                f"unknown backend '{backend}'; expected one of {SEARCH_BACKENDS}"
            )
        self.evaluator = evaluator
        self.candidates = tuple(candidates)
        self.recoverable_fractions = dict(recoverable_fractions or {})
        self.backend = backend

    def resolved_backend(self) -> str:
        """The backend that will actually run (``auto`` resolved)."""
        if self.backend == "auto":
            return "vectorized" if _numpy_available() else "scalar"
        if self.backend == "vectorized" and not _numpy_available():
            raise RuntimeError("backend='vectorized' requires numpy")
        return self.backend

    def contribution_matrix(self, regions: Optional[Sequence[str]] = None):
        """Per-(region, candidate) contribution matrix for this search.

        Candidates are specialized per region (recoverable fractions
        bound into RECOVER policies) exactly as the scalar loop does.
        """
        from repro.explore.matrix import ContributionMatrix

        if regions is None:
            regions = sorted(self.evaluator.region_sizes)
        specialized = [
            tuple(self._specialize(region, policy) for policy in self.candidates)
            for region in regions
        ]
        return ContributionMatrix.build(self.evaluator, list(regions), specialized)

    def _specialize(self, region: str, policy: RegionPolicy) -> RegionPolicy:
        """Bind region-specific recoverability into a RECOVER policy."""
        if policy.response is not SoftwareResponse.RECOVER:
            return policy
        fraction = self.recoverable_fractions.get(region)
        if fraction is None:
            return policy
        return RegionPolicy(
            technique=policy.technique,
            response=policy.response,
            less_tested=policy.less_tested,
            recoverable_fraction=fraction,
        )

    def search(
        self,
        availability_target: float,
        max_incorrect_per_million: Optional[float] = None,
        regions: Optional[Sequence[str]] = None,
    ) -> OptimizationResult:
        """Find the design with maximum server-cost savings that meets
        the availability target (and incorrectness budget, if given)."""
        check_fraction("availability_target", availability_target)
        if regions is None:
            regions = sorted(self.evaluator.region_sizes)
        if self.resolved_backend() == "vectorized":
            feasible, evaluated = self._search_vectorized(
                availability_target, max_incorrect_per_million, regions
            )
        else:
            feasible, evaluated = self._search_scalar(
                availability_target, max_incorrect_per_million, regions
            )
        feasible.sort(
            key=lambda metrics: (
                -metrics.server_cost_savings,
                -metrics.availability,
                metrics.design.name,
            )
        )
        return OptimizationResult(
            best=feasible[0] if feasible else None,
            feasible=feasible,
            evaluated=evaluated,
        )

    def _search_scalar(
        self,
        availability_target: float,
        max_incorrect_per_million: Optional[float],
        regions: Sequence[str],
    ) -> Tuple[List[DesignMetrics], int]:
        feasible: List[DesignMetrics] = []
        evaluated = 0
        for assignment in itertools.product(self.candidates, repeat=len(regions)):
            policies = {
                region: self._specialize(region, policy)
                for region, policy in zip(regions, assignment)
            }
            design = HRMDesign(
                name="+".join(p.describe() for p in policies.values()),
                policies=policies,
            )
            metrics = self.evaluator.evaluate(design)
            evaluated += 1
            if metrics.availability < availability_target:
                continue
            if (
                max_incorrect_per_million is not None
                and metrics.incorrect_per_million_queries > max_incorrect_per_million
            ):
                continue
            feasible.append(metrics)
        return feasible, evaluated

    def _search_vectorized(
        self,
        availability_target: float,
        max_incorrect_per_million: Optional[float],
        regions: Sequence[str],
    ) -> Tuple[List[DesignMetrics], int]:
        from repro.explore.batch import BatchDesignSpaceEvaluator

        matrix = self.contribution_matrix(regions)
        batch = BatchDesignSpaceEvaluator(matrix)
        ids, evaluated = batch.feasible_ids(
            availability_target, max_incorrect_per_million
        )
        feasible = [matrix.metrics_at(digits) for digits in batch.digits(ids)]
        return feasible, evaluated

    def pareto_front(
        self, regions: Optional[Sequence[str]] = None
    ) -> List[DesignMetrics]:
        """Designs not dominated in (cost savings, availability).

        Useful for plotting the cost/reliability trade-off curve. Both
        backends use the O(n log n) sort-based sweep of
        :mod:`repro.explore.pareto` (golden-tested against the old
        quadratic dominance scan, including output order).
        """
        if regions is None:
            regions = sorted(self.evaluator.region_sizes)
        if self.resolved_backend() == "vectorized":
            from repro.explore.batch import BatchDesignSpaceEvaluator

            matrix = self.contribution_matrix(regions)
            batch = BatchDesignSpaceEvaluator(matrix)
            ids, _ = batch.pareto_ids()
            return [matrix.metrics_at(digits) for digits in batch.digits(ids)]
        from repro.explore.pareto import pareto_indices

        all_metrics: List[DesignMetrics] = []
        for assignment in itertools.product(self.candidates, repeat=len(regions)):
            policies = {
                region: self._specialize(region, policy)
                for region, policy in zip(regions, assignment)
            }
            design = HRMDesign(
                name="+".join(p.describe() for p in policies.values()),
                policies=policies,
            )
            all_metrics.append(self.evaluator.evaluate(design))
        points = [
            (metrics.server_cost_savings, metrics.availability)
            for metrics in all_metrics
        ]
        return [all_metrics[i] for i in pareto_indices(points)]
