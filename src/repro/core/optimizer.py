"""Design-space search and tolerable-error-rate analysis.

Two capabilities on top of the evaluator:

* :func:`tolerable_errors_per_month` — Figure 8's quantity: the maximum
  monthly error rate an *unprotected* application can absorb while still
  meeting a single-server-availability target;
* :class:`MappingOptimizer` — enumerates per-region policy assignments
  and returns the cheapest design meeting an availability target (and
  optionally an incorrectness budget), realizing the paper's "choose the
  design that best suits our needs" step (Figure 7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.availability import AvailabilityParams, crashes_from_availability
from repro.core.design_space import (
    HardwareTechnique,
    RegionPolicy,
    SoftwareResponse,
)
from repro.core.mapping import DesignEvaluator, DesignMetrics, HRMDesign
from repro.core.vulnerability import VulnerabilityProfile
from repro.utils.validation import check_fraction

#: Policy candidates enumerated per region by the optimizer: the
#: techniques of Table 6 plus their less-tested variants.
DEFAULT_CANDIDATES: Tuple[RegionPolicy, ...] = (
    RegionPolicy(technique=HardwareTechnique.NONE),
    RegionPolicy(technique=HardwareTechnique.NONE, less_tested=True),
    RegionPolicy(
        technique=HardwareTechnique.PARITY, response=SoftwareResponse.RECOVER
    ),
    RegionPolicy(
        technique=HardwareTechnique.PARITY,
        response=SoftwareResponse.RECOVER,
        less_tested=True,
    ),
    RegionPolicy(technique=HardwareTechnique.SEC_DED),
    RegionPolicy(technique=HardwareTechnique.SEC_DED, less_tested=True),
    RegionPolicy(technique=HardwareTechnique.CHIPKILL),
    RegionPolicy(technique=HardwareTechnique.DEC_TED),
)


def tolerable_errors_per_month(
    profile: VulnerabilityProfile,
    availability_target: float,
    error_label: str = "single-bit soft",
    params: AvailabilityParams = AvailabilityParams(),
) -> float:
    """Figure 8: max unprotected error rate meeting an availability target.

    With no detection/correction, ``crashes = E · P(crash | error)``;
    the target bounds crashes, so ``E_max = crash_budget / P(crash)``.
    Applications whose measured crash probability is zero report
    ``float('inf')`` (no observed bound).
    """
    check_fraction("availability_target", availability_target)
    crash_budget = crashes_from_availability(availability_target, params)
    crash_probability = profile.crash_probability_per_error(error_label)
    if crash_probability <= 0.0:
        return float("inf")
    return crash_budget / crash_probability


@dataclass
class OptimizationResult:
    """Outcome of a design-space search."""

    best: Optional[DesignMetrics]
    feasible: List[DesignMetrics]
    evaluated: int

    @property
    def found(self) -> bool:
        """Whether any design met the constraints."""
        return self.best is not None


class MappingOptimizer:
    """Exhaustive per-region policy search (regions² · candidates ways).

    Region counts are tiny (≤4) and the candidate list short, so
    exhaustive enumeration is exact and fast — the same exploration the
    paper describes doing by hand in §VI-B.
    """

    def __init__(
        self,
        evaluator: DesignEvaluator,
        candidates: Sequence[RegionPolicy] = DEFAULT_CANDIDATES,
        recoverable_fractions: Optional[Dict[str, float]] = None,
    ) -> None:
        if not candidates:
            raise ValueError("candidate policy list must be non-empty")
        self.evaluator = evaluator
        self.candidates = tuple(candidates)
        self.recoverable_fractions = dict(recoverable_fractions or {})

    def _specialize(self, region: str, policy: RegionPolicy) -> RegionPolicy:
        """Bind region-specific recoverability into a RECOVER policy."""
        if policy.response is not SoftwareResponse.RECOVER:
            return policy
        fraction = self.recoverable_fractions.get(region)
        if fraction is None:
            return policy
        return RegionPolicy(
            technique=policy.technique,
            response=policy.response,
            less_tested=policy.less_tested,
            recoverable_fraction=fraction,
        )

    def search(
        self,
        availability_target: float,
        max_incorrect_per_million: Optional[float] = None,
        regions: Optional[Sequence[str]] = None,
    ) -> OptimizationResult:
        """Find the design with maximum server-cost savings that meets
        the availability target (and incorrectness budget, if given)."""
        check_fraction("availability_target", availability_target)
        if regions is None:
            regions = sorted(self.evaluator.region_sizes)
        feasible: List[DesignMetrics] = []
        evaluated = 0
        for assignment in itertools.product(self.candidates, repeat=len(regions)):
            policies = {
                region: self._specialize(region, policy)
                for region, policy in zip(regions, assignment)
            }
            design = HRMDesign(
                name="+".join(p.describe() for p in policies.values()),
                policies=policies,
            )
            metrics = self.evaluator.evaluate(design)
            evaluated += 1
            if metrics.availability < availability_target:
                continue
            if (
                max_incorrect_per_million is not None
                and metrics.incorrect_per_million_queries > max_incorrect_per_million
            ):
                continue
            feasible.append(metrics)
        feasible.sort(key=lambda metrics: -metrics.server_cost_savings)
        return OptimizationResult(
            best=feasible[0] if feasible else None,
            feasible=feasible,
            evaluated=evaluated,
        )

    def pareto_front(
        self, regions: Optional[Sequence[str]] = None
    ) -> List[DesignMetrics]:
        """Designs not dominated in (cost savings, availability).

        Useful for plotting the cost/reliability trade-off curve.
        """
        if regions is None:
            regions = sorted(self.evaluator.region_sizes)
        all_metrics: List[DesignMetrics] = []
        for assignment in itertools.product(self.candidates, repeat=len(regions)):
            policies = {
                region: self._specialize(region, policy)
                for region, policy in zip(regions, assignment)
            }
            design = HRMDesign(
                name="+".join(p.describe() for p in policies.values()),
                policies=policies,
            )
            all_metrics.append(self.evaluator.evaluate(design))
        front: List[DesignMetrics] = []
        for metrics in all_metrics:
            dominated = any(
                other.server_cost_savings >= metrics.server_cost_savings
                and other.availability >= metrics.availability
                and (
                    other.server_cost_savings > metrics.server_cost_savings
                    or other.availability > metrics.availability
                )
                for other in all_metrics
            )
            if not dominated:
                front.append(metrics)
        front.sort(key=lambda metrics: -metrics.server_cost_savings)
        return front
