"""Memory and server cost model (paper Table 1 + Table 6 left column).

Cost accounting follows the paper:

* DRAM contributes a configurable fraction of server hardware cost
  (30 % — Kozyrakis et al., paper reference [6]);
* an ECC technique's memory cost premium equals its *added capacity*
  (for DRAM, "whose design is fiercely cost-driven", capacity ∝ cost) —
  taken from the actual codec implementations, not transcribed numbers;
* less-tested DRAM carries a cost discount of 18 % ± 12 % (derived from
  the testing-cost trends of references [8, 9]).

The baseline for savings is the Typical Server: everything SEC-DED
protected on fully-tested DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core.design_space import HardwareTechnique, RegionPolicy
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class CostModelParams:
    """Table 6 (left) design parameters."""

    dram_fraction_of_server_cost: float = 0.30
    less_tested_discount: float = 0.18
    less_tested_discount_low: float = 0.06
    less_tested_discount_high: float = 0.30

    def __post_init__(self) -> None:
        check_fraction("dram_fraction_of_server_cost", self.dram_fraction_of_server_cost)
        for name in (
            "less_tested_discount",
            "less_tested_discount_low",
            "less_tested_discount_high",
        ):
            check_fraction(name, getattr(self, name))
        if not (
            self.less_tested_discount_low
            <= self.less_tested_discount
            <= self.less_tested_discount_high
        ):
            raise ValueError("less-tested discount bounds must bracket the nominal")


class CostModel:
    """Computes memory/server cost savings for HRM designs."""

    def __init__(
        self,
        params: CostModelParams = CostModelParams(),
        baseline_technique: HardwareTechnique = HardwareTechnique.SEC_DED,
    ) -> None:
        self.params = params
        self.baseline_technique = baseline_technique
        # Capacity overheads derived from the codec bit layouts.
        self._overheads: Dict[HardwareTechnique, float] = {
            technique: technique.codec().added_capacity
            for technique in HardwareTechnique
        }

    def capacity_overhead(self, technique: HardwareTechnique) -> float:
        """Fractional extra capacity of ``technique`` (from its codec)."""
        return self._overheads[technique]

    def memory_cost_factor(
        self, policy: RegionPolicy, discount: float = None
    ) -> float:
        """Per-byte cost of a policy relative to raw, fully-tested DRAM."""
        factor = 1.0 + self.capacity_overhead(policy.technique)
        if policy.less_tested:
            if discount is None:
                discount = self.params.less_tested_discount
            factor *= 1.0 - discount
        return factor

    @property
    def baseline_cost_factor(self) -> float:
        """Per-byte cost of the Typical Server baseline."""
        return 1.0 + self.capacity_overhead(self.baseline_technique)

    def memory_cost_savings(
        self,
        policies: Mapping[str, RegionPolicy],
        region_sizes: Mapping[str, int],
        discount: float = None,
    ) -> float:
        """Fractional memory-cost savings of a design versus the baseline.

        Args:
            policies: Region name -> policy.
            region_sizes: Region name -> bytes (weights).
            discount: Less-tested discount override (for the ± range).

        Raises:
            ValueError: when a sized region lacks a policy.
        """
        total_size = 0
        design_cost = 0.0
        for region, size in region_sizes.items():
            if size <= 0:
                continue
            if region not in policies:
                raise ValueError(f"no policy for region '{region}'")
            check_positive(f"size of region {region}", size)
            total_size += size
            design_cost += size * self.memory_cost_factor(
                policies[region], discount=discount
            )
        if total_size == 0:
            return 0.0
        baseline_cost = total_size * self.baseline_cost_factor
        return 1.0 - design_cost / baseline_cost

    def server_cost_savings(self, memory_savings: float) -> float:
        """Server hardware savings implied by memory savings."""
        return memory_savings * self.params.dram_fraction_of_server_cost

    def savings_range(
        self,
        policies: Mapping[str, RegionPolicy],
        region_sizes: Mapping[str, int],
    ):
        """(low, nominal, high) memory savings over the less-tested
        discount range — Table 6 reports designs with less-tested DRAM as
        a range (e.g. "27.1 (16.4-37.8)")."""
        return (
            self.memory_cost_savings(
                policies, region_sizes, discount=self.params.less_tested_discount_low
            ),
            self.memory_cost_savings(policies, region_sizes),
            self.memory_cost_savings(
                policies, region_sizes, discount=self.params.less_tested_discount_high
            ),
        )
