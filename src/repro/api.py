"""repro.api — the stable, one-import public surface of the framework.

Everything an application needs to characterize a workload, explore the
HRM design space, and look up codecs/kernels lives here::

    from repro import api

    profile = api.run_campaign(api.WebSearch(), config=api.CampaignConfig(
        trials_per_cell=30), backend="vectorized", workers=4)
    result = api.explore_design_space(profile, availability_target=0.999)
    codec = api.make_codec("Chipkill")

Compatibility policy: names exported from this module are the stable
API — they keep working across internal refactors (module moves, kernel
rewrites, cache-format bumps). Deeper imports (``repro.core.campaign``
etc.) continue to work but may shift between releases; see the
migration table in README.md.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.apps.base import Workload
from repro.apps.graphmining import GraphMining
from repro.apps.kvstore import KVStoreWorkload
from repro.apps.websearch import WebSearch
from repro.core.availability import AvailabilityParams, ErrorRateModel
from repro.core.campaign import (
    BACKENDS,
    DEFAULT_SPECS,
    CampaignConfig,
    CharacterizationCampaign,
    TrialRecord,
    campaign_fingerprint,
    load_or_run_profile,
)
from repro.core.cost_model import CostModel
from repro.core.mapping import DesignEvaluator, DesignMetrics, HRMDesign
from repro.core.optimizer import (
    DEFAULT_CANDIDATES,
    SEARCH_BACKENDS,
    MappingOptimizer,
    OptimizationResult,
)
from repro.core.taxonomy import ErrorOutcome
from repro.core.vulnerability import VulnerabilityProfile
from repro.explore import (
    EXPLORE_BACKENDS,
    ExplorationResult,
    SimulationValidation,
)
from repro.explore.engine import explore as _explore
from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.ecc.registry import (
    UnknownTechniqueError,
    available_techniques,
    make_codec,
    register_codec,
)
from repro.injection.injector import (
    MULTI_BIT_HARD,
    MULTI_BIT_SOFT,
    SINGLE_BIT_HARD,
    SINGLE_BIT_SOFT,
    ErrorSpec,
)
from repro.kernels.registry import available_kernels, get_kernel
from repro.obs.live import BackgroundTelemetryServer, ObservabilityServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BurnWindow,
    SloConfig,
    SloEngine,
    audit_slo,
    parse_burn_windows,
    slo_from_ledger,
)
from repro.obs.trace import NULL_OBSERVER, Observer
from repro.serve import (
    POLICY_NAMES,
    ServeConfig,
    ServeResult,
    ServeTenant,
    default_tenants,
    load_ledger,
    replay_ledger,
    run_serve,
    serve_session,
)

__all__ = [
    # one-call entry points
    "run_campaign",
    "load_or_run_profile",
    "explore_design_space",
    # campaign machinery
    "BACKENDS",
    "DEFAULT_SPECS",
    "CampaignConfig",
    "CharacterizationCampaign",
    "TrialRecord",
    "campaign_fingerprint",
    "VulnerabilityProfile",
    "ErrorOutcome",
    # error specs
    "ErrorSpec",
    "SINGLE_BIT_SOFT",
    "SINGLE_BIT_HARD",
    "MULTI_BIT_SOFT",
    "MULTI_BIT_HARD",
    # codec + kernel registries
    "Codec",
    "DecodeResult",
    "DecodeStatus",
    "UnknownTechniqueError",
    "available_techniques",
    "make_codec",
    "register_codec",
    "available_kernels",
    "get_kernel",
    # design space
    "DEFAULT_CANDIDATES",
    "AvailabilityParams",
    "CostModel",
    "DesignEvaluator",
    "DesignMetrics",
    "ErrorRateModel",
    "HRMDesign",
    "MappingOptimizer",
    "OptimizationResult",
    "SEARCH_BACKENDS",
    "EXPLORE_BACKENDS",
    "ExplorationResult",
    "SimulationValidation",
    # serving layer
    "POLICY_NAMES",
    "ServeConfig",
    "ServeResult",
    "ServeTenant",
    "default_tenants",
    "load_ledger",
    "replay_ledger",
    "run_serve",
    "serve_session",
    # live telemetry plane
    "BackgroundTelemetryServer",
    "ObservabilityServer",
    "BurnWindow",
    "SloConfig",
    "SloEngine",
    "audit_slo",
    "parse_burn_windows",
    "slo_from_ledger",
    # workloads + telemetry
    "Workload",
    "WebSearch",
    "KVStoreWorkload",
    "GraphMining",
    "Observer",
    "NULL_OBSERVER",
    "MetricsRegistry",
]


def run_campaign(
    workload: Workload,
    *,
    config: Optional[CampaignConfig] = None,
    observer: Observer = NULL_OBSERVER,
    backend: str = "scalar",
    regions: Optional[Sequence[str]] = None,
    specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
    trials_per_cell: Optional[int] = None,
    workers: Optional[int] = None,
    workload_factory: Optional[Callable[[], Workload]] = None,
    progress: Optional[Callable] = None,
) -> VulnerabilityProfile:
    """Characterize ``workload`` in one call and return its profile.

    Wraps construct → :meth:`~CharacterizationCampaign.prepare` →
    :meth:`~CharacterizationCampaign.run`. The profile is bit-identical
    for any ``workers`` count and either ``backend``; use
    ``backend="vectorized"`` (batched injection planning, batched
    instrument updates) for large trial budgets.
    """
    campaign = CharacterizationCampaign(
        workload, config=config, observer=observer, backend=backend
    )
    campaign.prepare()
    return campaign.run(
        regions=regions,
        specs=specs,
        trials_per_cell=trials_per_cell,
        workers=workers,
        workload_factory=workload_factory,
        progress=progress,
    )


def explore_design_space(
    profile: VulnerabilityProfile,
    *,
    availability_target: float,
    error_label: str = "single-bit soft",
    recoverable_fractions: Optional[Dict[str, float]] = None,
    candidates: Sequence = DEFAULT_CANDIDATES,
    max_incorrect_per_million: Optional[float] = None,
    regions: Optional[Sequence[str]] = None,
    cost_model: Optional[CostModel] = None,
    error_model: Optional[ErrorRateModel] = None,
    availability_params: Optional[AvailabilityParams] = None,
    backend: str = "auto",
    top_k: Optional[int] = None,
    simulate_months: int = 0,
    simulation_seed: int = 0,
    observer: Observer = NULL_OBSERVER,
) -> ExplorationResult:
    """Search HRM designs against a measured profile (paper §VI-B).

    Evaluates per-region policy assignments from ``candidates`` and
    returns the cheapest design meeting the availability target (and
    incorrectness budget, when given). All backends return identical
    designs; they differ in cost: ``scalar`` is the one-design-at-a-time
    reference, ``vectorized`` evaluates the space in NumPy chunks,
    ``branch-and-bound`` finds exact top-k without visiting the whole
    space, and ``auto`` (default) picks ``vectorized`` when NumPy is
    importable. The result is an :class:`ExplorationResult` — a
    backward-compatible :class:`OptimizationResult` subclass.

    Args:
        profile: Measured vulnerability profile to evaluate against.
        availability_target: Minimum single-server availability.
        error_label: Which characterized error type drives the rates.
        recoverable_fractions: Per-region recoverable data fraction
            (bounds what Detect&Recover policies can absorb).
        candidates: Region policies to enumerate.
        max_incorrect_per_million: Optional incorrectness budget.
        regions: Regions to assign policies to (default: all profiled).
        cost_model / error_model / availability_params: Model overrides.
        backend: ``auto`` / ``scalar`` / ``vectorized`` /
            ``branch-and-bound``.
        top_k: When set, return only the k best feasible designs
            (memory-safe on huge spaces); when ``None``, exhaustive
            backends return the full feasible list.
        simulate_months: When > 0, Monte Carlo-validate the winner over
            this many server-months (``result.simulation``).
        simulation_seed: Seed for the validation simulation.
        observer: Receives ``explore`` spans and the
            designs-evaluated / pruned instruments when enabled.
    """
    return _explore(
        profile,
        availability_target=availability_target,
        error_label=error_label,
        recoverable_fractions=recoverable_fractions,
        candidates=candidates,
        max_incorrect_per_million=max_incorrect_per_million,
        regions=regions,
        cost_model=cost_model,
        error_model=error_model,
        availability_params=availability_params,
        backend=backend,
        top_k=top_k,
        simulate_months=simulate_months,
        simulation_seed=simulation_seed,
        observer=observer,
    )
