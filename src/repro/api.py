"""repro.api — the stable, versioned public surface of the framework.

Everything an application needs to characterize a workload, explore the
HRM design space, and scale the result to a datacenter fleet lives
here::

    from repro import api

    profile = api.run_campaign(api.WebSearch(), config=api.CampaignConfig(
        trials_per_cell=30), backend="vectorized", workers=4)
    result = api.explore_design_space(profile, availability_target=0.999)
    fleet = api.simulate_fleet(profile, config=api.FleetConfig(
        servers=2000, months=60))
    mix = api.optimize_fleet(profile, availability_target=0.9995)

The surface is organized into documented **tiers** (see ``API_TIERS``):

* ``entry points`` — one-call functions covering the full pipeline;
* ``configs`` — keyword-only configuration dataclasses;
* ``results`` — the value objects entry points return;
* ``registries`` — codec/kernel/backend lookup helpers;
* ``workloads`` — bundled applications and the telemetry hooks;
* ``advanced`` — the stable power-user machinery underneath.

Compatibility policy: names exported from this module are the stable
API — they keep working across internal refactors (module moves, kernel
rewrites, cache-format bumps). ``API_VERSION`` tracks surface-breaking
changes only. Deprecated aliases in ``deprecated_names`` still resolve
(with a :class:`DeprecationWarning`) for one major version; the README
migration table maps each to its replacement. Deeper imports
(``repro.core.campaign`` etc.) continue to work but may shift between
releases.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.apps.base import Workload
from repro.apps.graphmining import GraphMining
from repro.apps.kvstore import KVStoreWorkload
from repro.apps.websearch import WebSearch
from repro.cluster.availability_sim import (
    SIMULATOR_BACKENDS as _SIMULATOR_BACKENDS,
)
from repro.core.availability import AvailabilityParams, ErrorRateModel
from repro.core.campaign import (
    BACKENDS as _CAMPAIGN_BACKENDS,
    DEFAULT_SPECS,
    CampaignConfig,
    CharacterizationCampaign,
    TrialRecord,
    campaign_fingerprint,
    load_or_run_profile,
)
from repro.core.cost_model import CostModel
from repro.core.mapping import DesignEvaluator, DesignMetrics, HRMDesign
from repro.core.optimizer import (
    DEFAULT_CANDIDATES,
    SEARCH_BACKENDS as _SEARCH_BACKENDS,
    MappingOptimizer,
    OptimizationResult,
)
from repro.core.taxonomy import ErrorOutcome
from repro.core.vulnerability import VulnerabilityProfile
from repro.explore import (
    EXPLORE_BACKENDS as _EXPLORE_BACKENDS,
    ExplorationResult,
    SimulationValidation,
)
from repro.explore.engine import explore as _explore
from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.ecc.registry import (
    UnknownTechniqueError,
    available_techniques,
    make_codec,
    register_codec,
)
from repro.fleet.config import (
    AgingConfig,
    CorrelationConfig,
    FleetConfig,
    FleetDesign,
)
from repro.fleet.engine import (
    FLEET_BACKENDS as _FLEET_BACKENDS,
    analyze_fleet,
    optimize_fleet,
    simulate_fleet,
)
from repro.exec.workers import resolve_workers
from repro.fleet.analytic import AnalyticFleetResult
from repro.fleet.optimizer import CompositionMetrics, FleetOptimizationResult
from repro.fleet.simulator import FleetSimulationResult
from repro.injection.injector import (
    MULTI_BIT_HARD,
    MULTI_BIT_SOFT,
    SINGLE_BIT_HARD,
    SINGLE_BIT_SOFT,
    ErrorSpec,
)
from repro.kernels.registry import available_kernels, get_kernel
from repro.obs.live import BackgroundTelemetryServer, ObservabilityServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BurnWindow,
    SloConfig,
    SloEngine,
    audit_slo,
    parse_burn_windows,
    slo_from_ledger,
)
from repro.obs.trace import NULL_OBSERVER, Observer
from repro.serve import (
    DATA_PLANES as _DATA_PLANES,
    POLICY_NAMES,
    ServeConfig,
    ServeResult,
    ServeTenant,
    default_tenants,
    load_ledger,
    replay_ledger,
    run_serve,
    serve_session,
)

#: Version of the *surface* (not the package): bumped on breaking
#: changes to exported names or entry-point signatures.
API_VERSION = "2.0"

#: The documented tiers. Names within each tier are sorted; ``__all__``
#: is their concatenation (the API-surface test pins both properties).
API_TIERS: Dict[str, Tuple[str, ...]] = {
    "entry points": (
        "analyze_fleet",
        "explore_design_space",
        "load_or_run_profile",
        "optimize_fleet",
        "run_campaign",
        "simulate_fleet",
    ),
    "configs": (
        "AgingConfig",
        "AvailabilityParams",
        "BurnWindow",
        "CampaignConfig",
        "CorrelationConfig",
        "CostModel",
        "ErrorRateModel",
        "ErrorSpec",
        "FleetConfig",
        "FleetDesign",
        "ServeConfig",
        "ServeTenant",
        "SloConfig",
    ),
    "results": (
        "AnalyticFleetResult",
        "CompositionMetrics",
        "DesignMetrics",
        "ErrorOutcome",
        "ExplorationResult",
        "FleetOptimizationResult",
        "FleetSimulationResult",
        "OptimizationResult",
        "ServeResult",
        "SimulationValidation",
        "TrialRecord",
        "VulnerabilityProfile",
    ),
    "registries": (
        "UnknownTechniqueError",
        "available_backends",
        "available_kernels",
        "available_techniques",
        "get_kernel",
        "make_codec",
        "register_codec",
    ),
    "workloads": (
        "GraphMining",
        "KVStoreWorkload",
        "MetricsRegistry",
        "NULL_OBSERVER",
        "Observer",
        "WebSearch",
        "Workload",
    ),
    "advanced": (
        "BackgroundTelemetryServer",
        "CharacterizationCampaign",
        "Codec",
        "DEFAULT_CANDIDATES",
        "DEFAULT_SPECS",
        "DecodeResult",
        "DecodeStatus",
        "DesignEvaluator",
        "HRMDesign",
        "MULTI_BIT_HARD",
        "MULTI_BIT_SOFT",
        "MappingOptimizer",
        "ObservabilityServer",
        "POLICY_NAMES",
        "SINGLE_BIT_HARD",
        "SINGLE_BIT_SOFT",
        "SloEngine",
        "audit_slo",
        "campaign_fingerprint",
        "default_tenants",
        "load_ledger",
        "parse_burn_windows",
        "replay_ledger",
        "resolve_workers",
        "run_serve",
        "serve_session",
        "slo_from_ledger",
    ),
}

__all__ = [name for tier in API_TIERS.values() for name in tier]

#: Deprecated alias -> (replacement hint, value thunk). Access emits a
#: DeprecationWarning via module ``__getattr__``; the aliases stay
#: importable for one major version (see the README migration table).
deprecated_names: Dict[str, Tuple[str, Callable[[], object]]] = {
    "BACKENDS": (
        'available_backends("campaign")',
        lambda: _CAMPAIGN_BACKENDS,
    ),
    "SEARCH_BACKENDS": (
        'available_backends("search")',
        lambda: _SEARCH_BACKENDS,
    ),
    "EXPLORE_BACKENDS": (
        'available_backends("explore")',
        lambda: _EXPLORE_BACKENDS,
    ),
    "SIMULATOR_BACKENDS": (
        'available_backends("simulator")',
        lambda: _SIMULATOR_BACKENDS,
    ),
    "FLEET_BACKENDS": (
        'available_backends("fleet")',
        lambda: _FLEET_BACKENDS,
    ),
}


def __getattr__(name: str):
    if name in deprecated_names:
        replacement, thunk = deprecated_names[name]
        warnings.warn(
            f"repro.api.{name} is deprecated; use repro.api.{replacement}",
            DeprecationWarning,
            stacklevel=2,
        )
        return thunk()
    raise AttributeError(f"module 'repro.api' has no attribute '{name}'")


#: Registry of backend tuples behind :func:`available_backends`.
_BACKEND_KINDS: Dict[str, Tuple[str, ...]] = {
    "campaign": tuple(_CAMPAIGN_BACKENDS),
    "search": tuple(_SEARCH_BACKENDS),
    "explore": tuple(_EXPLORE_BACKENDS),
    "simulator": tuple(_SIMULATOR_BACKENDS),
    "fleet": tuple(_FLEET_BACKENDS),
    "serve": tuple(_DATA_PLANES),
}


def available_backends(kind: str) -> Tuple[str, ...]:
    """Execution backends accepted by one subsystem's ``backend=``.

    One helper replaces the per-module constants (``BACKENDS``,
    ``SEARCH_BACKENDS``, ``EXPLORE_BACKENDS``, ``SIMULATOR_BACKENDS``):

    ======================  =============================================
    ``"campaign"``          :func:`run_campaign`
    ``"search"``            :class:`MappingOptimizer`
    ``"explore"``           :func:`explore_design_space`
    ``"simulator"``         ``cluster.AvailabilitySimulator``
    ``"fleet"``             :func:`simulate_fleet`
    ``"serve"``             :class:`ServeConfig` ``data_plane=``
    ======================  =============================================
    """
    try:
        return _BACKEND_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown backend kind '{kind}'; "
            f"expected one of {sorted(_BACKEND_KINDS)}"
        ) from None


def run_campaign(
    workload: Workload,
    *,
    config: Optional[CampaignConfig] = None,
    observer: Observer = NULL_OBSERVER,
    backend: str = "scalar",
    regions: Optional[Sequence[str]] = None,
    specs: Sequence[ErrorSpec] = DEFAULT_SPECS,
    trials_per_cell: Optional[int] = None,
    workers: Optional[object] = None,
    workload_factory: Optional[Callable[[], Workload]] = None,
    progress: Optional[Callable] = None,
    region_codecs: Optional[Dict[str, str]] = None,
) -> VulnerabilityProfile:
    """Characterize ``workload`` in one call and return its profile.

    Wraps construct → :meth:`~CharacterizationCampaign.prepare` →
    :meth:`~CharacterizationCampaign.run`. The profile is bit-identical
    for any ``workers`` count and any ``backend``; use
    ``backend="vectorized"`` (batched injection planning, batched
    instrument updates) for large trial budgets, or ``backend="pruned"``
    to additionally resolve footprint-decidable trials analytically from
    one golden trace. ``workers`` accepts a count, ``"auto"``, or ``0``
    (both resolve to the usable CPU count with a deterministic fallback
    to 1). ``region_codecs`` maps region names to hardware codecs
    (e.g. ``{"heap": "SEC-DED"}``); corrected single-bit trials are
    tracked virtually instead of corrupting memory, on every backend.
    """
    campaign = CharacterizationCampaign(
        workload, config=config, observer=observer, backend=backend,
        region_codecs=region_codecs,
    )
    campaign.prepare()
    return campaign.run(
        regions=regions,
        specs=specs,
        trials_per_cell=trials_per_cell,
        workers=resolve_workers(workers),
        workload_factory=workload_factory,
        progress=progress,
    )


def explore_design_space(
    profile: VulnerabilityProfile,
    *,
    availability_target: float,
    error_label: str = "single-bit soft",
    recoverable_fractions: Optional[Dict[str, float]] = None,
    candidates: Sequence = DEFAULT_CANDIDATES,
    max_incorrect_per_million: Optional[float] = None,
    regions: Optional[Sequence[str]] = None,
    cost_model: Optional[CostModel] = None,
    error_model: Optional[ErrorRateModel] = None,
    availability_params: Optional[AvailabilityParams] = None,
    backend: str = "auto",
    top_k: Optional[int] = None,
    simulate_months: int = 0,
    simulation_seed: int = 0,
    observer: Observer = NULL_OBSERVER,
) -> ExplorationResult:
    """Search HRM designs against a measured profile (paper §VI-B).

    Evaluates per-region policy assignments from ``candidates`` and
    returns the cheapest design meeting the availability target (and
    incorrectness budget, when given). All backends return identical
    designs; they differ in cost: ``scalar`` is the one-design-at-a-time
    reference, ``vectorized`` evaluates the space in NumPy chunks,
    ``branch-and-bound`` finds exact top-k without visiting the whole
    space, and ``auto`` (default) picks ``vectorized`` when NumPy is
    importable. The result is an :class:`ExplorationResult` — a
    backward-compatible :class:`OptimizationResult` subclass.

    Args:
        profile: Measured vulnerability profile to evaluate against.
        availability_target: Minimum single-server availability.
        error_label: Which characterized error type drives the rates.
        recoverable_fractions: Per-region recoverable data fraction
            (bounds what Detect&Recover policies can absorb).
        candidates: Region policies to enumerate.
        max_incorrect_per_million: Optional incorrectness budget.
        regions: Regions to assign policies to (default: all profiled).
        cost_model / error_model / availability_params: Model overrides.
        backend: ``auto`` / ``scalar`` / ``vectorized`` /
            ``branch-and-bound``.
        top_k: When set, return only the k best feasible designs
            (memory-safe on huge spaces); when ``None``, exhaustive
            backends return the full feasible list.
        simulate_months: When > 0, Monte Carlo-validate the winner over
            this many server-months (``result.simulation``).
        simulation_seed: Seed for the validation simulation.
        observer: Receives ``explore`` spans and the
            designs-evaluated / pruned instruments when enabled.
    """
    return _explore(
        profile,
        availability_target=availability_target,
        error_label=error_label,
        recoverable_fractions=recoverable_fractions,
        candidates=candidates,
        max_incorrect_per_million=max_incorrect_per_million,
        regions=regions,
        cost_model=cost_model,
        error_model=error_model,
        availability_params=availability_params,
        backend=backend,
        top_k=top_k,
        simulate_months=simulate_months,
        simulation_seed=simulation_seed,
        observer=observer,
    )
