"""Sort-based Pareto front extraction, O(n log n) instead of O(n²).

The front is over two objectives: server cost savings (maximize) and
availability (maximize). After sorting by savings descending (stable),
a single sweep suffices:

* within a group of equal savings, only the members attaining the group
  maximum availability can be non-dominated (anything lower is dominated
  by a group-mate with strictly higher availability);
* the group maximum itself survives iff it strictly exceeds the best
  availability seen among all *strictly higher* savings groups —
  otherwise some cheaper-or-equal design with at-least-equal
  availability dominates it.

Output order is (savings descending, original index ascending) — the
same order the quadratic implementation produced via a stable sort, so
this is a drop-in replacement (golden-tested against the old code).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["pareto_indices"]


def pareto_indices(points: Sequence[Tuple[float, float]]) -> List[int]:
    """Indices of non-dominated ``(savings, availability)`` points.

    A point is dominated when another point is >= in both coordinates
    and > in at least one. Duplicated non-dominated points all survive
    (neither dominates the other), matching the quadratic reference.
    """
    count = len(points)
    order = sorted(range(count), key=lambda i: (-points[i][0], i))
    selected: List[int] = []
    best_availability = float("-inf")
    start = 0
    while start < count:
        savings = points[order[start]][0]
        stop = start
        while stop < count and points[order[stop]][0] == savings:
            stop += 1
        group = order[start:stop]
        group_max = max(points[i][1] for i in group)
        if group_max > best_availability:
            selected.extend(i for i in group if points[i][1] == group_max)
            best_availability = group_max
        start = stop
    return selected
