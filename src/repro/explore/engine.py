"""Design-space exploration orchestration: backends, top-k, validation.

:func:`explore` is the one-call entry point behind
``repro.api.explore_design_space`` and ``repro explore``:

1. build a :class:`~repro.explore.matrix.ContributionMatrix` (or run
   the scalar evaluator directly for the ``scalar`` backend);
2. search — exhaustive (``scalar`` / ``vectorized``, byte-identical to
   :class:`~repro.core.optimizer.MappingOptimizer`) or bounded
   (``branch-and-bound``, exact top-k with admissible pruning);
3. optionally validate the winner with a Monte Carlo simulation
   (vectorized when NumPy is importable) and report percentile
   confidence bounds next to the analytic prediction.

Backends return identical designs; they differ only in cost:

======================  ============================================
``scalar``              reference; O(space) full evaluations
``vectorized``          O(space) NumPy chunk evaluations
``branch-and-bound``    exact top-k without visiting the whole space
``auto``                ``vectorized`` if NumPy imports, else scalar
======================  ============================================

``top_k``: when ``None``, the result carries the *full* feasible list
(exhaustive backends only — branch-and-bound then returns top-1). When
set, ``feasible`` holds just the k best designs, which is what keeps
huge spaces memory-safe.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.availability import AvailabilityParams, ErrorRateModel
from repro.core.cost_model import CostModel
from repro.core.mapping import DesignEvaluator, DesignMetrics, HRMDesign
from repro.core.optimizer import (
    DEFAULT_CANDIDATES,
    MappingOptimizer,
    OptimizationResult,
    _numpy_available,
)
from repro.core.vulnerability import VulnerabilityProfile
from repro.obs.events import SPAN_EXPLORE, SPAN_EXPLORE_PHASE
from repro.obs.instruments import ExplorationInstruments
from repro.obs.trace import NULL_OBSERVER, Observer
from repro.utils.validation import check_fraction

__all__ = [
    "EXPLORE_BACKENDS",
    "ExplorationResult",
    "SimulationValidation",
    "explore",
]

#: Backends accepted by :func:`explore`.
EXPLORE_BACKENDS = ("auto", "scalar", "vectorized", "branch-and-bound")


@dataclass
class SimulationValidation:
    """Monte Carlo cross-check of the analytic winner."""

    design_name: str
    months: int
    seed: int
    backend: str
    mean_availability: float
    analytic_availability: float
    mean_crashes: float
    analytic_crashes: float
    #: Availability at the 5th / 50th / 95th percentile of months.
    percentiles: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (CLI ``--json`` output)."""
        return {
            "design": self.design_name,
            "months": self.months,
            "seed": self.seed,
            "backend": self.backend,
            "mean_availability": self.mean_availability,
            "analytic_availability": self.analytic_availability,
            "mean_crashes": self.mean_crashes,
            "analytic_crashes": self.analytic_crashes,
            "percentiles": dict(self.percentiles),
        }


@dataclass
class ExplorationResult(OptimizationResult):
    """Search outcome plus exploration-specific context.

    Extends :class:`~repro.core.optimizer.OptimizationResult`: ``best``
    / ``feasible`` / ``evaluated`` keep their meanings (with ``feasible``
    truncated to k entries when ``top_k`` was requested).
    """

    backend: str = "scalar"
    #: Size of the full assignment space.
    total_designs: int = 0
    #: Feasible designs in the whole space for the exhaustive backends
    #: (== len(feasible) unless a top_k cut was applied). The
    #: branch-and-bound backend never counts designs it pruned, so there
    #: this is just len(feasible).
    feasible_count: int = 0
    #: Designs eliminated by branch-and-bound pruning (0 for
    #: exhaustive backends).
    pruned: int = 0
    pruned_by: Dict[str, int] = field(default_factory=dict)
    simulation: Optional[SimulationValidation] = None


def explore(
    profile: VulnerabilityProfile,
    *,
    availability_target: float,
    error_label: str = "single-bit soft",
    recoverable_fractions: Optional[Dict[str, float]] = None,
    candidates: Sequence = DEFAULT_CANDIDATES,
    max_incorrect_per_million: Optional[float] = None,
    regions: Optional[Sequence[str]] = None,
    cost_model: Optional[CostModel] = None,
    error_model: Optional[ErrorRateModel] = None,
    availability_params: Optional[AvailabilityParams] = None,
    backend: str = "auto",
    top_k: Optional[int] = None,
    simulate_months: int = 0,
    simulation_seed: int = 0,
    observer: Observer = NULL_OBSERVER,
) -> ExplorationResult:
    """Search the HRM design space; optionally validate by simulation."""
    check_fraction("availability_target", availability_target)
    if backend not in EXPLORE_BACKENDS:
        raise ValueError(
            f"unknown backend '{backend}'; expected one of {EXPLORE_BACKENDS}"
        )
    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if simulate_months < 0:
        raise ValueError(f"simulate_months must be >= 0, got {simulate_months}")
    resolved = backend
    if resolved == "auto":
        resolved = "vectorized" if _numpy_available() else "scalar"
    evaluator = DesignEvaluator(
        profile,
        cost_model=cost_model,
        error_model=error_model,
        availability_params=availability_params,
        error_label=error_label,
    )
    optimizer = MappingOptimizer(
        evaluator,
        candidates=candidates,
        recoverable_fractions=recoverable_fractions,
        backend=resolved if resolved != "branch-and-bound" else "scalar",
    )
    if regions is None:
        regions = sorted(evaluator.region_sizes)
    instruments = (
        ExplorationInstruments(observer.metrics)
        if observer.metrics is not None
        else None
    )
    with observer.span(SPAN_EXPLORE, key=resolved) as span:
        if resolved == "branch-and-bound":
            result = _search_branch_and_bound(
                optimizer,
                regions,
                availability_target,
                max_incorrect_per_million,
                top_k or 1,
                observer,
            )
        elif resolved == "vectorized" and top_k is not None:
            result = _search_vectorized_top_k(
                optimizer,
                regions,
                availability_target,
                max_incorrect_per_million,
                top_k,
                observer,
            )
        elif resolved == "scalar" and top_k is not None:
            result = _search_scalar_top_k(
                optimizer,
                regions,
                availability_target,
                max_incorrect_per_million,
                top_k,
                observer,
            )
        else:
            with observer.span(SPAN_EXPLORE_PHASE, key="search"):
                search = optimizer.search(
                    availability_target,
                    max_incorrect_per_million=max_incorrect_per_million,
                    regions=regions,
                )
            result = ExplorationResult(
                best=search.best,
                feasible=search.feasible,
                evaluated=search.evaluated,
                backend=resolved,
                total_designs=search.evaluated,
                feasible_count=len(search.feasible),
            )
        if instruments is not None:
            instruments.record_search(
                backend=resolved,
                evaluated=result.evaluated,
                feasible=result.feasible_count,
                total_designs=result.total_designs,
                pruned_by=result.pruned_by,
            )
        if simulate_months and result.found:
            with observer.span(SPAN_EXPLORE_PHASE, key="simulate"):
                result.simulation = _validate_by_simulation(
                    profile,
                    evaluator,
                    result.best,
                    months=simulate_months,
                    seed=simulation_seed,
                )
        span.set(
            backend=resolved,
            evaluated=result.evaluated,
            pruned=result.pruned,
            feasible=result.feasible_count,
            found=result.found,
        )
    return result


def _search_branch_and_bound(
    optimizer: MappingOptimizer,
    regions: Sequence[str],
    availability_target: float,
    max_incorrect_per_million: Optional[float],
    top_k: int,
    observer: Observer,
) -> ExplorationResult:
    from repro.explore.search import BranchAndBoundSearcher

    with observer.span(SPAN_EXPLORE_PHASE, key="matrix"):
        matrix = optimizer.contribution_matrix(regions)
    with observer.span(SPAN_EXPLORE_PHASE, key="search"):
        bounded = BranchAndBoundSearcher(matrix).search(
            availability_target,
            max_incorrect_per_million=max_incorrect_per_million,
            top_k=top_k,
        )
    return ExplorationResult(
        best=bounded.top[0] if bounded.top else None,
        feasible=list(bounded.top),
        evaluated=bounded.evaluated,
        backend="branch-and-bound",
        total_designs=bounded.total_designs,
        feasible_count=len(bounded.top),
        pruned=bounded.pruned,
        pruned_by=dict(bounded.pruned_by),
    )


def _search_vectorized_top_k(
    optimizer: MappingOptimizer,
    regions: Sequence[str],
    availability_target: float,
    max_incorrect_per_million: Optional[float],
    top_k: int,
    observer: Observer,
) -> ExplorationResult:
    from repro.explore.batch import BatchDesignSpaceEvaluator

    with observer.span(SPAN_EXPLORE_PHASE, key="matrix"):
        matrix = optimizer.contribution_matrix(regions)
        batch = BatchDesignSpaceEvaluator(matrix)
    with observer.span(SPAN_EXPLORE_PHASE, key="search"):
        ids, feasible_count, evaluated = batch.top_k_ids(
            availability_target,
            max_incorrect_per_million=max_incorrect_per_million,
            top_k=top_k,
        )
        # Materialize candidates (k plus (savings, availability) ties)
        # in ascending id order, then apply the exact result ordering —
        # the stable sort resolves full ties by id, matching the scalar
        # feasible-list order.
        candidates = [matrix.metrics_at(digits) for digits in batch.digits(ids)]
        candidates.sort(key=_result_order_key)
        top = candidates[:top_k]
    return ExplorationResult(
        best=top[0] if top else None,
        feasible=top,
        evaluated=evaluated,
        backend="vectorized",
        total_designs=matrix.total_designs,
        feasible_count=feasible_count,
    )


def _search_scalar_top_k(
    optimizer: MappingOptimizer,
    regions: Sequence[str],
    availability_target: float,
    max_incorrect_per_million: Optional[float],
    top_k: int,
    observer: Observer,
) -> ExplorationResult:
    """Streaming scalar reference: exhaustive evaluation, O(k) memory.

    Evaluates every design through the scalar evaluator (the honest
    baseline the benchmark times) but keeps only a k-bounded heap
    instead of the full feasible list, so the scalar backend stays
    memory-safe on large spaces too.
    """
    evaluator = optimizer.evaluator
    heap: List[Tuple[float, float, _Reversed, int, DesignMetrics]] = []
    evaluated = 0
    feasible_count = 0
    with observer.span(SPAN_EXPLORE_PHASE, key="search"):
        for index, assignment in enumerate(
            itertools.product(optimizer.candidates, repeat=len(regions))
        ):
            policies = {
                region: optimizer._specialize(region, policy)
                for region, policy in zip(regions, assignment)
            }
            design = HRMDesign(
                name="+".join(p.describe() for p in policies.values()),
                policies=policies,
            )
            metrics = evaluator.evaluate(design)
            evaluated += 1
            if metrics.availability < availability_target:
                continue
            if (
                max_incorrect_per_million is not None
                and metrics.incorrect_per_million_queries > max_incorrect_per_million
            ):
                continue
            feasible_count += 1
            entry = (
                metrics.server_cost_savings,
                metrics.availability,
                _Reversed(design.name),
                -index,
                metrics,
            )
            if len(heap) < top_k:
                heapq.heappush(heap, entry)
            else:
                heapq.heappushpop(heap, entry)
        top = [entry[4] for entry in sorted(heap, reverse=True)]
    return ExplorationResult(
        best=top[0] if top else None,
        feasible=top,
        evaluated=evaluated,
        backend="scalar",
        total_designs=evaluated,
        feasible_count=feasible_count,
    )


class _Reversed:
    """Inverts the ordering of a wrapped value (min-heap of maxima)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _result_order_key(metrics: DesignMetrics):
    return (
        -metrics.server_cost_savings,
        -metrics.availability,
        metrics.design.name,
    )


def _validate_by_simulation(
    profile: VulnerabilityProfile,
    evaluator: DesignEvaluator,
    best: DesignMetrics,
    *,
    months: int,
    seed: int,
) -> SimulationValidation:
    from repro.cluster.availability_sim import AvailabilitySimulator

    backend = "vectorized" if _numpy_available() else "scalar"
    simulator = AvailabilitySimulator(
        profile,
        best.design.policies,
        error_model=evaluator.error_model,
        params=evaluator.availability_params,
        error_label=evaluator.error_label,
        region_sizes=evaluator.region_sizes,
        backend=backend,
    )
    summary = simulator.simulate(months, seed=seed)
    return SimulationValidation(
        design_name=best.design.name,
        months=months,
        seed=seed,
        backend=backend,
        mean_availability=summary.mean_availability,
        analytic_availability=best.availability,
        mean_crashes=summary.mean_crashes,
        analytic_crashes=best.crashes_per_month,
        percentiles={
            "p5": summary.availability_percentile(5),
            "p50": summary.availability_percentile(50),
            "p95": summary.availability_percentile(95),
        },
    )
