"""NumPy evaluation of whole assignment spaces at once.

Assignments are integers in ``[0, candidates^regions)`` whose mixed-
radix digits (region 0 most significant — the ``itertools.product``
enumeration order) index the :class:`~repro.explore.matrix.
ContributionMatrix`. Per chunk of ids, the evaluator gathers each
region's contribution row with fancy indexing and accumulates with
``+=`` in region order — elementwise IEEE-754 double adds in the same
order as the scalar evaluator, so every derived array entry is
bit-identical to ``DesignEvaluator.evaluate`` on that design (NumPy
ufunc arithmetic performs no reassociation or FMA contraction).

Chunked iteration bounds peak memory regardless of space size; top-k
selection keeps only the k best (plus ties on the (savings,
availability) key, so later name tie-breaking stays exact) per chunk.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.availability import MINUTES_PER_MONTH
from repro.explore.matrix import ContributionMatrix

__all__ = ["BatchDesignSpaceEvaluator", "DEFAULT_CHUNK_SIZE"]

#: Assignments evaluated per chunk (~2 MB per metric array).
DEFAULT_CHUNK_SIZE = 1 << 18


class BatchDesignSpaceEvaluator:
    """Vectorized counterpart of scalar exhaustive enumeration."""

    def __init__(
        self, matrix: ContributionMatrix, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if matrix.total_designs > np.iinfo(np.int64).max:
            raise ValueError("assignment space exceeds int64 ids")
        self.matrix = matrix
        self.chunk_size = chunk_size
        self._cost = np.asarray(matrix.cost, dtype=np.float64)
        self._crashes = np.asarray(matrix.crashes, dtype=np.float64)
        self._incorrect = np.asarray(matrix.incorrect, dtype=np.float64)
        radix = matrix.candidate_count
        self._place = np.array(
            [radix ** (matrix.region_count - 1 - r) for r in range(matrix.region_count)],
            dtype=np.int64,
        )

    def digits(self, ids: np.ndarray) -> np.ndarray:
        """Mixed-radix digit array of shape ``(len(ids), regions)``."""
        ids = np.asarray(ids, dtype=np.int64)
        return (ids[:, None] // self._place[None, :]) % self.matrix.candidate_count

    def evaluate_ids(self, ids: np.ndarray) -> dict:
        """Metric arrays for a batch of assignment ids.

        Returns a dict with ``savings`` (server cost savings),
        ``availability``, ``incorrect_per_million``, ``crashes`` and
        ``cost`` (the raw design-cost sum) arrays, each aligned to
        ``ids`` and bit-identical to the scalar evaluator.
        """
        ids = np.asarray(ids, dtype=np.int64)
        matrix = self.matrix
        cost = np.zeros(ids.shape, dtype=np.float64)
        crashes = np.zeros(ids.shape, dtype=np.float64)
        incorrect = np.zeros(ids.shape, dtype=np.float64)
        radix = matrix.candidate_count
        for r in range(matrix.region_count):
            digit = (ids // self._place[r]) % radix
            cost += self._cost[r][digit]
            crashes += self._crashes[r][digit]
            incorrect += self._incorrect[r][digit]
        memory_savings = 1.0 - cost / matrix.baseline_cost
        savings = (
            memory_savings
            * matrix.evaluator.cost_model.params.dram_fraction_of_server_cost
        )
        params = matrix.evaluator.availability_params
        downtime = crashes * params.crash_recovery_minutes
        availability = np.maximum(0.0, 1.0 - downtime / MINUTES_PER_MONTH)
        incorrect_per_million = incorrect / params.queries_per_month * 1e6
        return {
            "savings": savings,
            "availability": availability,
            "incorrect_per_million": incorrect_per_million,
            "crashes": crashes,
            "cost": cost,
        }

    def iter_chunks(self) -> Iterator[np.ndarray]:
        """Yield ascending id ranges covering the whole space."""
        total = self.matrix.total_designs
        for start in range(0, total, self.chunk_size):
            yield np.arange(
                start, min(start + self.chunk_size, total), dtype=np.int64
            )

    def feasible_ids(
        self,
        availability_target: float,
        max_incorrect_per_million: Optional[float] = None,
    ) -> Tuple[np.ndarray, int]:
        """All feasible assignment ids (ascending) and the evaluated count."""
        found: List[np.ndarray] = []
        evaluated = 0
        for ids in self.iter_chunks():
            evaluated += len(ids)
            metrics = self.evaluate_ids(ids)
            mask = metrics["availability"] >= availability_target
            if max_incorrect_per_million is not None:
                mask &= metrics["incorrect_per_million"] <= max_incorrect_per_million
            found.append(ids[mask])
        if not found:
            return np.empty(0, dtype=np.int64), evaluated
        return np.concatenate(found), evaluated

    def top_k_ids(
        self,
        availability_target: float,
        max_incorrect_per_million: Optional[float] = None,
        top_k: int = 1,
    ) -> Tuple[np.ndarray, int, int]:
        """Ids of the k best feasible designs, plus ties on the
        (savings, availability) key, in ascending id order.

        Ties are kept so the caller can apply the exact name tie-breaker
        during materialization. Returns ``(ids, feasible_count,
        evaluated)``.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        kept_ids = np.empty(0, dtype=np.int64)
        kept_savings = np.empty(0, dtype=np.float64)
        kept_availability = np.empty(0, dtype=np.float64)
        feasible_count = 0
        evaluated = 0
        for ids in self.iter_chunks():
            evaluated += len(ids)
            metrics = self.evaluate_ids(ids)
            mask = metrics["availability"] >= availability_target
            if max_incorrect_per_million is not None:
                mask &= metrics["incorrect_per_million"] <= max_incorrect_per_million
            feasible_count += int(np.count_nonzero(mask))
            kept_ids = np.concatenate([kept_ids, ids[mask]])
            kept_savings = np.concatenate([kept_savings, metrics["savings"][mask]])
            kept_availability = np.concatenate(
                [kept_availability, metrics["availability"][mask]]
            )
            kept_ids, kept_savings, kept_availability = _cap_to_k(
                kept_ids, kept_savings, kept_availability, top_k
            )
        return kept_ids, feasible_count, evaluated

    def pareto_ids(self) -> Tuple[np.ndarray, int]:
        """Front ids in (savings desc, id asc) order, plus evaluated count.

        Same sweep as :func:`repro.explore.pareto.pareto_indices`, on
        arrays: within an equal-savings group only the availability
        maxima survive, and only when they strictly beat every better-
        savings group.
        """
        total = self.matrix.total_designs
        savings = np.empty(total, dtype=np.float64)
        availability = np.empty(total, dtype=np.float64)
        for ids in self.iter_chunks():
            metrics = self.evaluate_ids(ids)
            savings[ids[0] : ids[-1] + 1] = metrics["savings"]
            availability[ids[0] : ids[-1] + 1] = metrics["availability"]
        order = np.argsort(-savings, kind="stable")
        ordered_savings = savings[order]
        ordered_availability = availability[order]
        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        new_group[1:] = ordered_savings[1:] != ordered_savings[:-1]
        starts = np.flatnonzero(new_group)
        group_max = np.maximum.reduceat(ordered_availability, starts)
        running = np.maximum.accumulate(group_max)
        previous_best = np.concatenate(([-np.inf], running[:-1]))
        group_survives = group_max > previous_best
        group_index = np.cumsum(new_group) - 1
        keep = group_survives[group_index] & (
            ordered_availability == group_max[group_index]
        )
        return order[keep], total


def _cap_to_k(
    ids: np.ndarray, savings: np.ndarray, availability: np.ndarray, top_k: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Keep the k best rows by (savings, availability) plus exact ties
    with the k-th row, preserving ascending id order."""
    if len(ids) <= top_k:
        return ids, savings, availability
    order = np.lexsort((-availability, -savings))
    kth = order[top_k - 1]
    kth_savings = savings[kth]
    kth_availability = availability[kth]
    keep = (savings > kth_savings) | (
        (savings == kth_savings) & (availability >= kth_availability)
    )
    return ids[keep], savings[keep], availability[keep]
