"""Batch design-space exploration (paper §VI, Figure 7, Table 6 scale-up).

Evaluating a heterogeneous-reliability-memory design is additive over
regions, so the whole ``candidates^regions`` assignment space can be
explored from a per-(region, candidate) contribution matrix instead of
one scalar evaluation per design:

* :mod:`repro.explore.matrix` — the contribution table (pure Python,
  scalar-oracle bit-identical);
* :mod:`repro.explore.batch` — NumPy chunked evaluation / top-k /
  Pareto over assignment-id ranges;
* :mod:`repro.explore.search` — exact branch-and-bound top-k with
  admissible per-region bounds and dominance pruning;
* :mod:`repro.explore.pareto` — the O(n log n) sort-based front sweep;
* :mod:`repro.explore.simulator` — batched Monte Carlo availability
  simulation (designs × regions × months);
* :mod:`repro.explore.engine` — :func:`explore`, the orchestrating
  entry point behind ``repro.api.explore_design_space`` and the
  ``repro explore`` CLI.

Modules that need NumPy (:mod:`batch <repro.explore.batch>`,
:mod:`simulator <repro.explore.simulator>`) are imported lazily so the
pure-Python search path works without it.
"""

from repro.explore.engine import (
    EXPLORE_BACKENDS,
    ExplorationResult,
    SimulationValidation,
    explore,
)
from repro.explore.matrix import ContributionMatrix
from repro.explore.pareto import pareto_indices
from repro.explore.search import BranchAndBoundResult, BranchAndBoundSearcher

__all__ = [
    "EXPLORE_BACKENDS",
    "ExplorationResult",
    "SimulationValidation",
    "explore",
    "ContributionMatrix",
    "pareto_indices",
    "BranchAndBoundResult",
    "BranchAndBoundSearcher",
    # NumPy-backed, resolved lazily:
    "BatchDesignSpaceEvaluator",
    "BatchAvailabilitySimulator",
    "BatchSimulationResult",
]

_LAZY = {
    "BatchDesignSpaceEvaluator": "repro.explore.batch",
    "BatchAvailabilitySimulator": "repro.explore.simulator",
    "BatchSimulationResult": "repro.explore.simulator",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.explore' has no attribute '{name}'")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
