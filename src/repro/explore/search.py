"""Exact branch-and-bound search over per-region policy assignments.

Explores the ``candidates^regions`` assignment tree region by region,
keeping a size-k heap of the best feasible designs found so far and
pruning subtrees that provably cannot contribute:

* **Admissible bounds.** For each region still unassigned, the searcher
  adds that region's minimum possible cost / crash-rate / incorrectness
  contribution, *sequentially in region order*. IEEE-754 round-to-
  nearest addition, division and multiplication are weakly monotone in
  each argument, so a sequential sum where every remaining term is
  replaced by its region minimum can never exceed the sum the exact
  evaluator would compute for any completion. The optimistic savings /
  availability / incorrectness derived from those bounded sums are
  therefore admissible: a subtree is pruned only when *no* completion
  can be feasible (availability / incorrectness bounds) or can beat the
  current k-th best savings *strictly* (cost bound) — pruning never
  changes the result, it only skips work.
* **Cost-ordered candidates.** Per region, candidates are visited in
  ascending cost order, so once the cost bound fails for one candidate
  it fails for all remaining ones and the whole candidate loop breaks.
* **Dominance elimination (top-1 only).** A candidate is dropped when a
  same-region alternative has *strictly* lower cost and no worse crash
  and incorrectness contributions — any assignment using the dominated
  candidate is beaten by the same assignment with the substitute. This
  is only applied for ``top_k == 1``: a dominated design can still
  legitimately occupy a lower rank of a top-k list. Caveat: with
  pathological floating-point inputs, a strictly-lower per-region cost
  could round to an *equal* design-cost total, where the (availability,
  name) tie-breakers might have preferred the dominated design. Costs
  here are codec-derived capacity overheads scaled by region sizes —
  distinct values are separated far beyond the rounding error of a sum
  over a handful of regions — and equal-cost candidates are never
  dropped, so the elimination is exact for this model family (and the
  hypothesis equivalence suite exercises it against exhaustive search).

Results are deterministic and byte-identical to exhaustive scalar
search: the heap orders entries by (savings, availability) descending
with the design name ascending and the assignment digits ascending as
final tie-breakers — exactly the feasible-list order of
:meth:`repro.core.optimizer.MappingOptimizer.search`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.mapping import DesignMetrics
from repro.explore.matrix import ContributionMatrix
from repro.utils.validation import check_fraction

__all__ = ["BranchAndBoundResult", "BranchAndBoundSearcher"]


class _Reversed:
    """Inverts the ordering of a wrapped value (for min-heaps of maxima)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


@dataclass
class BranchAndBoundResult:
    """Outcome of a bounded search."""

    #: Best feasible designs, ordered by (-savings, -availability, name).
    top: List[DesignMetrics]
    #: Designs whose exact metrics were computed and offered to the heap.
    evaluated: int
    #: Designs eliminated by bounds without exact evaluation.
    pruned: int
    #: Pruned-design counts by bound (availability / incorrectness / cost
    #: / dominated). ``evaluated + pruned == total_designs`` always.
    pruned_by: Dict[str, int] = field(default_factory=dict)
    #: Size of the full assignment space.
    total_designs: int = 0

    @property
    def found(self) -> bool:
        """Whether any design met the constraints."""
        return bool(self.top)


class BranchAndBoundSearcher:
    """Deterministic top-k search with admissible pruning."""

    def __init__(self, matrix: ContributionMatrix) -> None:
        self.matrix = matrix

    def search(
        self,
        availability_target: float,
        max_incorrect_per_million: Optional[float] = None,
        top_k: int = 1,
    ) -> BranchAndBoundResult:
        """Find the ``top_k`` feasible designs with maximum savings."""
        check_fraction("availability_target", availability_target)
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        matrix = self.matrix
        region_count = matrix.region_count
        pruned_by = {
            "dominated": 0,
            "availability": 0,
            "incorrectness": 0,
            "cost": 0,
        }

        orders: List[List[int]] = []
        for r in range(region_count):
            kept = list(range(matrix.candidate_count))
            if top_k == 1:
                kept = [c for c in kept if not self._dominated(r, c)]
            kept.sort(
                key=lambda c, r=r: (
                    matrix.cost[r][c],
                    matrix.crashes[r][c],
                    matrix.incorrect[r][c],
                    c,
                )
            )
            orders.append(kept)

        # Designs removed wholesale by per-region dominance elimination.
        explored = 1
        for kept in orders:
            explored *= len(kept)
        pruned_by["dominated"] = matrix.total_designs - explored

        min_cost = [min(matrix.cost[r][c] for c in orders[r]) for r in range(region_count)]
        min_crash = [
            min(matrix.crashes[r][c] for c in orders[r]) for r in range(region_count)
        ]
        min_inc = [
            min(matrix.incorrect[r][c] for c in orders[r]) for r in range(region_count)
        ]
        # Designs per subtree rooted after assigning region r.
        subtree = [1] * (region_count + 1)
        for r in range(region_count - 1, -1, -1):
            subtree[r] = subtree[r + 1] * len(orders[r])

        heap: list = []  # (savings, avail, _Reversed(name), _Reversed(digits))
        digits = [0] * region_count
        evaluated = 0

        def leaf(cost_total: float, crash_total: float) -> None:
            nonlocal evaluated
            evaluated += 1
            savings = matrix.server_savings_from_cost(cost_total)
            availability = matrix.availability_from_crash_total(crash_total)
            if len(heap) == top_k:
                worst = heap[0]
                if savings < worst[0]:
                    return
                if savings == worst[0] and availability < worst[1]:
                    return
            entry = (
                savings,
                availability,
                _Reversed(matrix.design_name(digits)),
                _Reversed(tuple(digits)),
            )
            if len(heap) < top_k:
                heapq.heappush(heap, entry)
            else:
                heapq.heappushpop(heap, entry)

        def descend(r: int, cost_p: float, crash_p: float, inc_p: float) -> None:
            for c in orders[r]:
                digits[r] = c
                cost = cost_p + matrix.cost[r][c]
                crash = crash_p + matrix.crashes[r][c]
                inc = inc_p + matrix.incorrect[r][c]
                # Optimistic completions: add each remaining region's
                # minimum, sequentially, mirroring the evaluator's sum
                # order so the bounds are admissible under IEEE-754.
                cost_lb = cost
                crash_lb = crash
                inc_lb = inc
                for j in range(r + 1, region_count):
                    cost_lb += min_cost[j]
                    crash_lb += min_crash[j]
                    inc_lb += min_inc[j]
                if matrix.availability_from_crash_total(crash_lb) < availability_target:
                    pruned_by["availability"] += subtree[r + 1]
                    continue
                if (
                    max_incorrect_per_million is not None
                    and matrix.incorrect_per_million_from_total(inc_lb)
                    > max_incorrect_per_million
                ):
                    pruned_by["incorrectness"] += subtree[r + 1]
                    continue
                if len(heap) == top_k:
                    if matrix.server_savings_from_cost(cost_lb) < heap[0][0]:
                        # Candidates are cost-sorted: every later one
                        # bounds at least as badly. Count the rest out.
                        remaining = len(orders[r]) - orders[r].index(c)
                        pruned_by["cost"] += remaining * subtree[r + 1]
                        break
                if r + 1 == region_count:
                    # The "bounds" above were exact totals: the leaf is
                    # feasible, offer it to the heap.
                    leaf(cost, crash)
                else:
                    descend(r + 1, cost, crash, inc)

        descend(0, 0.0, 0.0, 0.0)

        ordered = sorted(heap, reverse=True)
        top = [matrix.metrics_at(entry[3].value) for entry in ordered]
        return BranchAndBoundResult(
            top=top,
            evaluated=evaluated,
            pruned=sum(pruned_by.values()),
            pruned_by=pruned_by,
            total_designs=matrix.total_designs,
        )

    def _dominated(self, r: int, c: int) -> bool:
        """Whether another same-region candidate strictly beats ``c``."""
        matrix = self.matrix
        cost = matrix.cost[r][c]
        crash = matrix.crashes[r][c]
        inc = matrix.incorrect[r][c]
        for a in range(matrix.candidate_count):
            if a == c:
                continue
            if (
                matrix.cost[r][a] < cost
                and matrix.crashes[r][a] <= crash
                and matrix.incorrect[r][a] <= inc
            ):
                return True
        return False
