"""Batched Monte Carlo availability simulation over designs × months.

Vectorizes :class:`repro.cluster.availability_sim.AvailabilitySimulator`
with ``numpy.random.Generator`` draws batched over (designs, regions,
months): Poisson error counts, then binomial thinning for software
recovery and for crash-vs-incorrect consumption. The per-event scalar
loop and these batched draws sample the *same distribution* per
region-month:

* ``errors ~ Poisson(rate)``;
* each error independently recovers with the policy's recoverable
  fraction (detecting, non-correcting technique with the RECOVER
  response) — so ``recoveries ~ Binomial(errors, fraction)``;
* each consumed error independently crashes with the region's measured
  crash probability — ``crashes ~ Binomial(consumed, p_crash)`` — and
  otherwise contributes the region's mean incorrect responses.

(The scalar simulator does not branch on RESTART either: simulation
semantics intentionally follow the measured consume path.) The streams
differ, so equivalence with the scalar backend is *statistical*, not
bitwise: means and percentiles agree within Monte Carlo error — the
contract enforced by the equivalence tests. Results are seed-stable:
the same (seed, month_chunk) always produces the same draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.core.availability import (
    MINUTES_PER_MONTH,
    AvailabilityParams,
    ErrorRateModel,
)
from repro.core.design_space import RegionPolicy, SoftwareResponse
from repro.core.vulnerability import VulnerabilityProfile
from repro.cluster.availability_sim import MonthOutcome, SimulationSummary

__all__ = ["BatchAvailabilitySimulator", "BatchSimulationResult"]

#: Months simulated per chunk (bounds the (D, R, chunk) draw arrays).
DEFAULT_MONTH_CHUNK = 1 << 16


@dataclass
class BatchSimulationResult:
    """Per-(design, month) outcome arrays."""

    errors: np.ndarray  # (designs, months) int64
    crashes: np.ndarray  # (designs, months) int64
    recoveries: np.ndarray  # (designs, months) int64
    incorrect: np.ndarray  # (designs, months) float64
    downtime: np.ndarray  # (designs, months) float64, minutes
    params: AvailabilityParams

    @property
    def designs(self) -> int:
        """Number of simulated designs."""
        return self.errors.shape[0]

    @property
    def months(self) -> int:
        """Number of simulated months per design."""
        return self.errors.shape[1]

    @property
    def availability(self) -> np.ndarray:
        """(designs, months) availability array."""
        return np.maximum(0.0, 1.0 - self.downtime / MINUTES_PER_MONTH)

    def mean_availability(self, design: int = 0) -> float:
        """Average availability across months for one design."""
        return float(self.availability[design].mean())

    def mean_crashes(self, design: int = 0) -> float:
        """Average crashes per month for one design."""
        return float(self.crashes[design].mean())

    def availability_percentile(self, percentile: float, design: int = 0) -> float:
        """Availability at a percentile of months (0-100) for one design.

        Uses the same ceil-index convention as
        :meth:`repro.cluster.availability_sim.SimulationSummary.
        availability_percentile`.
        """
        if not 0 <= percentile <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        ordered = np.sort(self.availability[design])
        index = min(
            len(ordered) - 1, max(0, math.ceil(percentile / 100 * len(ordered)) - 1)
        )
        return float(ordered[index])

    def to_summary(self, design: int = 0) -> SimulationSummary:
        """Materialize one design's months as a scalar-compatible summary."""
        months = [
            MonthOutcome(
                errors=int(self.errors[design, m]),
                crashes=int(self.crashes[design, m]),
                recoveries=int(self.recoveries[design, m]),
                incorrect_responses=float(self.incorrect[design, m]),
                downtime_minutes=float(self.downtime[design, m]),
            )
            for m in range(self.months)
        ]
        return SimulationSummary(months=months)


class BatchAvailabilitySimulator:
    """Simulates many designs' server-months in one vectorized pass.

    All designs must map the same region set (the exploration engine
    simulates winners drawn from one contribution matrix, which
    guarantees this).
    """

    def __init__(
        self,
        profile: VulnerabilityProfile,
        designs: Sequence[Mapping[str, RegionPolicy]],
        error_model: ErrorRateModel = ErrorRateModel(),
        params: AvailabilityParams = AvailabilityParams(),
        error_label: str = "single-bit soft",
        region_sizes: Optional[Mapping[str, int]] = None,
        month_chunk: int = DEFAULT_MONTH_CHUNK,
    ) -> None:
        if not designs:
            raise ValueError("need at least one design to simulate")
        if month_chunk < 1:
            raise ValueError(f"month_chunk must be >= 1, got {month_chunk}")
        regions = list(designs[0])
        for policies in designs[1:]:
            if set(policies) != set(regions):
                raise ValueError(
                    "all simulated designs must cover the same regions"
                )
        sizes = dict(region_sizes) if region_sizes is not None else profile.region_sizes
        weights: List[float] = []
        total = sum(sizes.get(region, 0) for region in regions)
        if total <= 0:
            raise ValueError("design covers no sized regions")
        for region in regions:
            weights.append(sizes.get(region, 0) / total)
        self.profile = profile
        self.params = params
        self.month_chunk = month_chunk
        self._regions = regions

        crash_prob = np.empty(len(regions), dtype=np.float64)
        incorrect_per_error = np.empty(len(regions), dtype=np.float64)
        for i, region in enumerate(regions):
            crash_prob[i] = profile.region_crash_probability(region, error_label)
            stats = profile.cells.get((region, error_label))
            rate = 0.0
            if stats is not None and stats.trials:
                rate = (
                    stats.incorrect_responses + stats.failed_requests
                ) / stats.trials
            incorrect_per_error[i] = rate
        self._crash_prob = crash_prob
        self._incorrect_per_error = incorrect_per_error

        design_count = len(designs)
        rates = np.empty((design_count, len(regions)), dtype=np.float64)
        corrects = np.empty((design_count, len(regions)), dtype=bool)
        recover_fraction = np.zeros((design_count, len(regions)), dtype=np.float64)
        for d, policies in enumerate(designs):
            for i, region in enumerate(regions):
                policy = policies[region]
                rates[d, i] = error_model.region_rate(
                    weights[i], policy.less_tested
                )
                corrects[d, i] = policy.technique.corrects_single_bit
                if (
                    not corrects[d, i]
                    and policy.technique.detects_single_bit
                    and policy.response is SoftwareResponse.RECOVER
                ):
                    recover_fraction[d, i] = policy.recoverable_fraction
        self._rates = rates
        self._corrects = corrects
        self._recover_fraction = recover_fraction

    def simulate(self, months: int, seed: int = 0) -> BatchSimulationResult:
        """Simulate ``months`` server-months for every design."""
        if months <= 0:
            raise ValueError(f"months must be positive, got {months}")
        rng = np.random.Generator(np.random.PCG64(seed))
        design_count = self._rates.shape[0]
        errors = np.empty((design_count, months), dtype=np.int64)
        crashes = np.empty((design_count, months), dtype=np.int64)
        recoveries = np.empty((design_count, months), dtype=np.int64)
        incorrect = np.empty((design_count, months), dtype=np.float64)
        for start in range(0, months, self.month_chunk):
            stop = min(start + self.month_chunk, months)
            span = stop - start
            counts = rng.poisson(
                lam=self._rates[:, :, None],
                size=(design_count, self._rates.shape[1], span),
            )
            recovered = rng.binomial(counts, self._recover_fraction[:, :, None])
            consumed = np.where(
                self._corrects[:, :, None], 0, counts - recovered
            )
            crashed = rng.binomial(consumed, self._crash_prob[None, :, None])
            harmed = (consumed - crashed) * self._incorrect_per_error[None, :, None]
            errors[:, start:stop] = counts.sum(axis=1)
            crashes[:, start:stop] = crashed.sum(axis=1)
            recoveries[:, start:stop] = recovered.sum(axis=1)
            incorrect[:, start:stop] = harmed.sum(axis=1)
        downtime = crashes * self.params.crash_recovery_minutes
        return BatchSimulationResult(
            errors=errors,
            crashes=crashes,
            recoveries=recoveries,
            incorrect=incorrect,
            downtime=downtime.astype(np.float64),
            params=self.params,
        )
