"""Per-(region, candidate) contribution table for batch design evaluation.

The key observation that makes the design space explorable at scale is
that every Table 6 metric is **additive over regions**:

* ``design_cost`` is a sum of per-region ``size × cost_factor`` terms,
  and memory/server savings are monotone transforms of that sum;
* ``crashes_per_month`` and ``incorrect_responses_per_month`` are sums
  of per-region outcome rates (each region's policy acts on that
  region's errors independently);
* availability is a monotone transform of the crash sum.

So instead of re-deriving a full :class:`~repro.core.mapping.HRMDesign`
for each of the ``candidates^regions`` assignments, we call the
existing scalar machinery (:func:`repro.core.availability.
region_outcome_rates` and :meth:`repro.core.cost_model.CostModel.
memory_cost_factor`) once per (region, candidate) pair and store the
contributions. Whole-design metrics are then sequential sums over one
contribution per region — in *exactly* the same floating-point
operation order as :meth:`repro.core.mapping.DesignEvaluator.evaluate`,
so batch results are bit-identical to the scalar oracle (the same
scalar-as-reference pattern as :mod:`repro.kernels`).

:meth:`ContributionMatrix.metrics_at` materializes the full
:class:`~repro.core.mapping.DesignMetrics` row for one assignment from
the stored contributions; equality with ``DesignEvaluator.evaluate`` is
enforced by unit and hypothesis tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.availability import (
    RegionOutcomeRates,
    availability_from_crashes,
    region_outcome_rates,
)
from repro.core.design_space import RegionPolicy
from repro.core.mapping import DesignEvaluator, DesignMetrics, HRMDesign

__all__ = ["ContributionMatrix"]


@dataclass
class ContributionMatrix:
    """Contributions of every (region, candidate) pair to design metrics.

    All per-pair lists are indexed ``[region_index][candidate_index]``.
    Candidate lists may differ per region (the optimizer binds
    region-specific recoverable fractions before building the matrix),
    but every region must offer the same *number* of candidates so that
    assignments are plain digit tuples.
    """

    evaluator: DesignEvaluator
    regions: Tuple[str, ...]
    policies: List[Tuple[RegionPolicy, ...]]
    labels: List[Tuple[str, ...]]  # policy.describe() per pair
    rates: List[Tuple[RegionOutcomeRates, ...]]
    #: size × memory_cost_factor at the nominal / low / high less-tested
    #: discount (0.0 for unsized regions — adding 0.0 is a float no-op,
    #: matching the scalar evaluator skipping the region).
    cost: List[Tuple[float, ...]]
    cost_low: List[Tuple[float, ...]]
    cost_high: List[Tuple[float, ...]]
    crashes: List[Tuple[float, ...]]
    incorrect: List[Tuple[float, ...]]
    less_tested: List[Tuple[bool, ...]]
    total_size: int
    baseline_cost: float

    @classmethod
    def build(
        cls,
        evaluator: DesignEvaluator,
        regions: Sequence[str],
        candidates_per_region: Sequence[Sequence[RegionPolicy]],
    ) -> "ContributionMatrix":
        """Evaluate every (region, candidate) pair once.

        Args:
            evaluator: The scalar evaluator supplying the profile and
                cost/error/availability models.
            regions: Region names in assignment order (digit order).
            candidates_per_region: One candidate tuple per region, all
                of the same length.
        """
        if not regions:
            raise ValueError("regions must be non-empty")
        if len(candidates_per_region) != len(regions):
            raise ValueError(
                f"need one candidate list per region: {len(regions)} regions, "
                f"{len(candidates_per_region)} candidate lists"
            )
        widths = {len(candidates) for candidates in candidates_per_region}
        if widths == {0} or len(widths) != 1:
            raise ValueError(
                "every region needs the same non-zero candidate count, "
                f"got widths {sorted(widths)}"
            )
        sizes = {
            region: evaluator.region_sizes.get(region, 0) for region in regions
        }
        total = sum(sizes.values())
        if total <= 0:
            raise ValueError("design covers no sized regions")
        cost_model = evaluator.cost_model
        params = cost_model.params
        policies: List[Tuple[RegionPolicy, ...]] = []
        labels: List[Tuple[str, ...]] = []
        rates: List[Tuple[RegionOutcomeRates, ...]] = []
        cost: List[Tuple[float, ...]] = []
        cost_low: List[Tuple[float, ...]] = []
        cost_high: List[Tuple[float, ...]] = []
        crashes: List[Tuple[float, ...]] = []
        incorrect: List[Tuple[float, ...]] = []
        less_tested: List[Tuple[bool, ...]] = []
        total_size = 0
        for region, candidates in zip(regions, candidates_per_region):
            size = sizes[region]
            share = size / total
            if size > 0:
                total_size += size
            region_rates = tuple(
                region_outcome_rates(
                    evaluator.profile,
                    region,
                    policy,
                    share,
                    evaluator.error_model,
                    evaluator.error_label,
                )
                for policy in candidates
            )
            policies.append(tuple(candidates))
            labels.append(tuple(policy.describe() for policy in candidates))
            rates.append(region_rates)
            crashes.append(tuple(r.crashes_per_month for r in region_rates))
            incorrect.append(
                tuple(r.incorrect_responses_per_month for r in region_rates)
            )
            less_tested.append(tuple(policy.less_tested for policy in candidates))
            if size > 0:
                cost.append(
                    tuple(
                        size * cost_model.memory_cost_factor(policy)
                        for policy in candidates
                    )
                )
                cost_low.append(
                    tuple(
                        size
                        * cost_model.memory_cost_factor(
                            policy, discount=params.less_tested_discount_low
                        )
                        for policy in candidates
                    )
                )
                cost_high.append(
                    tuple(
                        size
                        * cost_model.memory_cost_factor(
                            policy, discount=params.less_tested_discount_high
                        )
                        for policy in candidates
                    )
                )
            else:
                zeros = (0.0,) * len(candidates)
                cost.append(zeros)
                cost_low.append(zeros)
                cost_high.append(zeros)
        return cls(
            evaluator=evaluator,
            regions=tuple(regions),
            policies=policies,
            labels=labels,
            rates=rates,
            cost=cost,
            cost_low=cost_low,
            cost_high=cost_high,
            crashes=crashes,
            incorrect=incorrect,
            less_tested=less_tested,
            total_size=total_size,
            baseline_cost=total_size * cost_model.baseline_cost_factor,
        )

    @property
    def region_count(self) -> int:
        """Number of regions (assignment digits)."""
        return len(self.regions)

    @property
    def candidate_count(self) -> int:
        """Candidates per region (the digit radix)."""
        return len(self.policies[0])

    @property
    def total_designs(self) -> int:
        """Size of the full assignment space, ``candidates^regions``."""
        return self.candidate_count ** self.region_count

    def digits_of(self, assignment_id: int) -> Tuple[int, ...]:
        """Mixed-radix digits of one assignment id (region 0 first).

        Ids enumerate assignments in the same order as
        ``itertools.product(candidates, repeat=regions)``: the *last*
        region varies fastest.
        """
        radix = self.candidate_count
        digits = []
        for _ in range(self.region_count):
            digits.append(assignment_id % radix)
            assignment_id //= radix
        return tuple(reversed(digits))

    def design_name(self, digits: Sequence[int]) -> str:
        """The scalar optimizer's design name for one assignment."""
        return "+".join(
            self.labels[r][c] for r, c in enumerate(digits)
        )

    def totals_at(self, digits: Sequence[int]) -> Tuple[float, float, float]:
        """(design_cost, crashes, incorrect) sums for one assignment.

        Sequential left-to-right adds in region order — the same
        floating-point evaluation order as the scalar evaluator.
        """
        design_cost = 0.0
        crashes = 0.0
        incorrect = 0.0
        for r, c in enumerate(digits):
            design_cost += self.cost[r][c]
            crashes += self.crashes[r][c]
            incorrect += self.incorrect[r][c]
        return design_cost, crashes, incorrect

    def server_savings_from_cost(self, design_cost: float) -> float:
        """Server cost savings implied by a design-cost sum."""
        memory_savings = 1.0 - design_cost / self.baseline_cost
        return self.evaluator.cost_model.server_cost_savings(memory_savings)

    def availability_from_crash_total(self, crashes: float) -> float:
        """Availability implied by a crash-rate sum."""
        return availability_from_crashes(
            crashes, self.evaluator.availability_params
        )

    def incorrect_per_million_from_total(self, incorrect: float) -> float:
        """Incorrect responses per million queries from a monthly sum."""
        return (
            incorrect / self.evaluator.availability_params.queries_per_month * 1e6
        )

    def metrics_at(self, digits: Sequence[int]) -> DesignMetrics:
        """Materialize the full Table 6 row for one assignment.

        Bit-identical to ``DesignEvaluator.evaluate`` on the equivalent
        :class:`HRMDesign` (same contributions, same operation order).
        """
        policies = {}
        for r, c in enumerate(digits):
            policies[self.regions[r]] = self.policies[r][c]
        design = HRMDesign(name=self.design_name(digits), policies=policies)
        design_cost, crashes, incorrect = self.totals_at(digits)
        memory_savings = 1.0 - design_cost / self.baseline_cost
        savings_range = None
        server_range = None
        if any(self.less_tested[r][c] for r, c in enumerate(digits)):
            low_cost = 0.0
            high_cost = 0.0
            for r, c in enumerate(digits):
                low_cost += self.cost_low[r][c]
                high_cost += self.cost_high[r][c]
            low = 1.0 - low_cost / self.baseline_cost
            high = 1.0 - high_cost / self.baseline_cost
            savings_range = (low, high)
            cost_model = self.evaluator.cost_model
            server_range = (
                cost_model.server_cost_savings(low),
                cost_model.server_cost_savings(high),
            )
        rates = {
            self.regions[r]: self.rates[r][c] for r, c in enumerate(digits)
        }
        params = self.evaluator.availability_params
        return DesignMetrics(
            design=design,
            memory_cost_savings=memory_savings,
            memory_cost_savings_range=savings_range,
            server_cost_savings=self.evaluator.cost_model.server_cost_savings(
                memory_savings
            ),
            server_cost_savings_range=server_range,
            crashes_per_month=crashes,
            availability=availability_from_crashes(crashes, params),
            incorrect_per_million_queries=incorrect / params.queries_per_month * 1e6,
            region_rates=rates,
        )
