"""Controlled memory-error injection (the paper's Algorithm 1a).

:class:`ErrorInjector` emulates the paper's error types against a
simulated address space:

* **single-bit soft** — one random bit of a sampled byte is flipped once;
* **multi-bit soft** — lines 3-4 of Algorithm 1(a) repeated with
  different bit indices within the same 64-bit word;
* **single-/multi-bit hard** — the same patterns installed as stuck-at
  faults that survive overwrites (see :mod:`repro.memory.faults`);
* **correlated footprints** — optional DRAM-geometry-aware patterns
  (whole row/chip) drawn from :class:`~repro.dram.DramFaultModel` for
  the extension experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dram.fault_models import DramFaultModel
from repro.injection.sampler import AddressSampler
from repro.memory.address_space import AddressSpace
from repro.memory.faults import FaultKind, InjectedFault
from repro.memory.regions import Region
from repro.obs.events import SPAN_INJECTION
from repro.obs.trace import NULL_OBSERVER, Observer


@dataclass(frozen=True)
class ErrorSpec:
    """A named error type: kind (soft/hard) and bit multiplicity.

    The ``bits`` count is the number of distinct bit flips injected; for
    multi-bit errors the flips land in the same 64-bit word (adjacent
    cells on the same row), matching how multi-bit DRAM faults manifest.
    """

    kind: FaultKind
    bits: int = 1

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        if self.bits > 64:
            raise ValueError(f"multi-bit spec limited to one word (64), got {self.bits}")

    @property
    def label(self) -> str:
        """Display label, e.g. ``"single-bit soft"``."""
        multiplicity = "single-bit" if self.bits == 1 else f"{self.bits}-bit"
        return f"{multiplicity} {self.kind.value}"


#: The three error types characterized in the paper's Figure 6.
SINGLE_BIT_SOFT = ErrorSpec(FaultKind.SOFT, 1)
SINGLE_BIT_HARD = ErrorSpec(FaultKind.HARD, 1)
MULTI_BIT_HARD = ErrorSpec(FaultKind.HARD, 2)
#: Additional severity point used by the severity-sweep extension.
MULTI_BIT_SOFT = ErrorSpec(FaultKind.SOFT, 2)


@dataclass
class InjectionRecord:
    """Everything about one injection event (for logging/analysis)."""

    spec: ErrorSpec
    faults: List[InjectedFault] = field(default_factory=list)

    @property
    def addresses(self) -> List[int]:
        """Byte addresses affected by this injection."""
        return [fault.addr for fault in self.faults]

    @property
    def anchor_addr(self) -> int:
        """The sampled address the injection was anchored at."""
        if not self.faults:
            raise ValueError("injection record is empty")
        return self.faults[0].addr


def plan_flip_positions(
    space: AddressSpace,
    rng: random.Random,
    spec: ErrorSpec,
    addr: int,
) -> List[Tuple[int, int]]:
    """Choose the (byte address, bit) flips for one injection.

    The single source of truth for the flip-position draw sequence,
    shared by the scalar :class:`ErrorInjector` and the batched
    :class:`~repro.kernels.planner.BatchInjectionPlanner` — both consume
    exactly ``randrange(8)`` followed by one ``sample`` call from
    ``rng``, which is what keeps vectorized profiles bit-identical to
    scalar ones.

    Flips land within the 64-bit word containing the anchor byte,
    clamped to the anchor's region so they never escape into guards; the
    first flip always lands in the anchor byte itself so per-address
    statistics stay meaningful.
    """
    word_base = addr - (addr % 8)
    region_of_addr = space.region_at(addr)
    if region_of_addr is None:
        raise ValueError(f"anchor address 0x{addr:x} is unmapped")
    word_limit = min(word_base + 8, region_of_addr.end)
    word_base = max(word_base, region_of_addr.base)
    anchor_bit = rng.randrange(8)
    positions = [(addr, anchor_bit)]
    available = [
        (byte_addr, bit)
        for byte_addr in range(word_base, word_limit)
        for bit in range(8)
        if (byte_addr, bit) != (addr, anchor_bit)
    ]
    extra = rng.sample(available, min(spec.bits - 1, len(available)))
    positions.extend(extra)
    return positions


class ErrorInjector:
    """Injects error specs into an address space at sampled addresses."""

    def __init__(
        self,
        space: AddressSpace,
        rng: random.Random,
        observer: Observer = NULL_OBSERVER,
        corrected_regions: Optional[frozenset] = None,
    ) -> None:
        self._space = space
        self._rng = rng
        self._observer = observer
        self._corrected_regions = frozenset(corrected_regions or ())
        self.sampler = AddressSampler(space, rng)

    def inject(
        self,
        spec: ErrorSpec,
        addr: Optional[int] = None,
        region: Optional[Region] = None,
        ranges: Optional[List] = None,
    ) -> InjectionRecord:
        """Inject one error of type ``spec``.

        Each injection is wrapped in an ``injection`` tracing span whose
        duration is the injection latency and whose attributes record
        the spec and landed faults (no-op without a configured
        observer).

        Args:
            spec: Error kind and multiplicity.
            addr: Anchor byte address; sampled if not given.
            ranges: Explicit (base, end) live-data spans to sample from
                (preferred; ignored when ``addr`` is given).
            region: Restrict sampling to this region (used when neither
                ``addr`` nor ``ranges`` is given).

        Returns:
            The injection record with all installed faults.
        """
        with self._observer.span(
            SPAN_INJECTION,
            attrs={"kind": spec.kind.value, "bits": spec.bits},
        ) as span:
            record = self._inject(spec, addr, region, ranges)
            span.set(
                anchor_addr=record.anchor_addr, faults=len(record.faults)
            )
        return record

    def _inject(
        self,
        spec: ErrorSpec,
        addr: Optional[int],
        region: Optional[Region],
        ranges: Optional[List],
    ) -> InjectionRecord:
        if addr is None:
            if ranges is not None:
                addr = self.sampler.sample_from_ranges(ranges)
            else:
                addr = self.sampler.sample(region)
        positions = plan_flip_positions(self._space, self._rng, spec, addr)
        return self.apply_positions(spec, positions)

    def apply_positions(
        self, spec: ErrorSpec, positions: List[Tuple[int, int]]
    ) -> InjectionRecord:
        """Install pre-planned flips as faults (no RNG consumption).

        The apply half of the plan/apply split: positions come either
        from this injector's own sampling (:meth:`inject`) or from a
        :class:`~repro.kernels.planner.InjectionPlan` computed ahead of
        the whole trial shard.

        Single-bit errors landing in a region whose codec corrects them
        (``corrected_regions``) are installed as *virtual* faults: the
        event is tracked and consumption counted, but memory is never
        corrupted — modelling in-line correction exactly. Multi-bit
        errors exceed single-bit codecs' correction capability and are
        installed raw.
        """
        record = InjectionRecord(spec=spec)
        corrected = (
            self._corrected_regions
            and len(positions) == 1
            and spec.kind in (FaultKind.SOFT, FaultKind.HARD)
        )
        for byte_addr, bit in positions:
            if corrected:
                region = self._space.region_at(byte_addr)
                if region is not None and region.name in self._corrected_regions:
                    fault = self._space.track_virtual_fault(
                        byte_addr, bit, spec.kind
                    )
                    record.faults.append(fault)
                    continue
            if spec.kind is FaultKind.SOFT:
                fault = self._space.inject_soft_flip(byte_addr, bit)
            else:
                fault = self._space.inject_hard_fault(byte_addr, bit)
            record.faults.append(fault)
        return record

    def inject_planned(
        self, spec: ErrorSpec, positions: List[Tuple[int, int]]
    ) -> InjectionRecord:
        """Inject pre-planned flips, wrapped in the same tracing span.

        Emits a span identical in shape to :meth:`inject` so vectorized
        campaigns trace exactly like scalar ones.
        """
        with self._observer.span(
            SPAN_INJECTION,
            attrs={"kind": spec.kind.value, "bits": spec.bits},
        ) as span:
            record = self.apply_positions(spec, positions)
            span.set(
                anchor_addr=record.anchor_addr, faults=len(record.faults)
            )
        return record

    def inject_footprint(self, model: DramFaultModel, scale_to_space: bool = True) -> InjectionRecord:
        """Inject a geometry-correlated fault footprint (extension).

        Draws a footprint from ``model`` (whose geometry is typically far
        larger than the simulated space) and, when ``scale_to_space`` is
        set, maps each footprint address onto the mapped portion of this
        space by modular folding — preserving the footprint's spatial
        *pattern density* while landing inside real application data.
        """
        footprint = model.draw(self._rng)
        record = InjectionRecord(spec=ErrorSpec(footprint.kind, 1))
        mapped = self._space.mapped_ranges()
        total_mapped = sum(end - base for base, end in mapped)
        for raw_addr, bit in zip(footprint.addresses, footprint.bits):
            addr = raw_addr
            if scale_to_space:
                offset = raw_addr % total_mapped
                for base, end in mapped:
                    span = end - base
                    if offset < span:
                        addr = base + offset
                        break
                    offset -= span
            if footprint.kind is FaultKind.SOFT:
                fault = self._space.inject_soft_flip(addr, bit)
            else:
                fault = self._space.inject_hard_fault(addr, bit)
            record.faults.append(fault)
        return record
