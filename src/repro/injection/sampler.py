"""Address sampling — the paper's ``getMappedAddr()`` (Algorithm 1a, line 1).

Selects valid byte-aligned addresses from an application's mapped
memory, either uniformly over all mapped bytes (which automatically
weights regions by size, as the paper's sampling does) or restricted to
one region (for the per-region characterizations of Figures 4-6).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.memory.address_space import AddressSpace
from repro.memory.regions import Region, RegionKind


class AddressSampler:
    """Draws sample addresses from the mapped regions of a space."""

    def __init__(self, space: AddressSpace, rng: random.Random) -> None:
        self._space = space
        self._rng = rng

    def sample(self, region: Optional[Region] = None) -> int:
        """Return one mapped byte address.

        Args:
            region: Restrict sampling to this region; None samples over
                all mapped bytes (size-weighted across regions).
        """
        if region is not None:
            return region.base + self._rng.randrange(region.size)
        regions = self._space.regions
        weights = [candidate.size for candidate in regions]
        chosen = self._rng.choices(regions, weights=weights, k=1)[0]
        return chosen.base + self._rng.randrange(chosen.size)

    def sample_from_ranges(self, ranges: Sequence[Tuple[int, int]]) -> int:
        """Sample one address from explicit (base, end) spans, size-weighted.

        Used with :meth:`repro.apps.base.Workload.sample_ranges` so
        injections target live application data instead of free space.

        Raises:
            ValueError: for empty or degenerate spans.
        """
        spans = [(base, end) for base, end in ranges if end > base]
        if not spans:
            raise ValueError("sample_from_ranges requires at least one non-empty span")
        weights = [end - base for base, end in spans]
        base, end = self._rng.choices(spans, weights=weights, k=1)[0]
        return base + self._rng.randrange(end - base)

    def sample_many(self, count: int, region: Optional[Region] = None) -> List[int]:
        """Return ``count`` sample addresses (with replacement)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.sample(region) for _ in range(count)]

    def sample_unique(self, count: int, region: Optional[Region] = None) -> List[int]:
        """Return ``count`` distinct addresses.

        Raises:
            ValueError: if the region cannot supply that many addresses.
        """
        capacity = region.size if region is not None else sum(
            candidate.size for candidate in self._space.regions
        )
        if count > capacity:
            raise ValueError(
                f"cannot sample {count} unique addresses from {capacity} bytes"
            )
        seen: set = set()
        result: List[int] = []
        while len(result) < count:
            addr = self.sample(region)
            if addr not in seen:
                seen.add(addr)
                result.append(addr)
        return result

    def sample_per_region(
        self, total: int, kinds: Optional[Sequence[RegionKind]] = None
    ) -> dict:
        """Sample ``total`` addresses split across regions by size.

        Mirrors the paper's Figure 5(b) methodology ("the number of
        sampled addresses in each memory region roughly proportional to
        the size of that region"), with every region receiving at least
        one sample.

        Returns:
            Mapping of region name to list of sampled addresses.
        """
        regions = [
            region
            for region in self._space.regions
            if kinds is None or region.kind in kinds
        ]
        if not regions:
            raise ValueError("no regions match the requested kinds")
        total_size = sum(region.size for region in regions)
        plan = {}
        for region in regions:
            share = max(1, round(total * region.size / total_size))
            plan[region.name] = self.sample_many(share, region)
        return plan
