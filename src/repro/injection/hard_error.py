"""The paper's original hard-error emulation: periodic re-application.

The paper emulates hard errors by checking every 30 ms whether the
erroneous byte has been overwritten and, if so, re-applying the flip.
The library's default hard-fault mechanism is the stuck-at overlay in
:mod:`repro.memory.faults`, which is the limit of this process (zero
re-application latency). :class:`PeriodicReapplier` implements the
paper's original scheme so the two can be compared — the
``bench_ablation_hard_fault`` benchmark quantifies how much tolerance the
30 ms window adds (writes landing inside the window are temporarily
honoured, slightly *under*-estimating vulnerability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.memory.address_space import AddressSpace


@dataclass
class _StuckBit:
    addr: int
    bit: int
    stuck_value: int


@dataclass
class PeriodicReapplier:
    """Re-applies hard-error bit values every ``period`` logical time units.

    Attributes:
        space: The address space being corrupted.
        period: Logical-time interval between checks — the analogue of
            the paper's 30 ms (default 30 time units; the workloads
            advance the clock by ~1 unit per memory access).
    """

    space: AddressSpace
    period: int = 30
    reapplications: int = 0
    _bits: List[_StuckBit] = field(default_factory=list)
    _last_check: int = 0

    def install(self, addr: int, bit: int) -> None:
        """Emulate a hard error at (addr, bit): flip now, re-apply later."""
        current = self.space.peek(addr)[0]
        stuck_value = 1 - ((current >> bit) & 1)
        self.space.poke(addr, bytes(((current ^ (1 << bit)),)))
        self._bits.append(_StuckBit(addr=addr, bit=bit, stuck_value=stuck_value))
        self._last_check = self.space.time

    def maybe_reapply(self) -> int:
        """Re-apply drifted bits if a period elapsed; returns fix count.

        Call this from the experiment driver between operations — it is
        the polling loop of the paper's emulation framework.
        """
        now = self.space.time
        if now - self._last_check < self.period:
            return 0
        self._last_check = now
        fixed = 0
        for stuck in self._bits:
            current = self.space.peek(stuck.addr)[0]
            observed = (current >> stuck.bit) & 1
            if observed != stuck.stuck_value:
                self.space.poke(
                    stuck.addr, bytes(((current ^ (1 << stuck.bit)),))
                )
                fixed += 1
        self.reapplications += fixed
        return fixed

    def clear(self) -> None:
        """Forget all emulated hard errors (does not undo flips)."""
        self._bits.clear()
