"""Error-injection framework (paper §IV-A)."""

from repro.injection.hard_error import PeriodicReapplier
from repro.injection.injector import (
    MULTI_BIT_HARD,
    MULTI_BIT_SOFT,
    SINGLE_BIT_HARD,
    SINGLE_BIT_SOFT,
    ErrorInjector,
    ErrorSpec,
    InjectionRecord,
)
from repro.injection.sampler import AddressSampler

__all__ = [
    "PeriodicReapplier",
    "MULTI_BIT_HARD",
    "MULTI_BIT_SOFT",
    "SINGLE_BIT_HARD",
    "SINGLE_BIT_SOFT",
    "ErrorInjector",
    "ErrorSpec",
    "InjectionRecord",
    "AddressSampler",
]
