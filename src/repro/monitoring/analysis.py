"""Analyses over monitoring results: safe ratios and write intervals.

Bridges the raw event streams produced by
:class:`~repro.monitoring.monitor.AccessMonitor` to the paper's derived
quantities: per-region safe-ratio distributions (Figure 5b) and
page-level write-interval statistics feeding the explicit-recoverability
classification (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.safe_ratio import (
    SafeRatioSample,
    ratio_histogram,
    region_safe_ratio,
    safe_ratio_samples,
)
from repro.monitoring.monitor import MonitoringResult
from repro.utils.stats import SampleSummary
from repro.utils.timescale import TimeScale

__all__ = [
    "TimeScale",
    "RegionSafeRatioReport",
    "safe_ratio_report",
    "PageWriteInterval",
    "page_write_intervals",
]


@dataclass
class RegionSafeRatioReport:
    """Figure 5(b)-style summary for one region."""

    region: str
    samples: List[SafeRatioSample]
    summary: Optional[SampleSummary]
    histogram: List[int]

    @property
    def mean_safe_ratio(self) -> Optional[float]:
        """Average safe ratio of referenced sampled addresses."""
        return self.summary.mean if self.summary else None


def safe_ratio_report(
    result: MonitoringResult, bins: int = 10
) -> Dict[str, RegionSafeRatioReport]:
    """Compute per-region safe-ratio distributions from a monitor run."""
    reports: Dict[str, RegionSafeRatioReport] = {}
    regions = sorted(set(result.region_of_addr.values()))
    for region in regions:
        traces = result.traces_for_region(region)
        samples = safe_ratio_samples(traces, result.start_time)
        reports[region] = RegionSafeRatioReport(
            region=region,
            samples=samples,
            summary=region_safe_ratio(samples),
            histogram=ratio_histogram(samples, bins=bins),
        )
    return reports


@dataclass(frozen=True)
class PageWriteInterval:
    """Average interval between writes to one page."""

    page: int
    write_count: int
    mean_interval_units: Optional[float]  # None = written at most once

    def mean_interval_minutes(self, scale: TimeScale) -> Optional[float]:
        """Average write interval in simulated minutes."""
        if self.mean_interval_units is None:
            return None
        return scale.minutes(self.mean_interval_units)


def page_write_intervals(
    page_stats: Dict[int, Dict[str, int]]
) -> List[PageWriteInterval]:
    """Derive per-page mean write intervals from raw write statistics."""
    intervals = []
    for page, stats in page_stats.items():
        count = stats["count"]
        if count >= 2:
            mean = (stats["last_write"] - stats["first_write"]) / (count - 1)
        else:
            mean = None
        intervals.append(
            PageWriteInterval(page=page, write_count=count, mean_interval_units=mean)
        )
    return intervals
