"""Access monitoring over sampled addresses (paper Algorithm 1b).

:class:`AccessMonitor` is the software-watchpoint counterpart of the
paper's debugger framework: it samples addresses (proportionally to
region sizes), installs watchpoints, runs a caller-provided workload
driver, and returns the per-address event streams for safe-ratio and
recoverability analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.injection.sampler import AddressSampler
from repro.memory.address_space import AddressSpace
from repro.memory.regions import Region
from repro.memory.tracing import AccessEvent, AccessTrace
from repro.obs.events import SPAN_MONITOR
from repro.obs.trace import NULL_OBSERVER, Observer


@dataclass
class MonitoringResult:
    """Traces gathered by one monitoring session."""

    start_time: int
    end_time: int
    traces: Dict[int, List[AccessEvent]] = field(default_factory=dict)
    region_of_addr: Dict[int, str] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Logical time covered by the session."""
        return self.end_time - self.start_time

    def addresses_in_region(self, region_name: str) -> List[int]:
        """Sampled addresses belonging to ``region_name``."""
        return [
            addr
            for addr, name in self.region_of_addr.items()
            if name == region_name
        ]

    def traces_for_region(self, region_name: str) -> Dict[int, List[AccessEvent]]:
        """Event streams restricted to one region's sampled addresses."""
        return {
            addr: self.traces[addr]
            for addr in self.addresses_in_region(region_name)
        }


class AccessMonitor:
    """Samples addresses, watches them, and records their access events."""

    def __init__(
        self,
        space: AddressSpace,
        rng: random.Random,
        observer: Observer = NULL_OBSERVER,
    ) -> None:
        self._space = space
        self._rng = rng
        self._observer = observer
        self._sampler = AddressSampler(space, rng)

    def monitor(
        self,
        driver: Callable[[], None],
        sample_count: int = 256,
        addresses: Optional[Sequence[int]] = None,
        regions: Optional[Sequence[Region]] = None,
    ) -> MonitoringResult:
        """Run ``driver()`` while watching sampled addresses.

        Args:
            driver: Callable that exercises the application (e.g. replays
                a client workload).
            sample_count: Number of addresses to sample when explicit
                ``addresses`` are not given.
            addresses: Exact addresses to watch (overrides sampling).
            regions: Restrict sampling to these regions (split
                proportionally to size).

        Returns:
            The per-address event streams and session time bounds.
        """
        if addresses is None:
            if regions:
                addresses = []
                total = sum(region.size for region in regions)
                for region in regions:
                    share = max(1, round(sample_count * region.size / total))
                    addresses.extend(self._sampler.sample_many(share, region))
            else:
                addresses = self._sampler.sample_many(sample_count)
        with self._observer.span(
            SPAN_MONITOR, attrs={"mode": "watchpoints"}
        ) as span:
            trace = AccessTrace()
            watched: List[int] = []
            for addr in addresses:
                if addr not in watched:
                    trace.attach(self._space, addr)
                    watched.append(addr)
            start_time = self._space.time
            try:
                driver()
            finally:
                trace.detach_all()
            end_time = self._space.time
            result = MonitoringResult(start_time=start_time, end_time=end_time)
            grouped = trace.by_address()
            events = 0
            for addr in watched:
                result.traces[addr] = grouped.get(addr, [])
                events += len(result.traces[addr])
                region = self._space.region_at(addr)
                result.region_of_addr[addr] = region.name if region else "?"
            span.set(
                watched=len(watched),
                events=events,
                duration_units=result.duration,
            )
        return result

    def monitor_page_writes(self, driver: Callable[[], None]) -> Dict[int, Dict[str, int]]:
        """Run ``driver()`` with page-granularity write tracking enabled.

        Returns the per-page write statistics used by the explicit-
        recoverability analysis (write interval >= 5 minutes on average).
        """
        with self._observer.span(
            SPAN_MONITOR, attrs={"mode": "page_writes"}
        ) as span:
            self._space.enable_page_write_tracking()
            try:
                driver()
            finally:
                self._space.disable_page_write_tracking()
            stats = self._space.page_write_stats()
            span.set(pages=len(stats))
        return stats
