"""Memory access monitoring framework (paper §IV-B)."""

from repro.monitoring.analysis import (
    PageWriteInterval,
    RegionSafeRatioReport,
    TimeScale,
    page_write_intervals,
    safe_ratio_report,
)
from repro.monitoring.monitor import AccessMonitor, MonitoringResult

__all__ = [
    "PageWriteInterval",
    "RegionSafeRatioReport",
    "TimeScale",
    "page_write_intervals",
    "safe_ratio_report",
    "AccessMonitor",
    "MonitoringResult",
]
