"""Memory access monitoring framework (paper §IV-B).

Also re-exports the campaign progress/throughput instrumentation
(:class:`CampaignMetrics`, :class:`ProgressEvent`) so callers can watch
characterization campaigns — serial or parallel — alongside memory
accesses.
"""

from repro.obs.progress import CampaignMetrics, ProgressEvent, WorkerTiming
from repro.monitoring.analysis import (
    PageWriteInterval,
    RegionSafeRatioReport,
    TimeScale,
    page_write_intervals,
    safe_ratio_report,
)
from repro.monitoring.monitor import AccessMonitor, MonitoringResult

__all__ = [
    "PageWriteInterval",
    "RegionSafeRatioReport",
    "TimeScale",
    "page_write_intervals",
    "safe_ratio_report",
    "AccessMonitor",
    "MonitoringResult",
    "CampaignMetrics",
    "ProgressEvent",
    "WorkerTiming",
]
