"""Heterogeneous-reliability design-space exploration (paper §VI).

Measures WebSearch's vulnerability, then evaluates the paper's five
Table 6 design points against it and runs the automated optimizer to
find the cheapest design meeting a target single-server availability.

Run:  python examples/design_space_exploration.py [--target 0.999]
"""

from __future__ import annotations

import argparse

from repro import (
    CampaignConfig,
    CharacterizationCampaign,
    DesignEvaluator,
    MappingOptimizer,
    WebSearch,
    paper_design_points,
    tolerable_errors_per_month,
)
from repro.core.recoverability import analyze_recoverability
from repro.injection import SINGLE_BIT_HARD


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", type=float, default=0.999)
    parser.add_argument("--trials", type=int, default=40)
    arguments = parser.parse_args()

    # 1. Characterize (hard errors: the recurring kind that dominates
    #    field error rates).
    workload = WebSearch(vocabulary_size=800, doc_count=600, query_count=300)
    campaign = CharacterizationCampaign(
        workload,
        config=CampaignConfig(trials_per_cell=arguments.trials, queries_per_trial=120),
    )
    print("measuring WebSearch vulnerability...")
    campaign.prepare()
    profile = campaign.run(specs=(SINGLE_BIT_HARD,))

    # 2. Measure recoverability — it bounds what Par+R can absorb.
    recovery = analyze_recoverability(workload, queries=200)
    fractions = {name: entry.best_fraction for name, entry in recovery.items()}
    print(f"recoverable fractions: { {k: round(v, 2) for k, v in fractions.items()} }")

    # 3. Evaluate the paper's five design points.
    evaluator = DesignEvaluator(profile, error_label="single-bit hard")
    print(f"\n{'design':<18} {'mem save':>20} {'srv save':>9} "
          f"{'crashes/mo':>11} {'avail':>9} {'inc/M':>8}")
    for design in paper_design_points(profile.regions(), fractions):
        metrics = evaluator.evaluate(design)
        if metrics.memory_cost_savings_range:
            low, high = metrics.memory_cost_savings_range
            memory = f"{metrics.memory_cost_savings:.1%} ({low:.1%}-{high:.1%})"
        else:
            memory = f"{metrics.memory_cost_savings:.1%}"
        print(
            f"{design.name:<18} {memory:>20} "
            f"{metrics.server_cost_savings:>8.1%} "
            f"{metrics.crashes_per_month:>10.1f} "
            f"{metrics.availability:>8.3%} "
            f"{metrics.incorrect_per_million_queries:>7.1f}"
        )

    # 4. Let the optimizer search the whole space.
    optimizer = MappingOptimizer(evaluator, recoverable_fractions=fractions)
    result = optimizer.search(availability_target=arguments.target)
    if result.found:
        best = result.best
        print(
            f"\noptimizer ({result.evaluated} designs): best for "
            f">={arguments.target:.2%} availability:"
        )
        print(f"  {best.design.name}")
        print(
            f"  server savings {best.server_cost_savings:.1%}, "
            f"availability {best.availability:.3%}, "
            f"{best.incorrect_per_million_queries:.1f} incorrect/M"
        )
    else:
        print(f"\nno design meets {arguments.target:.2%}")

    # 5. Figure 8: how many errors/month could we tolerate unprotected?
    print("\ntolerable errors/month with no protection:")
    for target in (0.9999, 0.999, 0.99):
        tolerable = tolerable_errors_per_month(
            profile, target, "single-bit hard"
        )
        print(f"  {target:.2%}: {tolerable:,.0f}")


if __name__ == "__main__":
    main()
