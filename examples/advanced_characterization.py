"""Advanced characterization: the paper's future-work items, runnable.

Demonstrates four extensions beyond the paper's evaluation, all on one
WebSearch instance:

1. **lightweight estimation** — masking predicted from monitoring alone
   (no injection), validated bound on vulnerability;
2. **correlated failure modes** — whole rows/chips failing at once;
3. **disturbance errors** — access-pattern-dependent victim flips;
4. **structure granularity** — per-data-structure vulnerability, the
   basis for ECC-on-metadata-only designs.

Run:  python examples/advanced_characterization.py
"""

from __future__ import annotations

import random

from repro import WebSearch
from repro.core.campaign import CampaignConfig, CharacterizationCampaign
from repro.core.disturbance import DISTURBANCE_LABEL, characterize_disturbance
from repro.core.failure_modes import characterize_failure_modes, mode_summary
from repro.core.lightweight import estimate_masking
from repro.dram.fault_models import FailureMode
from repro.injection import SINGLE_BIT_HARD


def main() -> None:
    workload = WebSearch(vocabulary_size=600, doc_count=400, query_count=200)
    workload.build()
    workload.checkpoint()

    # 1. Injection-free masking estimate (one monitored session).
    print("== lightweight (injection-free) masking estimate ==")
    estimates = estimate_masking(
        workload, queries=120, samples_per_region=80, rng=random.Random(1)
    )
    for region, estimate in sorted(estimates.items()):
        print(
            f"{region:<8} never-accessed {estimate.never_accessed_fraction:>6.1%}  "
            f"overwrite-masked {estimate.masked_overwrite_fraction:>6.1%}  "
            f"vulnerability <= {estimate.vulnerability_upper_bound:>6.1%}"
        )

    # 2. Correlated failure modes.
    print("\n== correlated failure modes (20 trials each) ==")
    footprint_profile = characterize_failure_modes(
        workload,
        trials_per_mode=20,
        queries_per_trial=80,
        modes=(FailureMode.SINGLE_BIT, FailureMode.ROW, FailureMode.CHIP),
    )
    for mode, row in sorted(mode_summary(footprint_profile).items()):
        print(
            f"{mode:<12} crash {row['crash']:>6.1%}  incorrect "
            f"{row['incorrect']:>6.1%}  masked {row['masked']:>6.1%}"
        )

    # 3. Disturbance (access-pattern-dependent) errors.
    print("\n== disturbance errors (private region, 20 trials) ==")
    disturbance = characterize_disturbance(
        workload,
        trials_per_region=20,
        queries_per_trial=80,
        flip_probability=0.25,
        regions=["private"],
    )
    cell = disturbance.cells[("private", DISTURBANCE_LABEL)]
    print(
        f"private  crash {cell.crashes / cell.trials:>6.1%}  incorrect "
        f"{cell.incorrect_trials / cell.trials:>6.1%}  masked "
        f"{cell.masked_trials / cell.trials:>6.1%}"
    )

    # 4. Structure-granularity characterization.
    print("\n== per-data-structure vulnerability (hard errors, 15 trials) ==")
    campaign = CharacterizationCampaign(
        workload, config=CampaignConfig(trials_per_cell=15, queries_per_trial=80))
    campaign.prepare()
    structures = workload.data_structure_ranges()
    profile = campaign.run_custom_cells(structures, specs=(SINGLE_BIT_HARD,))
    for name in sorted(structures):
        cell = profile.cells[(name, "single-bit hard")]
        print(
            f"{name:<16} crash {cell.crashes / cell.trials:>6.1%}  "
            f"incorrect {cell.incorrect_trials / cell.trials:>6.1%}"
        )
    print(
        "\nPointer-bearing metadata (posting_headers, stack_frames) is "
        "where ECC buys crashes; payload only buys correctness."
    )


if __name__ == "__main__":
    main()
