"""Plug a user-defined application into the characterization framework.

Implements a small bank-ledger service on simulated memory — an example
of an application that is NOT error-tolerant (every stored value is
load-bearing and read back with a checksum) — and characterizes it with
the same campaign used for the paper's workloads. Contrast its profile
with WebSearch's to see why one-size-fits-all reliability is wasteful
for some applications and indispensable for others.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

import struct
from typing import Hashable

from repro import CampaignConfig, CharacterizationCampaign
from repro.apps.base import Workload, WorkloadError
from repro.apps.websearch.corpus import fnv1a64
from repro.injection import SINGLE_BIT_HARD, SINGLE_BIT_SOFT
from repro.memory import AddressSpace, HeapAllocator, StackManager, standard_layout
from repro.utils.timescale import TimeScale

ACCOUNT_SIZE = 16  # u64 balance, u32 checksum, u32 pad


class LedgerChecksumError(WorkloadError):
    """A stored balance failed its checksum — detected corruption."""


class BankLedger(Workload):
    """A checksummed in-memory account ledger (error-intolerant)."""

    name = "BankLedger"

    def __init__(self, accounts: int = 500, ops: int = 400) -> None:
        super().__init__()
        self._account_count = accounts
        self._op_count = ops
        self._table_addr = 0

    def build(self) -> None:
        layout = standard_layout(heap_size=65536, stack_size=8192)
        self._space = AddressSpace(layout)
        allocator = HeapAllocator(self._space, self._space.region_named("heap"))
        self._allocator = allocator
        self._stack = StackManager(self._space, self._space.region_named("stack"))
        self._table_addr = allocator.malloc(self._account_count * ACCOUNT_SIZE)
        for account in range(self._account_count):
            self._store_balance(account, 1000 + account)

    def _account_addr(self, account: int) -> int:
        return self._table_addr + account * ACCOUNT_SIZE

    def _store_balance(self, account: int, balance: int) -> None:
        addr = self._account_addr(account)
        payload = struct.pack("<Q", balance)
        checksum = fnv1a64(payload) & 0xFFFFFFFF
        self.space.write(addr, payload + struct.pack("<II", checksum, 0))

    def _load_balance(self, account: int) -> int:
        raw = self.space.read(self._account_addr(account), ACCOUNT_SIZE)
        balance, checksum, _pad = struct.unpack("<QII", raw)
        if fnv1a64(raw[:8]) & 0xFFFFFFFF != checksum:
            # Software detection: the ledger refuses corrupt data. This is
            # the "software correction" hook — with a backing store it
            # could recover instead of failing.
            raise LedgerChecksumError(f"account {account} corrupt")
        return balance

    @property
    def query_count(self) -> int:
        return self._op_count

    def execute(self, query_index: int) -> Hashable:
        # Deterministic op stream: transfer between two accounts, then
        # audit a third. Every operation reads checksummed state.
        frame = self._stack.push(32)
        try:
            source = (query_index * 7) % self._account_count
            target = (query_index * 13 + 1) % self._account_count
            audit = (query_index * 29 + 2) % self._account_count
            self.space.write_u32(frame.slot(0), source)
            self.space.write_u32(frame.slot(4), target)
            amount = 1 + query_index % 10
            source_balance = self._load_balance(self.space.read_u32(frame.slot(0)))
            target_balance = self._load_balance(self.space.read_u32(frame.slot(4)))
            if source_balance >= amount and source != target:
                self._store_balance(source, source_balance - amount)
                self._store_balance(target, target_balance + amount)
            return ("audit", audit, self._load_balance(audit))
        finally:
            self._stack.pop()

    @property
    def time_scale(self) -> TimeScale:
        return TimeScale(units_per_minute=1200)

    def sample_ranges(self, region):
        if region.name == "heap":
            return self._allocator.live_spans()
        if region.name == "stack":
            return self.active_stack_window(region, 64)
        return [(region.base, region.end)]


def main() -> None:
    campaign = CharacterizationCampaign(
        BankLedger(),
        config=CampaignConfig(trials_per_cell=40, queries_per_trial=150),
    )
    print("characterizing the custom BankLedger workload...")
    campaign.prepare()
    profile = campaign.run(specs=(SINGLE_BIT_SOFT, SINGLE_BIT_HARD))

    print(f"\n{'region':<8} {'error type':<16} {'crash':>7} {'incorrect':>10} {'masked':>7}")
    for (region, label), cell in sorted(profile.cells.items()):
        print(
            f"{region:<8} {label:<16} {cell.crashes / cell.trials:>6.1%} "
            f"{cell.incorrect_trials / cell.trials:>9.1%} "
            f"{cell.masked_trials / cell.trials:>6.1%}"
        )
    print(
        "\nChecksums convert silent corruption into detected failures "
        "(high incorrect/failed rate, low silent-wrong-answer rate):"
    )
    for label in profile.error_labels():
        aggregate = profile.app_level(label)
        visible = (aggregate.crashes + aggregate.incorrect_trials) / aggregate.trials
        print(f"  {label}: a resident error is visible to clients in "
              f"{visible:.0%} of sessions")
    print(
        "\nA ledger like this belongs in ECC memory; the HRM point is "
        "that WebSearch's index does not."
    )


if __name__ == "__main__":
    main()
