"""Quickstart: inject a memory error into a running application.

Builds the WebSearch workload on simulated memory, injects one soft and
one hard single-bit error, replays the client workload, and classifies
each outcome with the paper's Figure 1 taxonomy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import SINGLE_BIT_HARD, SINGLE_BIT_SOFT, ClientDriver, WebSearch
from repro.core.taxonomy import classify_outcome
from repro.injection import ErrorInjector


def main() -> None:
    # 1. Build a small search application. All of its state — the
    #    read-only index (private region), ranking tables and query cache
    #    (heap), per-query scratch (stack) — lives in simulated memory.
    app = WebSearch(vocabulary_size=600, doc_count=400, query_count=200)
    app.build()
    app.checkpoint()
    print(f"built {app.name}: regions = {app.region_sizes()}")

    # 2. Record fault-free golden responses.
    golden = app.golden_responses()
    driver = ClientDriver(app, golden)
    print(f"golden run: {len(golden)} queries")

    rng = random.Random(2024)
    for spec in (SINGLE_BIT_SOFT, SINGLE_BIT_HARD):
        # 3. Restart pristine, inject one error at a sampled live address.
        app.reset()
        injector = ErrorInjector(app.space, rng)
        region = app.space.region_named("private")
        record = injector.inject(spec, ranges=app.sample_ranges(region))
        fault = record.faults[0]
        print(
            f"\ninjected {spec.label} at 0x{fault.addr:x} bit {fault.bit} "
            f"({app.space.region_at(fault.addr).name} region)"
        )

        # 4. Replay the client workload and observe the consequences.
        report = driver.run(range(150))
        reads, overwritten = app.space.fault_consumption(fault.addr)
        outcome = classify_outcome(report, reads > 0, overwritten)

        print(
            f"  queries: {report.attempted} attempted, {report.correct} "
            f"correct, {report.incorrect} incorrect, {report.failed} failed"
        )
        print(f"  fault consumed {reads} times, overwritten: {overwritten}")
        print(f"  => taxonomy outcome: {outcome}")


if __name__ == "__main__":
    main()
