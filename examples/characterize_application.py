"""Characterize an application's memory-error tolerance (paper §III-V).

Runs a scaled-down version of the paper's characterization campaign on
the Memcached-like workload: per-region, per-error-type crash
probabilities and incorrectness rates, the safe-ratio analysis of
Figure 5(b), and the recoverability analysis of Table 5.

Run:  python examples/characterize_application.py  [--app websearch|memcached|graphlab]
"""

from __future__ import annotations

import argparse
import random

from repro import CampaignConfig, CharacterizationCampaign
from repro.apps import GraphMining, KVStoreWorkload, WebSearch
from repro.core.recoverability import (
    analyze_recoverability,
    overall_recoverability,
)
from repro.injection import SINGLE_BIT_HARD, SINGLE_BIT_SOFT
from repro.monitoring import AccessMonitor, safe_ratio_report

APPS = {
    "websearch": lambda: WebSearch(vocabulary_size=600, doc_count=400, query_count=200),
    "memcached": lambda: KVStoreWorkload(key_count=1000, op_count=300),
    "graphlab": lambda: GraphMining(vertex_count=300, edges_per_vertex=8, iterations=4),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", choices=sorted(APPS), default="memcached")
    parser.add_argument("--trials", type=int, default=30)
    arguments = parser.parse_args()

    workload = APPS[arguments.app]()
    campaign = CharacterizationCampaign(
        workload,
        config=CampaignConfig(trials_per_cell=arguments.trials, queries_per_trial=100),
    )
    print(f"characterizing {arguments.app} ({arguments.trials} trials/cell)...")
    campaign.prepare()
    profile = campaign.run(specs=(SINGLE_BIT_SOFT, SINGLE_BIT_HARD))

    print(f"\n== vulnerability profile: {profile.app} ==")
    header = (
        f"{'region':<8} {'error type':<16} {'P(crash)':>9} "
        f"{'P(incorrect)':>13} {'masked':>7}"
    )
    print(header)
    for (region, label), cell in sorted(profile.cells.items()):
        print(
            f"{region:<8} {label:<16} "
            f"{cell.crashes / cell.trials:>8.1%} "
            f"{cell.incorrect_trials / cell.trials:>12.1%} "
            f"{cell.masked_trials / cell.trials:>6.1%}"
        )
    for label in profile.error_labels():
        print(
            f"app-level P(crash | {label}): "
            f"{profile.crash_probability_per_error(label):.3%}"
        )

    # Safe-ratio analysis (Figure 5b's mechanism).
    print("\n== safe ratios (sampled addresses) ==")
    workload.reset()
    monitor = AccessMonitor(workload.space, random.Random(7))
    addresses = []
    for region in workload.space.regions:
        spans = workload.sample_ranges(region)
        rng = random.Random(len(region.name))
        for _ in range(40):
            base, end = rng.choice(spans)
            addresses.append(base + rng.randrange(end - base))

    def drive():
        for index in range(120):
            workload.execute(index % workload.query_count)

    reports = safe_ratio_report(monitor.monitor(drive, addresses=addresses))
    for region, entry in sorted(reports.items()):
        mean = entry.mean_safe_ratio
        print(
            f"{region:<8} mean safe ratio: "
            f"{mean:.2f}" if mean is not None else f"{region:<8} (unreferenced)"
        )

    # Recoverability (Table 5's analysis).
    print("\n== recoverability ==")
    workload.reset()
    recovery = analyze_recoverability(workload, queries=150)
    for region, entry in recovery.items():
        print(
            f"{region:<8} implicit: {entry.implicit_fraction:>6.1%}  "
            f"explicit: {entry.explicit_fraction:>6.1%}"
        )
    overall = overall_recoverability(recovery)
    print(
        f"overall  implicit: {overall.implicit_fraction:>6.1%}  "
        f"explicit: {overall.explicit_fraction:>6.1%}"
    )


if __name__ == "__main__":
    main()
