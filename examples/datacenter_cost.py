"""Datacenter-scale cost and availability modeling (paper §I + §VI).

Takes a measured vulnerability profile, prices the HRM design points for
a server SKU, scales to fleet TCO, and cross-checks the analytic
availability numbers with the Monte-Carlo simulator — including the
distribution of bad months that the analytic model cannot see.

Run:  python examples/datacenter_cost.py
"""

from __future__ import annotations

from repro import (
    CampaignConfig,
    CharacterizationCampaign,
    DesignEvaluator,
    WebSearch,
    paper_design_points,
)
from repro.cluster import (
    AvailabilitySimulator,
    ServerConfig,
    TcoModel,
    server_cost_with_design,
)
from repro.core.cost_model import CostModel
from repro.injection import SINGLE_BIT_HARD


def main() -> None:
    print("measuring WebSearch vulnerability (scaled-down campaign)...")
    workload = WebSearch(vocabulary_size=800, doc_count=600, query_count=300)
    campaign = CharacterizationCampaign(
        workload, config=CampaignConfig(trials_per_cell=40, queries_per_trial=120))
    campaign.prepare()
    profile = campaign.run(specs=(SINGLE_BIT_HARD,))

    server = ServerConfig()
    cost_model = CostModel()
    tco = TcoModel()
    evaluator = DesignEvaluator(profile, error_label="single-bit hard")
    baseline_cost = server.base_cost_dollars

    print(
        f"\nserver SKU: {server.name} @ ${server.base_cost_dollars:,.0f} "
        f"(DRAM ${server.dram_cost_dollars:,.0f})"
    )
    print(
        f"fleet: {tco.params.server_count:,} servers, "
        f"{tco.params.amortization_years:.0f}-year amortization\n"
    )
    print(
        f"{'design':<18} {'$/server':>10} {'fleet TCO save/yr':>18} "
        f"{'analytic avail':>15} {'MC p5 month':>12}"
    )
    for design in paper_design_points(profile.regions()):
        metrics = evaluator.evaluate(design)
        dollars = server_cost_with_design(
            server,
            cost_model,
            design.policies,
            {r: profile.region_sizes.get(r, 0) for r in design.policies},
        )
        breakdown = tco.breakdown(baseline_cost)
        savings_fraction = tco.tco_savings_fraction(baseline_cost, dollars)
        saved_per_year = savings_fraction * breakdown.total_per_year
        simulator = AvailabilitySimulator(
            profile, design.policies, error_label="single-bit hard"
        )
        summary = simulator.simulate(months=200, seed=9)
        print(
            f"{design.name:<18} {dollars:>10,.0f} "
            f"${saved_per_year:>14,.0f}   "
            f"{metrics.availability:>14.4%} "
            f"{summary.availability_percentile(5):>11.4%}"
        )

    print(
        "\nCapital cost dominates TCO (~57% per Barroso & Hölzle), which "
        "is why single-digit server savings are material at fleet scale."
    )


if __name__ == "__main__":
    main()
