"""Run data behind heterogeneous protection, live (paper §VI-C + Fig. 9).

Demonstrates the executable HRM runtime: the same dataset is stored
three ways — unprotected, parity + software recovery (Par+R), and
SEC-DED — inside simulated memory; a storm of bit errors is injected
into all three; and the read path shows silent corruption, software
recovery, and transparent correction respectively. Finally, Figure 9's
per-channel provisioning places each reliability class on real channel
capacity.

The tiers are laid out with :class:`repro.memory.RegionArena`, the
carve allocator that keeps each tier aligned and guarded inside the
heap region. ``tier_demo()`` returns the numbers so the integration
smoke test (tests/integration/test_example_hrm_runtime.py) can assert
on them; ``main()`` prints the human-readable report.

Run:  python examples/hrm_runtime.py
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.design_space import HardwareTechnique
from repro.dram import DramGeometry
from repro.ecc import NoProtection, Parity, SecDed
from repro.hrm import (
    ChannelProvisionedMemory,
    ProtectedArray,
    UncorrectableMemoryError,
    figure9_plan,
)
from repro.memory import AddressSpace, RegionArena, standard_layout

WORDS = 256
FLIPS_PER_TIER = 120
#: Unallocated bytes between tiers: a stray pointer that walks off one
#: tier faults in the gap instead of silently reading the next tier.
TIER_GUARD = 64


def tier_demo(seed: int = 99) -> Dict[str, Dict[str, object]]:
    """Build the three tiers, inject the storm, and read everything back.

    Returns per-tier stats: ``overhead`` (capacity cost), ``wrong``
    (silently corrupted reads), ``corrected`` / ``recovered`` word
    counts, and ``machine_checks`` (uncorrectable-error traps).
    """
    rng = random.Random(seed)
    space = AddressSpace(standard_layout(heap_size=65536))
    arena = RegionArena(space.region_named("heap"))
    golden = {index: rng.getrandbits(64) for index in range(WORDS)}

    # Three protection tiers over identical data, carved from one arena.
    tiers = {}
    for name, codec, recovery in (
        ("NoECC", NoProtection(), None),
        ("Par+R", Parity(), golden.__getitem__),
        ("SEC-DED", SecDed(), None),
    ):
        footprint = WORDS * ((codec.code_bits + 7) // 8)
        base = arena.carve(footprint, guard=TIER_GUARD)
        array = ProtectedArray(space, base, WORDS, codec, recovery=recovery)
        for index, value in golden.items():
            array.write(index, value)
        tiers[name] = array

    # Error storm: random single-bit flips into every tier's storage.
    for array in tiers.values():
        for _ in range(FLIPS_PER_TIER):
            word = rng.randrange(WORDS)
            offset = rng.randrange(array.slot_bytes)
            space.inject_soft_flip(array.slot_addr(word) + offset, rng.randrange(8))

    stats: Dict[str, Dict[str, object]] = {}
    for name, array in tiers.items():
        wrong = 0
        machine_checks = 0
        for index in range(WORDS):
            try:
                if array.read(index) != golden[index]:
                    wrong += 1
            except UncorrectableMemoryError:
                machine_checks += 1
        stats[name] = {
            "overhead": array.codec.added_capacity,
            "wrong": wrong,
            "corrected": array.corrected_words,
            "recovered": array.recovered_words,
            "machine_checks": machine_checks,
        }
    return stats


def figure9_demo() -> ChannelProvisionedMemory:
    """Figure 9: place reliability classes on channels (3 × 32 GiB)."""
    geometry = DramGeometry(channels=3, dimms_per_channel=4)
    memory = ChannelProvisionedMemory(geometry, figure9_plan())
    memory.allocate(9 * 2**30, HardwareTechnique.SEC_DED)  # vulnerable heap
    memory.allocate(18 * 2**30, HardwareTechnique.NONE)  # index shard 1
    memory.allocate(18 * 2**30, HardwareTechnique.NONE)  # index shard 2
    return memory


def main() -> None:
    stats = tier_demo()
    print(f"{FLIPS_PER_TIER} single-bit errors injected into each tier\n")
    print(
        f"{'tier':<9} {'overhead':>9} {'wrong reads':>12} {'corrected':>10} "
        f"{'recovered':>10} {'MCEs':>5}"
    )
    for name, row in stats.items():
        print(
            f"{name:<9} {row['overhead']:>8.1%} {row['wrong']:>12} "
            f"{row['corrected']:>10} {row['recovered']:>10} "
            f"{row['machine_checks']:>5}"
        )

    print(
        "\nNoECC consumes errors silently; Par+R detects and heals from "
        "the clean copy at 1.6% capacity cost; SEC-DED corrects in "
        "hardware at 12.5%."
    )

    memory = figure9_demo()
    print("\nFigure 9 channel provisioning (paper's WebSearch shape):")
    for channel, info in memory.placement_summary().items():
        print(
            f"  channel {channel}: {info['technique']:<8} "
            f"{info['used_bytes'] / 2**30:5.1f} / "
            f"{info['capacity_bytes'] / 2**30:.0f} GiB used"
        )


if __name__ == "__main__":
    main()
