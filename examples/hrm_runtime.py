"""Run data behind heterogeneous protection, live (paper §VI-C + Fig. 9).

Demonstrates the executable HRM runtime: the same dataset is stored
three ways — unprotected, parity + software recovery (Par+R), and
SEC-DED — inside simulated memory; a storm of bit errors is injected
into all three; and the read path shows silent corruption, software
recovery, and transparent correction respectively. Finally, Figure 9's
per-channel provisioning places each reliability class on real channel
capacity.

Run:  python examples/hrm_runtime.py
"""

from __future__ import annotations

import random

from repro.core.design_space import HardwareTechnique
from repro.dram import DramGeometry
from repro.ecc import NoProtection, Parity, SecDed
from repro.hrm import (
    ChannelProvisionedMemory,
    ProtectedArray,
    UncorrectableMemoryError,
    figure9_plan,
)
from repro.memory import AddressSpace, standard_layout

WORDS = 256


def main() -> None:
    rng = random.Random(99)
    space = AddressSpace(standard_layout(heap_size=65536))
    heap = space.region_named("heap")
    golden = {index: rng.getrandbits(64) for index in range(WORDS)}

    # Three protection tiers over identical data.
    tiers = {}
    cursor = heap.base
    for name, codec, recovery in (
        ("NoECC", NoProtection(), None),
        ("Par+R", Parity(), golden.__getitem__),
        ("SEC-DED", SecDed(), None),
    ):
        array = ProtectedArray(space, cursor, WORDS, codec, recovery=recovery)
        for index, value in golden.items():
            array.write(index, value)
        tiers[name] = array
        cursor += array.footprint_bytes + 64

    # Error storm: one random single-bit flip into every tier's storage.
    flips_per_tier = 120
    for array in tiers.values():
        for _ in range(flips_per_tier):
            word = rng.randrange(WORDS)
            offset = rng.randrange(array.slot_bytes)
            space.inject_soft_flip(array.slot_addr(word) + offset, rng.randrange(8))

    print(f"{flips_per_tier} single-bit errors injected into each tier\n")
    print(
        f"{'tier':<9} {'overhead':>9} {'wrong reads':>12} {'corrected':>10} "
        f"{'recovered':>10} {'MCEs':>5}"
    )
    for name, array in tiers.items():
        wrong = 0
        machine_checks = 0
        for index in range(WORDS):
            try:
                if array.read(index) != golden[index]:
                    wrong += 1
            except UncorrectableMemoryError:
                machine_checks += 1
        print(
            f"{name:<9} {array.codec.added_capacity:>8.1%} {wrong:>12} "
            f"{array.corrected_words:>10} {array.recovered_words:>10} "
            f"{machine_checks:>5}"
        )

    print(
        "\nNoECC consumes errors silently; Par+R detects and heals from "
        "the clean copy at 1.6% capacity cost; SEC-DED corrects in "
        "hardware at 12.5%."
    )

    # Figure 9: place reliability classes on channels (3 channels of
    # 32 GiB: one ECC, two without detection/correction).
    geometry = DramGeometry(channels=3, dimms_per_channel=4)
    memory = ChannelProvisionedMemory(geometry, figure9_plan())
    memory.allocate(9 * 2**30, HardwareTechnique.SEC_DED)  # vulnerable heap
    memory.allocate(18 * 2**30, HardwareTechnique.NONE)  # index shard 1
    memory.allocate(18 * 2**30, HardwareTechnique.NONE)  # index shard 2
    print("\nFigure 9 channel provisioning (paper's WebSearch shape):")
    for channel, info in memory.placement_summary().items():
        print(
            f"  channel {channel}: {info['technique']:<8} "
            f"{info['used_bytes'] / 2**30:5.1f} / "
            f"{info['capacity_bytes'] / 2**30:.0f} GiB used"
        )


if __name__ == "__main__":
    main()
